// Shared runner for Figures 16/17: PR and TC while varying the number of
// machines on a fixed graph (scaled from the paper's 5..25 sweep).

#ifndef TGPP_BENCH_MACHINES_COMMON_H_
#define TGPP_BENCH_MACHINES_COMMON_H_

#include "bench_util.h"

namespace tgpp::bench {

inline void RunMachineSweep(int argc, char** argv, const char* figure,
                            int scale, uint64_t budget_mb,
                            bool include_in_memory) {
  BenchConfig base;
  base.budget_bytes = budget_mb << 20;
  base.root_dir = std::string("/tmp/tgpp_bench/") + figure;

  const std::vector<int> machine_counts = {2, 4, 6, 8};

  std::printf("%s: varying machines on RMAT%d (budget %llu MB/machine)\n",
              figure, scale, static_cast<unsigned long long>(budget_mb));

  // --- PR panel ---
  {
    std::vector<SystemEntry> systems = {{"TurboGraph++", nullptr}};
    if (include_in_memory) {
      systems.push_back({"Gemini", &MakeGeminiLike});
      systems.push_back({"Pregel+", &MakePregelLike});
      systems.push_back({"GraphX", &MakeGraphxLike});
    }
    systems.push_back({"HybridGraph", &MakeHybridGraphLike});
    systems.push_back({"Chaos", &MakeChaosLike});

    const EdgeList graph = GenerateRmatX(scale, 1000 + scale);
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    std::vector<double> tgpp_exec;
    for (int p : machine_counts) {
      BenchConfig bc = base;
      bc.machines = p;
      columns.push_back("p=" + std::to_string(p));
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, "m" + std::to_string(p),
                                    Query::kPageRank)
                : MeasureBaseline(bc, graph, "m" + std::to_string(p),
                                  Query::kPageRank, entry.name,
                                  entry.factory));
      }
      if (col.front().status.ok()) {
        tgpp_exec.push_back(col.front().exec_seconds);
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable(std::string(figure) + " (PR): exec time (s/iter)",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });
    if (tgpp_exec.size() == machine_counts.size() && tgpp_exec.back() > 0) {
      // Speedup slope from p=2 to p=8 (paper reports slope 0.97).
      const double speedup = tgpp_exec.front() / tgpp_exec.back();
      const double ideal = static_cast<double>(machine_counts.back()) /
                           machine_counts.front();
      std::printf("\nTurboGraph++ speedup %dx machines: %.2fx "
                  "(slope %.2f; paper: 0.97)\n",
                  static_cast<int>(ideal), speedup, speedup / ideal);
    }
  }

  // --- TC panel ---
  {
    const std::vector<SystemEntry> systems = {{"TurboGraph++", nullptr},
                                              {"PTE", &MakePte}};
    EdgeList graph = GenerateRmatX(scale, 1100 + scale);
    DeduplicateEdges(&graph);
    MakeUndirected(&graph);
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (int p : machine_counts) {
      BenchConfig bc = base;
      bc.machines = p;
      columns.push_back("p=" + std::to_string(p));
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, "tc_m" + std::to_string(p),
                                    Query::kTriangleCount)
                : MeasureBaseline(bc, graph, "tc_m" + std::to_string(p),
                                  Query::kTriangleCount, entry.name,
                                  entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable(std::string(figure) + " (TC): exec time (s)",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });

    // The paper's efficiency point: TG++ with few machines vs PTE with
    // many.
    const Measurement& tgpp_small = by_column.front()[0];
    const Measurement& pte_large = by_column.back()[1];
    if (tgpp_small.status.ok() && pte_large.status.ok()) {
      std::printf("\nTurboGraph++ with %d machines: %.4fs vs PTE with %d "
                  "machines: %.4fs\n",
                  machine_counts.front(), tgpp_small.exec_seconds,
                  machine_counts.back(), pte_large.exec_seconds);
    }
  }
}

}  // namespace tgpp::bench

#endif  // TGPP_BENCH_MACHINES_COMMON_H_
