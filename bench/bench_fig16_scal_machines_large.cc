// Figure 16: PR and TC varying the number of machines on the larger RMAT
// graph (scaled from the paper's RMAT_35, which only external-memory
// systems could hold below 25 machines — hence no in-memory roster).

#include "machines_common.h"

int main(int argc, char** argv) {
  const int scale =
      static_cast<int>(tgpp::bench::FlagInt(argc, argv, "scale", 19));
  tgpp::bench::RunMachineSweep(argc, argv, "Fig16", scale,
                               /*budget_mb=*/3,
                               /*include_in_memory=*/false);
  return 0;
}
