// Figure 8(b): execution times under Random / Hash(Pregel+) /
// Hash(GraphX) partitioning, normalized to BBP, for the group1 (PR, SSSP,
// WCC) and group2 (TC, LCC) queries.
//
// Paper shape: BBP wins everywhere; modest gains on group1 (1.4-1.7x,
// driven by balance) and large gains on group2 (3-3.7x, balance + the
// degree-ordered IDs that shorten set intersections). The edge-balance
// ratio per scheme is printed alongside as the mechanism.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes = 64ull << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig8b");
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 19));
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 8));

  // A strongly skewed RMAT (heavier top-left quadrant than the default)
  // — the degree imbalance that makes partition quality matter (the
  // paper's real graphs have billion-scale skew).
  RmatParams params;
  params.vertex_scale = scale - 4;
  params.num_edges = 1ull << scale;
  params.a = 0.65;
  params.b = 0.18;
  params.c = 0.12;
  params.seed = 500 + scale;
  const EdgeList directed = GenerateRmat(params);
  const EdgeList undirected = UndirectedCopy(directed);

  const std::vector<std::pair<std::string, PartitionScheme>> schemes = {
      {"BBP", PartitionScheme::kBbp},
      {"Random", PartitionScheme::kRandom},
      {"Hash(Pregel+)", PartitionScheme::kHashPregel},
      {"Hash(GraphX)", PartitionScheme::kHashGraphx},
  };
  const std::vector<Query> queries = {Query::kPageRank, Query::kSssp,
                                      Query::kWcc, Query::kTriangleCount,
                                      Query::kLcc};

  // exec[scheme][query]
  std::vector<std::vector<double>> exec(schemes.size());
  std::vector<double> balance(schemes.size());
  for (size_t s = 0; s < schemes.size(); ++s) {
    for (Query query : queries) {
      const bool group2 =
          query == Query::kTriangleCount || query == Query::kLcc;
      const EdgeList& graph =
          (query == Query::kPageRank) ? directed : undirected;
      Measurement m =
          MeasureTurboGraph(bc, graph, "RMAT" + std::to_string(scale),
                            query, 3, schemes[s].second);
      TGPP_CHECK(m.status.ok())
          << schemes[s].first << " " << QueryName(query) << ": "
          << m.status.ToString();
      exec[s].push_back(m.exec_seconds);
      (void)group2;
    }
    // Balance ratio of the scheme on the directed graph.
    TurboGraphSystem probe(
        ToClusterConfig(bc, "balance_" + std::to_string(s)));
    PartitionOptions options;
    options.scheme = schemes[s].second;
    options.q = 1;
    auto pg = PartitionGraph(probe.cluster(), directed, options);
    TGPP_CHECK(pg.ok());
    balance[s] = pg->EdgeBalanceRatio();
  }

  std::vector<std::string> columns;
  for (Query query : queries) columns.push_back(QueryName(query));
  columns.push_back("edge-balance");
  std::vector<std::pair<std::string, std::vector<std::string>>> rows;
  for (size_t s = 0; s < schemes.size(); ++s) {
    std::vector<std::string> cells;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx",
                    exec[0][qi] > 0 ? exec[s][qi] / exec[0][qi] : 0.0);
      cells.push_back(buf);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", balance[s]);
    cells.push_back(buf);
    rows.emplace_back(schemes[s].first, std::move(cells));
  }
  PrintTable(
      "Fig 8(b): exec time normalized to BBP (lower=better; BBP=1.00x)",
      columns, rows);
  return 0;
}
