// Figure 17: PR and TC varying the number of machines on the mid-size
// RMAT graph (scaled from the paper's RMAT_33 — the largest graph both
// in-memory and external-memory systems can process, so the full roster
// runs).

#include "machines_common.h"

int main(int argc, char** argv) {
  const int scale =
      static_cast<int>(tgpp::bench::FlagInt(argc, argv, "scale", 17));
  tgpp::bench::RunMachineSweep(argc, argv, "Fig17", scale,
                               /*budget_mb=*/3,
                               /*include_in_memory=*/true);
  return 0;
}
