// Figure 8(a): preprocessing (partitioning/loading) time of BBP compared
// with the other systems' preprocessing, for doubling graph sizes.
//
// Paper shape: BBP costs on the order of the other systems' preprocessing
// (~1.4x Chaos on average, converging at large graphs) — i.e. the
// balanced, buffer-aware partitioning is *not* prohibitively expensive.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  // Generous budget: this figure is about time, not memory.
  bc.budget_bytes = 256ull << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig8a");
  const int min_scale = static_cast<int>(FlagInt(argc, argv, "min", 15));
  const int max_scale = static_cast<int>(FlagInt(argc, argv, "max", 20));

  const std::vector<SystemEntry> systems = {
      {"TG++(BBP)", nullptr},
      {"Gemini", &MakeGeminiLike},
      {"Pregel+", &MakePregelLike},
      {"HybridGraph", &MakeHybridGraphLike},
      {"Chaos", &MakeChaosLike},
  };

  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> cells(systems.size());
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    const EdgeList graph = GenerateRmatX(scale, 400 + scale);
    columns.push_back("RMAT" + std::to_string(scale));
    for (size_t s = 0; s < systems.size(); ++s) {
      double prep = 0;
      if (systems[s].factory == nullptr) {
        TurboGraphSystem system(ToClusterConfig(
            bc, "prep_tgpp_" + std::to_string(scale)));
        TGPP_CHECK_OK(system.LoadGraph(graph));
        prep = system.last_partition_seconds();
      } else {
        Cluster cluster(ToClusterConfig(
            bc, "prep_" + systems[s].name + "_" + std::to_string(scale)));
        auto system = systems[s].factory(&cluster);
        WallTimer timer;
        TGPP_CHECK_OK(system->Load(graph));
        prep = timer.Seconds();
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", prep);
      cells[s].push_back(buf);
    }
  }

  std::vector<std::pair<std::string, std::vector<std::string>>> rows;
  for (size_t s = 0; s < systems.size(); ++s) {
    rows.emplace_back(systems[s].name, cells[s]);
  }
  PrintTable("Fig 8(a): preprocessing time (s, wall) vs graph size",
             columns, rows);
  return 0;
}
