// Figure 11: resource usage over time while processing PageRank, for the
// SSD and HDD disk profiles (the paper's dstat traces).
//
// Paper shape: during iteration 1 the disk-transfer series dominates
// (reading cold edge pages); iterations 2-3 run from the buffer pool and
// the CPU series dominates. We print one utilization sample per interval;
// the modeled disk series uses counted bytes over the nominal bandwidth.

#include "cluster/resource_sampler.h"

#include "bench_util.h"

namespace tgpp::bench {
namespace {

void Trace(const BenchConfig& bc, const char* label) {
  const int scale = 19;
  const EdgeList graph = GenerateRmatX(scale, 700 + scale);
  TurboGraphSystem system(ToClusterConfig(
      bc, std::string("fig11_") + label));
  TGPP_CHECK_OK(system.LoadGraph(graph));
  system.cluster()->ResetCountersAndCaches();

  ResourceSampler sampler(system.cluster(), /*interval_seconds=*/0.02);
  sampler.Start();
  auto app = MakePageRankApp(system.partition(), 3);
  auto stats = system.RunQuery(app);
  sampler.Stop();
  TGPP_CHECK(stats.ok()) << stats.status().ToString();

  std::printf("\n--- PR on RMAT%d, %s profile (wall %.3fs) ---\n", scale,
              label, stats->wall_seconds);
  std::printf("%8s %10s %12s %12s %10s\n", "t(s)", "cpu-util",
              "disk(MB/s)", "net(MB/s)", "pool-hit");
  for (const ResourceSample& s : sampler.samples()) {
    std::printf("%8.3f %9.0f%% %12.1f %12.1f %9.1f%%\n", s.t_seconds,
                s.cpu_utilization * 100, s.disk_mbps, s.net_mbps,
                s.buffer_hit_rate * 100);
  }
  std::printf("final buffer-pool hit rate: %.1f%%\n",
              system.cluster()->BufferPoolHitRate() * 100);
  if (sampler.samples().empty()) {
    std::printf("(query finished within one sampling interval; rerun with "
                "--scale > %d for a longer trace)\n", scale);
  }
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes = 64ull << 20;
  bc.pool_frames = 96;
  bc.root_dir = "/tmp/tgpp_bench/fig11";

  bc.disk = kPcieSsdProfile;
  Trace(bc, "PCIeSSD");
  bc.disk = kHddRaidProfile;
  Trace(bc, "HDD");
  return 0;
}
