// Ablation: the memory model (Theorem 4.1).
//
// Prints q_min across walk lengths, budgets and graph sizes, then
// demonstrates the adaptive behaviour of Algorithm 1 lines 1-4: the same
// triangle-counting query executed under shrinking budgets repartitions
// to larger q and still produces the identical count — TurboGraph++
// trades I/O granularity for memory instead of crashing.

#include "core/memory_model.h"

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  // --- Part 1: the formula ---
  std::printf("q_min per Theorem 4.1 (p=4, |V|=2^16, 16B attrs, 64KB "
              "pages):\n");
  std::printf("%12s", "budget\\k");
  for (int k = 1; k <= 3; ++k) std::printf(" %8s", ("k=" + std::to_string(k)).c_str());
  std::printf("\n");
  for (uint64_t budget_kb : {512, 1024, 2048, 4096, 16384}) {
    std::printf("%10lluKB", static_cast<unsigned long long>(budget_kb));
    for (int k = 1; k <= 3; ++k) {
      MemoryModelInput in;
      in.k = k;
      in.p = 4;
      in.num_vertices = 1 << 16;
      in.vertex_attr_bytes = 16;
      in.total_budget_bytes = budget_kb << 10;
      Result<int> q = ComputeQMin(in);
      if (q.ok()) {
        std::printf(" %8d", *q);
      } else {
        std::printf(" %8s", "OOM");
      }
    }
    std::printf("\n");
  }

  // --- Part 2: explicit q sweep — finer chunking (and the q>1 spill
  // path) must not change answers; it trades I/O granularity for memory.
  std::printf("\nTC on RMAT16 with explicit q (identical counts "
              "required):\n");
  std::printf("%6s %10s %12s %12s %12s\n", "q", "triangles", "exec(s)",
              "disk(MB)", "net(MB)");
  EdgeList graph = GenerateRmatX(16, 1400);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  uint64_t expected = 0;
  for (int q : {1, 2, 4, 8}) {
    BenchConfig bc;
    bc.machines = 4;
    bc.budget_bytes = 32ull << 20;
    bc.root_dir = "/tmp/tgpp_bench/qmin_q" + std::to_string(q);
    TurboGraphSystem system(ToClusterConfig(bc, "run"));
    TGPP_CHECK_OK(system.LoadGraph(graph, PartitionScheme::kBbp, q));
    system.cluster()->ResetCountersAndCaches();
    auto app = MakeTriangleCountingApp();
    auto stats = system.RunQuery(app);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    if (expected == 0) expected = stats->aggregate_sum;
    TGPP_CHECK(stats->aggregate_sum == expected)
        << "count changed across q: " << stats->aggregate_sum << " vs "
        << expected;
    const ClusterSnapshot snap = system.cluster()->Snapshot();
    std::printf("%6d %10llu %12.4f %12.2f %12.2f\n", q,
                static_cast<unsigned long long>(stats->aggregate_sum),
                std::max({snap.max_machine_cpu_seconds,
                          snap.max_machine_disk_seconds,
                          snap.net_io_seconds}),
                snap.disk_bytes / 1e6, snap.net_bytes / 1e6);
  }

  // --- Part 3: the adaptive trigger of Algorithm 1 lines 1-4 — a tight
  // budget makes the engine re-execute BBP with the finer q it computed,
  // instead of crashing.
  std::printf("\nAdaptive repartitioning: LCC under a tight budget\n");
  {
    EdgeList big = GenerateRmatX(18, 1500);
    DeduplicateEdges(&big);
    MakeUndirected(&big);
    BenchConfig bc;
    bc.machines = 2;
    bc.budget_bytes = 1ull << 20;  // 1 MB/machine
    bc.pool_frames = 4;
    bc.root_dir = "/tmp/tgpp_bench/qmin_adaptive";
    TurboGraphSystem system(ToClusterConfig(bc, "run"));
    TGPP_CHECK_OK(system.LoadGraph(big));  // loads with q=1
    auto app = MakeLccApp(system.partition());
    auto stats = system.RunQuery(app);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    std::printf("  loaded with q=1; query ran with q=%d "
                "(triangles=%llu) — no OOM under a 1 MB budget\n",
                stats->q_used,
                static_cast<unsigned long long>(stats->aggregate_sum));
  }
  return 0;
}
