// Figure 9: decomposed execution time with the PCIe-SSD disk profile.

#include "decomposed_common.h"

int main(int argc, char** argv) {
  tgpp::bench::RunDecomposed(argc, argv, tgpp::kPcieSsdProfile, "Fig9");
  return 0;
}
