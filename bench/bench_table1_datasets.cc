// Table 1: dataset statistics — the real-graph stand-ins and the RMAT
// family, with the original corpora they substitute for.

#include "graph/degree.h"

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  std::printf(
      "Table 1 (stand-ins): every named dataset is a deterministic RMAT "
      "graph whose\nrelative size ordering and mean degree match the "
      "paper's corpus (scaled ~2^13).\n\n");
  std::printf("%-8s %-34s %12s %12s %10s %8s %8s %10s\n", "name",
              "stands in for", "|V|", "|E|", "bytes", "d_mean", "d_max",
              "top1%share");
  for (const DatasetSpec& spec : RealGraphStandIns()) {
    const EdgeList graph = GenerateDataset(spec);
    const DegreeStats stats = ComputeDegreeStats(graph);
    std::printf("%-8s %-34s %12llu %12llu %10llu %8.2f %8llu %10.2f\n",
                spec.name.c_str(), spec.paper_name.c_str(),
                static_cast<unsigned long long>(graph.num_vertices),
                static_cast<unsigned long long>(graph.num_edges()),
                static_cast<unsigned long long>(graph.size_bytes()),
                stats.mean_degree,
                static_cast<unsigned long long>(stats.max_degree),
                stats.top1pct_edge_share);
  }

  std::printf("\nRMAT_X family (2^(X-4) vertices, 2^X edges):\n");
  const int min_scale = static_cast<int>(FlagInt(argc, argv, "min", 14));
  const int max_scale = static_cast<int>(FlagInt(argc, argv, "max", 20));
  for (int x = min_scale; x <= max_scale; ++x) {
    const EdgeList graph = GenerateRmatX(x, 200 + x);
    const DegreeStats stats = ComputeDegreeStats(graph);
    std::printf(
        "  RMAT%-3d |V|=%-9llu |E|=%-10llu bytes=%-10llu d_max=%llu\n", x,
        static_cast<unsigned long long>(graph.num_vertices),
        static_cast<unsigned long long>(graph.num_edges()),
        static_cast<unsigned long long>(graph.size_bytes()),
        static_cast<unsigned long long>(stats.max_degree));
  }
  return 0;
}
