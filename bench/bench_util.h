// Shared harness for the figure/table benchmarks.
//
// Measurement methodology follows the paper (§5.1):
//  - query execution time excludes loading/preprocessing;
//  - disk I/O is the aggregated bytes read+written over all machines,
//    network I/O the aggregated bytes sent between machines;
//  - per-resource *times* are bytes over aggregate nominal bandwidth and
//    CPU-seconds over total worker parallelism;
//  - buffer caches are dropped between preprocessing and measurement
//    (the paper drops the OS page cache);
//  - a system's execution time combines its per-resource times according
//    to its overlap behaviour: full-overlap systems are bound by the
//    slowest resource (max), poor-overlap systems serialize (sum). This
//    is the model the paper itself validates in §5.2.3 (Figures 9-11).
//  - failures are reported with the paper's markers: O (out of memory),
//    T (timeout), F (other).

#ifndef TGPP_BENCH_BENCH_UTIL_H_
#define TGPP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "baselines/baseline.h"
#include "core/system.h"
#include "graph/datasets.h"
#include "graph/rmat.h"

namespace tgpp::bench {

// Default bench cluster shape (scaled from the paper's 25 x 32 GB x 16
// cores): p machines with a few MB each; override per bench via flags.
struct BenchConfig {
  int machines = 4;
  int threads = 1;            // single-core host: 1 worker thread/machine
  int numa_nodes = 2;
  uint64_t budget_bytes = 3ull << 20;
  size_t pool_frames = 16;
  DiskProfile disk = kPcieSsdProfile;
  // Async-read submission engine (io_backend.h); kAuto honors
  // TGPP_IO_BACKEND so any bench can be re-run on the other backend
  // without a rebuild.
  IoBackendKind io_backend = IoBackendKind::kAuto;
  int io_queue_depth = 64;
  double timeout_model_seconds = 1e9;  // modeled-time timeout (paper: 8h)
  std::string root_dir = "/tmp/tgpp_bench";
};

ClusterConfig ToClusterConfig(const BenchConfig& bc,
                              const std::string& run_name);

enum class Query { kPageRank, kSssp, kWcc, kTriangleCount, kLcc };
const char* QueryName(Query query);

// One measured cell of a results table.
struct Measurement {
  std::string system;
  std::string graph;
  Query query = Query::kPageRank;
  Status status;            // OK or the failure
  double exec_seconds = 0;  // modeled execution time (overlap-combined)
  double wall_seconds = 0;  // raw wall clock on this host
  double cpu_seconds = 0;   // per-worker average CPU time
  double disk_seconds = 0;
  double net_seconds = 0;
  uint64_t disk_bytes = 0;
  uint64_t net_bytes = 0;
  int supersteps = 0;
  uint64_t aggregate = 0;
  int q_used = 1;           // vertex chunks per machine (TurboGraph++)
  double prep_seconds = 0;  // partitioning/loading time

  // Fault-injection provenance (docs/FAULTS.md): the armed spec/seed, how
  // many faults actually fired during this measurement, and the recovery
  // work the engine did. Empty/zero on fault-free runs so that existing
  // results stay comparable.
  std::string fault_spec;
  uint64_t fault_seed = 0;
  uint64_t faults_injected = 0;
  int checkpoints = 0;
  int recoveries = 0;

  // "12.3" / "O" / "T" / "F" like the paper's figures.
  std::string Cell() const;
};

// Appends `m` as one JSON object (JSON-lines) to `path`. Used by the
// TGPP_BENCH_JSON=results.jsonl env hook so scripted runs keep the fault
// configuration attached to every number they record.
Status AppendMeasurementJson(const Measurement& m, const std::string& path);

// Runs one query on TurboGraph++ (fresh cluster + BBP load), measuring
// only the query (prep captured separately). PR runs `pr_iterations` and
// reports the average per-iteration time like the paper.
Measurement MeasureTurboGraph(const BenchConfig& bc, const EdgeList& graph,
                              const std::string& graph_name, Query query,
                              int pr_iterations = 3,
                              PartitionScheme scheme = PartitionScheme::kBbp);

// Runs one query on a named baseline.
using BaselineFactory = std::unique_ptr<BaselineSystem> (*)(Cluster*);
Measurement MeasureBaseline(const BenchConfig& bc, const EdgeList& graph,
                            const std::string& graph_name, Query query,
                            const std::string& system_name,
                            BaselineFactory factory, int pr_iterations = 3);

// The full roster used by the comparison figures.
struct SystemEntry {
  std::string name;
  BaselineFactory factory;  // nullptr == TurboGraph++
};
const std::vector<SystemEntry>& ComparisonRoster();

// Pretty printing: a header plus one row per system with one column per
// graph/x-value.
void PrintTable(const std::string& title,
                const std::vector<std::string>& columns,
                const std::vector<std::pair<std::string,
                                            std::vector<std::string>>>& rows);

// Converts a list of measurements (same system order per column) into
// table rows using Measurement::Cell().
void PrintMeasurementTable(
    const std::string& title, const std::vector<std::string>& columns,
    const std::vector<std::string>& systems,
    const std::vector<std::vector<Measurement>>& by_column,
    const std::function<std::string(const Measurement&)>& cell);

// Undirected, deduplicated variant for TC/LCC/WCC/SSSP (the queries that
// assume symmetric edges).
EdgeList UndirectedCopy(const EdgeList& graph);

// Simple flag access: --key=value.
int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t def);
std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& def);

}  // namespace tgpp::bench

#endif  // TGPP_BENCH_BENCH_UTIL_H_
