// Async-read backend comparison: io_uring vs thread-pool preadv
// (docs/ARCHITECTURE.md "I/O backends", docs/EXPERIMENTS.md).
//
// Three measurements:
//
//   depth rows  — cold-miss read throughput of SubmitReads batches of
//                 non-adjacent pages as the queue depth grows. Under
//                 uring the in-flight window is the ring depth, so
//                 throughput scales with it; the thread-pool backend is
//                 capped by its thread count regardless of depth.
//   merge rows  — the same batch submitted sequentially (merged into
//                 vectored requests) vs strided (unmergeable), showing
//                 what disk.merged_reads buys at fixed depth.
//   parity      — a deterministic PageRank on a small RMAT graph run on
//                 both backends; the attribute CRCs must be identical
//                 bit-for-bit. A mismatch fails the bench (nonzero exit):
//                 the backends only move bytes, so swapping them can
//                 never change results.
//
//   bench_io_backend [--pages=2048] [--batch=32] [--scale=11] [--smoke]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "common/logging.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "storage/io_backend.h"
#include "storage/page_file.h"
#include "util/crc32.h"
#include "util/timer.h"

#include "bench_util.h"

namespace tgpp::bench {
namespace {

struct Throughput {
  double pages_per_sec = 0;
  uint64_t merged_reads = 0;
};

// Reads `total_pages` cold pages through SubmitReads in batches of
// `batch`, with the pool dropped between batches so every read misses.
// `strided` interleaves odd/even pages so no two requests in a batch are
// physically adjacent (isolating queue depth from request merging).
Throughput MeasureMissThroughput(IoBackendKind kind, unsigned depth,
                                 int total_pages, int batch, bool strided) {
  const std::string dir = "/tmp/tgpp_bench/io_backend/" +
                          std::string(IoBackendKindName(kind)) + "_d" +
                          std::to_string(depth) + (strided ? "_s" : "_q");
  std::filesystem::remove_all(dir);
  DiskDevice disk(dir, kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "pages.pf");
  TGPP_CHECK(file.ok()) << file.status().ToString();
  std::vector<uint8_t> page(kPageSize, 0xab);
  for (int i = 0; i < total_pages; ++i) {
    TGPP_CHECK(file->AppendPage(page.data()).ok());
  }

  std::vector<uint64_t> order;
  order.reserve(static_cast<size_t>(total_pages));
  if (strided) {
    for (int p = 0; p < total_pages; p += 2) order.push_back(p);
    for (int p = 1; p < total_pages; p += 2) order.push_back(p);
  } else {
    for (int p = 0; p < total_pages; ++p) order.push_back(p);
  }

  BufferPool pool(static_cast<size_t>(batch) * 2 + 8);
  AsyncIoService io(/*num_io_threads=*/4, /*trace_machine=*/-1, kind, depth);
  WallTimer timer;
  for (size_t i = 0; i < order.size(); i += static_cast<size_t>(batch)) {
    const size_t end =
        std::min(order.size(), i + static_cast<size_t>(batch));
    std::vector<uint64_t> window(order.begin() + static_cast<long>(i),
                                 order.begin() + static_cast<long>(end));
    auto ticket =
        io.SubmitReads(&pool, &*file, std::move(window),
                       [](uint64_t, PageHandle) {});
    TGPP_CHECK(ticket.Wait().ok());
    pool.DropAll();  // next batch must miss again
  }
  const double secs = timer.Seconds();
  Throughput t;
  t.pages_per_sec = secs > 0 ? total_pages / secs : 0;
  t.merged_reads = disk.merged_reads();
  return t;
}

// One deterministic PageRank through the full system on `kind`; returns
// the CRC of the final attribute vector.
uint32_t RunParityCell(const BenchConfig& bc, const EdgeList& graph,
                       IoBackendKind kind, int iterations, Status* status) {
  BenchConfig cell = bc;
  cell.io_backend = kind;
  TurboGraphSystem system(ToClusterConfig(
      cell, std::string("io_parity_") + IoBackendKindName(kind)));
  Status load = system.LoadGraph(graph);
  if (!load.ok()) {
    *status = load;
    return 0;
  }
  EngineOptions options;
  options.deterministic = true;
  auto app = MakePageRankApp(system.partition(), iterations);
  std::vector<PageRankAttr> attrs;
  Result<QueryStats> stats = system.RunQuery(app, &attrs, options);
  if (!stats.ok()) {
    *status = stats.status();
    return 0;
  }
  *status = Status::OK();
  return Crc32(attrs.data(), attrs.size() * sizeof(PageRankAttr));
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int pages =
      static_cast<int>(FlagInt(argc, argv, "pages", smoke ? 256 : 2048));
  const int batch = static_cast<int>(FlagInt(argc, argv, "batch", 32));
  const int scale =
      static_cast<int>(FlagInt(argc, argv, "scale", smoke ? 10 : 11));

  std::vector<IoBackendKind> kinds = {IoBackendKind::kThreads};
  if (UringAvailable()) {
    kinds.push_back(IoBackendKind::kUring);
  } else {
    std::printf("io_uring unavailable in this kernel/container; "
                "thread-pool rows only\n");
  }

  std::printf("bench_io_backend: %d pages x %zu B, batches of %d\n\n",
              pages, static_cast<size_t>(kPageSize), batch);

  // Queue-depth scaling on unmergeable (strided) batches.
  const std::vector<unsigned> depths =
      smoke ? std::vector<unsigned>{4, 16}
            : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
  std::printf("%-8s %6s %14s\n", "backend", "depth", "pages/s");
  for (IoBackendKind kind : kinds) {
    for (unsigned depth : depths) {
      const Throughput t =
          MeasureMissThroughput(kind, depth, pages, batch, /*strided=*/true);
      std::printf("%-8s %6u %14.0f\n", IoBackendKindName(kind), depth,
                  t.pages_per_sec);
    }
  }

  // Merged vs unmerged at fixed depth: sequential batches coalesce into
  // vectored requests of up to 16 pages.
  std::printf("\n%-8s %-10s %14s %8s\n", "backend", "layout", "pages/s",
              "merged");
  for (IoBackendKind kind : kinds) {
    for (bool strided : {true, false}) {
      const Throughput t =
          MeasureMissThroughput(kind, 16, pages, batch, strided);
      std::printf("%-8s %-10s %14.0f %8llu\n", IoBackendKindName(kind),
                  strided ? "strided" : "sequential", t.pages_per_sec,
                  static_cast<unsigned long long>(t.merged_reads));
    }
  }

  // Backend parity: same graph, same query, both backends, identical CRC.
  BenchConfig bc;
  bc.machines = 2;
  bc.budget_bytes = 64ull << 20;
  const EdgeList graph = GenerateRmatX(scale, /*seed=*/7);
  const int iterations = smoke ? 4 : 8;
  Status status;
  const uint32_t crc_threads =
      RunParityCell(bc, graph, IoBackendKind::kThreads, iterations, &status);
  if (!status.ok()) {
    std::fprintf(stderr, "parity run (threads) failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nparity: threads crc %08x", crc_threads);
  if (UringAvailable()) {
    const uint32_t crc_uring =
        RunParityCell(bc, graph, IoBackendKind::kUring, iterations, &status);
    if (!status.ok()) {
      std::fprintf(stderr, "\nparity run (uring) failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf(", uring crc %08x -> %s\n", crc_uring,
                crc_uring == crc_threads ? "identical" : "MISMATCH");
    if (crc_uring != crc_threads) {
      std::fprintf(stderr, "FAIL: backends disagree on a deterministic "
                           "run\n");
      return 1;
    }
  } else {
    std::printf(" (uring skipped)\n");
  }
  return 0;
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) {
  return tgpp::bench::Main(argc, argv);
}
