// Direction-optimizing and work-efficient kernel ablations
// (docs/ALGORITHMS.md, EXPERIMENTS.md "Direction optimization"):
//
//  - BFS: naive always-push vs. forced pull vs. auto (Beamer/Ligra
//    switching) vs. push with sparse windows. Pull supersteps ship zero
//    update bytes (each vertex settles itself locally), which is the
//    lever behind the net-I/O column.
//  - SSSP over hashed weights: delta-stepping at several deltas vs. the
//    Bellman-Ford limit (delta = infinity activates every improvement
//    immediately). Work efficiency shows up as fewer updates sent.
//  - WCC: full min-label propagation vs. Afforest-style sampled rounds.
//
// Every variant of a workload must produce the same attribute CRC (the
// kernels are bit-deterministic by design); the bench exits nonzero on
// any mismatch, so CI's --smoke row doubles as an equivalence check.

#include <cstring>

#include "algos/bfs.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "bench_util.h"
#include "util/crc32.h"

namespace {

using namespace tgpp;
using namespace tgpp::bench;

struct RowStats {
  double exec = 0, cpu = 0;
  uint64_t disk_bytes = 0, net_bytes = 0, updates_sent = 0;
  int supersteps = 0, pull_supersteps = 0;
  uint32_t crc = 0;
};

int failures = 0;

void PrintRow(const std::string& label, const RowStats& r) {
  std::printf("%-28s %9.4f %9.4f %10.2f %10.2f %12llu %5d %5d  %08x\n",
              label.c_str(), r.exec, r.cpu, r.disk_bytes / 1e6,
              r.net_bytes / 1e6,
              static_cast<unsigned long long>(r.updates_sent), r.supersteps,
              r.pull_supersteps, r.crc);
}

// Runs one kernel variant on a fresh cluster and collects the modeled
// execution time (resource-overlap model, see bench_util.h) plus the
// attribute CRC for the cross-variant equivalence check.
template <typename V, typename U, typename MakeApp>
RowStats RunVariant(const BenchConfig& bc, const EdgeList& graph,
                    const EngineOptions& options, MakeApp&& make_app) {
  TurboGraphSystem system(ToClusterConfig(bc, "run"));
  TGPP_CHECK_OK(system.LoadGraph(graph));
  system.cluster()->ResetCountersAndCaches();
  KWalkApp<V, U> app = make_app(system.partition());
  std::vector<V> attrs;
  auto stats = system.RunQuery(app, &attrs, options);
  TGPP_CHECK(stats.ok()) << stats.status().ToString();
  const ClusterSnapshot snap = system.cluster()->Snapshot();
  RowStats r;
  r.cpu = snap.max_machine_cpu_seconds;
  r.exec = std::max({r.cpu, snap.max_machine_disk_seconds,
                     snap.net_io_seconds}) / 3;
  r.disk_bytes = snap.disk_bytes;
  r.net_bytes = snap.net_bytes;
  for (int m = 0; m < system.cluster()->num_machines(); ++m) {
    r.updates_sent +=
        system.cluster()->machine(m)->metrics()->updates_sent.value();
  }
  r.supersteps = stats->supersteps;
  r.pull_supersteps = stats->pull_supersteps;
  r.crc = Crc32(attrs.data(), attrs.size() * sizeof(V));
  return r;
}

void CheckSameCrc(const std::string& workload,
                  const std::vector<std::pair<std::string, RowStats>>& rows) {
  for (const auto& [label, r] : rows) {
    if (r.crc != rows.front().second.crc) {
      std::fprintf(stderr,
                   "FAIL: %s variant '%s' crc %08x != baseline '%s' %08x\n",
                   workload.c_str(), label.c_str(), r.crc,
                   rows.front().first.c_str(), rows.front().second.crc);
      ++failures;
    }
  }
}

EngineOptions Dir(DirectionMode mode, bool sparse = false) {
  EngineOptions o;
  o.deterministic = true;
  o.frontier.direction = mode;
  o.frontier.sparse_windows = sparse;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) return true;
    }
    return false;
  }();
  const int scale =
      static_cast<int>(FlagInt(argc, argv, "scale", smoke ? 12 : 14));
  const int machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));

  const EdgeList graph = UndirectedCopy(GenerateRmatX(scale, 2200 + scale));
  std::printf("direction/work-efficiency ablations: RMAT%d undirected "
              "(%llu vertices, %llu edges), %d machines\n\n",
              scale, static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges()), machines);
  std::printf("%-28s %9s %9s %10s %10s %12s %5s %5s  %s\n", "variant",
              "exec(s)", "cpu(s)", "disk(MB)", "net(MB)", "updates-sent",
              "steps", "pull", "crc32");

  BenchConfig bc;
  bc.machines = machines;
  bc.budget_bytes = 64ull << 20;
  bc.root_dir = "/tmp/tgpp_bench/kernels_direction";

  // --- BFS ----------------------------------------------------------------
  auto bfs = [&](const EdgeList& g, const EngineOptions& o) {
    return RunVariant<BfsAttr, uint64_t>(
        bc, g, o, [](const PartitionedGraph* pg) { return MakeBfsApp(pg, 0); });
  };
  std::vector<std::pair<std::string, RowStats>> bfs_rows;
  bfs_rows.emplace_back("bfs push (naive)", bfs(graph, Dir(DirectionMode::kPush)));
  bfs_rows.emplace_back("bfs pull", bfs(graph, Dir(DirectionMode::kPull)));
  bfs_rows.emplace_back("bfs auto (dir-opt)",
                        bfs(graph, Dir(DirectionMode::kAuto)));
  bfs_rows.emplace_back("bfs push + sparse windows",
                        bfs(graph, Dir(DirectionMode::kPush, true)));
  for (const auto& [label, r] : bfs_rows) PrintRow(label, r);
  CheckSameCrc("bfs", bfs_rows);

  // --- BFS on a high-diameter graph: sparse windows ------------------------
  // An RMAT frontier saturates after one hop, so sparse windows barely
  // matter there. A long cycle is the opposite regime: ~1000 supersteps
  // whose frontier is 2 vertices. The dense path streams every edge
  // chunk of any window containing an active vertex; the sparse path
  // materializes just the active sources' adjacency.
  std::printf("\n");
  const uint64_t cycle_n = smoke ? 512 : 2048;
  EdgeList cycle;
  cycle.num_vertices = cycle_n;
  for (VertexId u = 0; u < cycle_n; ++u) {
    cycle.edges.push_back({u, (u + 1) % cycle_n});
    cycle.edges.push_back({(u + 1) % cycle_n, u});
  }
  std::vector<std::pair<std::string, RowStats>> cyc_rows;
  cyc_rows.emplace_back("bfs cycle dense windows",
                        bfs(cycle, Dir(DirectionMode::kPush)));
  cyc_rows.emplace_back("bfs cycle sparse windows",
                        bfs(cycle, Dir(DirectionMode::kPush, true)));
  for (const auto& [label, r] : cyc_rows) PrintRow(label, r);
  CheckSameCrc("bfs-cycle", cyc_rows);

  // --- delta-stepping SSSP ------------------------------------------------
  std::printf("\n");
  auto sssp = [&](uint64_t delta) {
    EngineOptions o;
    o.deterministic = true;
    return RunVariant<SsspDeltaAttr, uint64_t>(
        bc, graph, o, [&](const PartitionedGraph* pg) {
          return MakeSsspDeltaApp(pg, 0, delta, /*max_weight=*/8);
        });
  };
  std::vector<std::pair<std::string, RowStats>> sssp_rows;
  sssp_rows.emplace_back("sssp delta=1 (dijkstra-ish)", sssp(1));
  sssp_rows.emplace_back("sssp delta=4", sssp(4));
  sssp_rows.emplace_back("sssp delta=16", sssp(16));
  sssp_rows.emplace_back("sssp delta=inf (bellman)",
                         sssp(std::numeric_limits<uint64_t>::max() / 2));
  for (const auto& [label, r] : sssp_rows) PrintRow(label, r);
  CheckSameCrc("sssp", sssp_rows);

  // --- WCC ----------------------------------------------------------------
  std::printf("\n");
  // Compare on labels only: the sampled attr carries a step counter that
  // legitimately differs from the classic kernel's layout, so the
  // equivalence check recomputes the CRC over labels for both.
  auto wcc_full = [&] {
    TurboGraphSystem system(ToClusterConfig(bc, "run"));
    TGPP_CHECK_OK(system.LoadGraph(graph));
    system.cluster()->ResetCountersAndCaches();
    auto app = MakeWccApp(system.partition());
    std::vector<WccAttr> attrs;
    EngineOptions o;
    o.deterministic = true;
    auto stats = system.RunQuery(app, &attrs, o);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    const ClusterSnapshot snap = system.cluster()->Snapshot();
    RowStats r;
    r.cpu = snap.max_machine_cpu_seconds;
    r.exec = std::max({r.cpu, snap.max_machine_disk_seconds,
                       snap.net_io_seconds}) / 3;
    r.disk_bytes = snap.disk_bytes;
    r.net_bytes = snap.net_bytes;
    for (int m = 0; m < system.cluster()->num_machines(); ++m) {
      r.updates_sent +=
          system.cluster()->machine(m)->metrics()->updates_sent.value();
    }
    r.supersteps = stats->supersteps;
    std::vector<uint64_t> labels(attrs.size());
    for (size_t i = 0; i < attrs.size(); ++i) labels[i] = attrs[i].label;
    r.crc = Crc32(labels.data(), labels.size() * sizeof(uint64_t));
    return r;
  };
  auto wcc_sampled = [&](int rounds) {
    TurboGraphSystem system(ToClusterConfig(bc, "run"));
    TGPP_CHECK_OK(system.LoadGraph(graph));
    system.cluster()->ResetCountersAndCaches();
    auto app = MakeWccSampledApp(system.partition(), rounds);
    std::vector<WccSampledAttr> attrs;
    EngineOptions o;
    o.deterministic = true;
    auto stats = system.RunQuery(app, &attrs, o);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    const ClusterSnapshot snap = system.cluster()->Snapshot();
    RowStats r;
    r.cpu = snap.max_machine_cpu_seconds;
    r.exec = std::max({r.cpu, snap.max_machine_disk_seconds,
                       snap.net_io_seconds}) / 3;
    r.disk_bytes = snap.disk_bytes;
    r.net_bytes = snap.net_bytes;
    for (int m = 0; m < system.cluster()->num_machines(); ++m) {
      r.updates_sent +=
          system.cluster()->machine(m)->metrics()->updates_sent.value();
    }
    r.supersteps = stats->supersteps;
    std::vector<uint64_t> labels(attrs.size());
    for (size_t i = 0; i < attrs.size(); ++i) labels[i] = attrs[i].label;
    r.crc = Crc32(labels.data(), labels.size() * sizeof(uint64_t));
    return r;
  };
  std::vector<std::pair<std::string, RowStats>> wcc_rows;
  wcc_rows.emplace_back("wcc full propagation", wcc_full());
  wcc_rows.emplace_back("wcc sampled rounds=2", wcc_sampled(2));
  wcc_rows.emplace_back("wcc sampled rounds=4", wcc_sampled(4));
  for (const auto& [label, r] : wcc_rows) PrintRow(label, r);
  CheckSameCrc("wcc", wcc_rows);

  if (smoke) {
    // Structural expectations for CI beyond CRC equality.
    const RowStats& auto_row = bfs_rows[2].second;
    if (auto_row.pull_supersteps == 0) {
      std::fprintf(stderr, "FAIL: auto BFS never chose pull\n");
      ++failures;
    }
    const RowStats& pull_row = bfs_rows[1].second;
    if (pull_row.net_bytes >= bfs_rows[0].second.net_bytes) {
      std::fprintf(stderr,
                   "FAIL: pull BFS should ship fewer update bytes than "
                   "push (%llu >= %llu)\n",
                   static_cast<unsigned long long>(pull_row.net_bytes),
                   static_cast<unsigned long long>(
                       bfs_rows[0].second.net_bytes));
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall variants agree per workload (crc-checked)\n");
  return 0;
}
