#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/fault_injector.h"
#include "obs/export.h"
#include "util/trace.h"

namespace tgpp::bench {

namespace {

// Opt-in execution tracing for bench runs: TGPP_TRACE=/path/to/trace.json
// enables the tracer for every measurement in the process and writes one
// combined Chrome-trace JSON at exit (see docs/TRACING.md).
void MaybeEnableTracingFromEnv() {
  static const bool enabled = [] {
    const char* path = std::getenv("TGPP_TRACE");
    if (path == nullptr || path[0] == '\0') return false;
    trace::SetEnabled(true);
    std::atexit([] {
      const char* out = std::getenv("TGPP_TRACE");
      if (out == nullptr) return;
      Status s = trace::WriteChromeTrace(out);
      if (!s.ok()) {
        std::fprintf(stderr, "TGPP_TRACE export failed: %s\n",
                     s.ToString().c_str());
      }
    });
    return true;
  }();
  (void)enabled;
}

// Opt-in fault injection for bench runs (docs/FAULTS.md):
//   TGPP_FAULTS="disk.read:io_error@p=0.001"  — spec, armed process-wide
//   TGPP_FAULT_SEED=7                         — draw seed (default 42)
//   TGPP_CHECKPOINT_EVERY=2                   — engine checkpoint cadence
// The checkpoint cadence is read by MeasureTurboGraph so crash faults
// recover instead of turning the cell into an F.
void MaybeArmFaultsFromEnv() {
  static const bool armed = [] {
    const char* spec = std::getenv("TGPP_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return false;
    uint64_t seed = 42;
    if (const char* s = std::getenv("TGPP_FAULT_SEED")) {
      seed = std::strtoull(s, nullptr, 10);
    }
    Status st = fault::Configure(spec, seed);
    if (!st.ok()) {
      std::fprintf(stderr, "TGPP_FAULTS rejected: %s\n",
                   st.ToString().c_str());
      std::exit(2);  // a misspelled fault spec must not pass as fault-free
    }
    std::fprintf(stderr, "fault injection armed: %s (seed %llu)\n", spec,
                 static_cast<unsigned long long>(seed));
    return true;
  }();
  (void)armed;
}

int EnvCheckpointEvery() {
  const char* s = std::getenv("TGPP_CHECKPOINT_EVERY");
  return s == nullptr ? 0 : static_cast<int>(std::strtoll(s, nullptr, 10));
}

// Fills the fault provenance fields from the live injector state.
void FillFaultInfo(Measurement* m, uint64_t injected_before) {
  m->fault_spec = fault::ActiveSpec();
  m->fault_seed = fault::ActiveSeed();
  m->faults_injected = fault::InjectedCount() - injected_before;
}

// Appends the measurement to $TGPP_BENCH_JSON when set.
void MaybeDumpJsonFromEnv(const Measurement& m) {
  const char* path = std::getenv("TGPP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  Status s = AppendMeasurementJson(m, path);
  if (!s.ok()) {
    std::fprintf(stderr, "TGPP_BENCH_JSON append failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace

ClusterConfig ToClusterConfig(const BenchConfig& bc,
                              const std::string& run_name) {
  // Every bench builds its cluster(s) through here, so this is the one
  // hook that covers benches that bypass MeasureTurboGraph/MeasureBaseline.
  MaybeEnableTracingFromEnv();
  MaybeArmFaultsFromEnv();
  ClusterConfig config;
  config.num_machines = bc.machines;
  config.threads_per_machine = bc.threads;
  config.numa_nodes_per_machine = bc.numa_nodes;
  config.memory_budget_bytes = bc.budget_bytes;
  config.buffer_pool_frames = bc.pool_frames;
  config.disk_profile = bc.disk;
  config.io_backend = bc.io_backend;
  config.io_queue_depth = bc.io_queue_depth;
  config.root_dir = bc.root_dir + "/" + run_name;
  std::filesystem::remove_all(config.root_dir);
  return config;
}

const char* QueryName(Query query) {
  switch (query) {
    case Query::kPageRank:
      return "PR";
    case Query::kSssp:
      return "SSSP";
    case Query::kWcc:
      return "WCC";
    case Query::kTriangleCount:
      return "TC";
    case Query::kLcc:
      return "LCC";
  }
  return "?";
}

std::string Measurement::Cell() const {
  if (status.ok()) {
    char buf[32];
    if (exec_seconds >= 100) {
      std::snprintf(buf, sizeof(buf), "%.0f", exec_seconds);
    } else if (exec_seconds >= 1) {
      std::snprintf(buf, sizeof(buf), "%.2f", exec_seconds);
    } else {
      std::snprintf(buf, sizeof(buf), "%.4f", exec_seconds);
    }
    return buf;
  }
  switch (status.code()) {
    case StatusCode::kOutOfMemory:
      return "O";
    case StatusCode::kTimeout:
      return "T";
    case StatusCode::kNotSupported:
      return "-";
    default:
      return "F";
  }
}

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Status AppendMeasurementJson(const Measurement& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for append");
  }
  std::fprintf(
      f,
      "{\"system\":\"%s\",\"graph\":\"%s\",\"query\":\"%s\","
      "\"status\":\"%s\",\"exec_seconds\":%.6f,\"wall_seconds\":%.6f,"
      "\"cpu_seconds\":%.6f,\"disk_seconds\":%.6f,\"net_seconds\":%.6f,"
      "\"disk_bytes\":%llu,\"net_bytes\":%llu,\"supersteps\":%d,"
      "\"aggregate\":%llu,\"q_used\":%d,\"prep_seconds\":%.6f,"
      "\"fault_spec\":\"%s\",\"fault_seed\":%llu,\"faults_injected\":%llu,"
      "\"checkpoints\":%d,\"recoveries\":%d}\n",
      JsonEscape(m.system).c_str(), JsonEscape(m.graph).c_str(),
      QueryName(m.query), JsonEscape(m.status.ToString()).c_str(),
      m.exec_seconds, m.wall_seconds, m.cpu_seconds, m.disk_seconds,
      m.net_seconds, static_cast<unsigned long long>(m.disk_bytes),
      static_cast<unsigned long long>(m.net_bytes), m.supersteps,
      static_cast<unsigned long long>(m.aggregate), m.q_used,
      m.prep_seconds, JsonEscape(m.fault_spec).c_str(),
      static_cast<unsigned long long>(m.fault_seed),
      static_cast<unsigned long long>(m.faults_injected), m.checkpoints,
      m.recoveries);
  std::fclose(f);
  return Status::OK();
}

namespace {

// Combines a counter delta into the modeled execution time.
struct ResourceTimes {
  double cpu = 0;
  double disk = 0;
  double net = 0;
};

ResourceTimes ComputeResourceTimes(Cluster* cluster,
                                   const ClusterSnapshot& snap) {
  // Barrier-synchronized systems are gated by their slowest machine, so
  // CPU and disk use the bottleneck-machine view (this is how partition
  // imbalance surfaces, §5.2.2); the network uses the aggregate-bandwidth
  // model of §5.2.3.
  ResourceTimes times;
  const int threads =
      std::max(1, cluster->config().threads_per_machine);
  times.cpu = snap.max_machine_cpu_seconds / threads;
  times.disk = snap.max_machine_disk_seconds;
  times.net = snap.net_io_seconds;
  return times;
}

double CombineTimes(const ResourceTimes& t, OverlapModel overlap) {
  if (overlap == OverlapModel::kFullOverlap) {
    return std::max({t.cpu, t.disk, t.net});
  }
  return t.cpu + t.disk + t.net;
}

void FillFromSnapshot(Measurement* m, Cluster* cluster,
                      OverlapModel overlap, double wall) {
  const ClusterSnapshot snap = cluster->Snapshot();
  const ResourceTimes times = ComputeResourceTimes(cluster, snap);
  m->cpu_seconds = times.cpu;
  m->disk_seconds = times.disk;
  m->net_seconds = times.net;
  m->disk_bytes = snap.disk_bytes;
  m->net_bytes = snap.net_bytes;
  m->wall_seconds = wall;
  m->exec_seconds = CombineTimes(times, overlap);
}

// Appends the per-superstep rows collected through the engine observer to
// $TGPP_BENCH_JSON, each tagged with the measurement's identity so a
// script can join the time series back to its summary line.
void MaybeDumpSuperstepRows(const Measurement& m,
                            const std::vector<obs::SuperstepRow>& rows) {
  const char* path = std::getenv("TGPP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0' || rows.empty()) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "TGPP_BENCH_JSON append failed: cannot open %s\n",
                 path);
    return;
  }
  const std::string prefix = "{\"system\":\"" + JsonEscape(m.system) +
                             "\",\"graph\":\"" + JsonEscape(m.graph) +
                             "\",\"query\":\"" + QueryName(m.query) + "\",";
  for (const auto& row : rows) {
    // row.ToJson() is `{"type":"superstep",...}` — splice the identity
    // fields in right after the opening brace.
    std::fprintf(f, "%s%s\n", prefix.c_str(),
                 row.ToJson().substr(1).c_str());
  }
  std::fclose(f);
}

}  // namespace

Measurement MeasureTurboGraph(const BenchConfig& bc, const EdgeList& graph,
                              const std::string& graph_name, Query query,
                              int pr_iterations, PartitionScheme scheme) {
  Measurement m;
  m.system = "TurboGraph++";
  m.graph = graph_name;
  m.query = query;
  MaybeEnableTracingFromEnv();
  MaybeArmFaultsFromEnv();
  const uint64_t injected_before = fault::InjectedCount();
  EngineOptions options;
  options.checkpoint_every = EnvCheckpointEvery();
  std::vector<obs::SuperstepRow> superstep_rows;
  if (const char* jp = std::getenv("TGPP_BENCH_JSON");
      jp != nullptr && jp[0] != '\0') {
    options.superstep_observer = [&superstep_rows](
                                     const obs::SuperstepRow& row) {
      superstep_rows.push_back(row);
    };
  }

  const std::string run_name = std::string("tgpp_") + graph_name + "_" +
                               QueryName(query) + "_" +
                               PartitionSchemeName(scheme);
  TurboGraphSystem system(ToClusterConfig(bc, run_name));
  Status load = system.LoadGraph(graph, scheme);
  if (!load.ok()) {
    m.status = load;
    FillFaultInfo(&m, injected_before);
    MaybeDumpJsonFromEnv(m);
    return m;
  }
  m.prep_seconds = system.last_partition_seconds();
  system.cluster()->ResetCountersAndCaches();

  WallTimer timer;
  Result<QueryStats> stats = Status::OK();
  switch (query) {
    case Query::kPageRank: {
      auto app = MakePageRankApp(system.partition(), pr_iterations);
      stats = system.RunQuery(app, options);
      break;
    }
    case Query::kSssp: {
      // Paper: source = vertex with the most neighbors. Under BBP the
      // highest-degree vertex gets new ID 0 on machine 0.
      VertexId best = 0;
      uint64_t best_degree = 0;
      for (VertexId old_id = 0;
           old_id < system.partition()->num_vertices; ++old_id) {
        const uint64_t d =
            system.partition()->out_degree[system.partition()
                                               ->old_to_new[old_id]];
        if (d > best_degree) {
          best_degree = d;
          best = old_id;
        }
      }
      auto app = MakeSsspApp(system.partition(), best);
      stats = system.RunQuery(app, options);
      break;
    }
    case Query::kWcc: {
      auto app = MakeWccApp(system.partition());
      stats = system.RunQuery(app, options);
      break;
    }
    case Query::kTriangleCount: {
      auto app = MakeTriangleCountingApp();
      stats = system.RunQuery(app, options);
      break;
    }
    case Query::kLcc: {
      auto app = MakeLccApp(system.partition());
      stats = system.RunQuery(app, options);
      break;
    }
  }
  const double wall = timer.Seconds();
  FillFaultInfo(&m, injected_before);
  if (!stats.ok()) {
    m.status = stats.status();
    MaybeDumpJsonFromEnv(m);
    MaybeDumpSuperstepRows(m, superstep_rows);
    return m;
  }
  m.supersteps = stats->supersteps;
  m.aggregate = stats->aggregate_sum;
  m.q_used = stats->q_used;
  m.checkpoints = stats->checkpoints;
  m.recoveries = stats->recoveries;
  FillFromSnapshot(&m, system.cluster(), OverlapModel::kFullOverlap, wall);
  if (query == Query::kPageRank && pr_iterations > 0) {
    // Paper reports the average per-iteration time for PR.
    m.exec_seconds /= pr_iterations;
    m.wall_seconds /= pr_iterations;
  }
  if (m.exec_seconds > bc.timeout_model_seconds) {
    m.status = Status::Timeout("modeled time exceeds limit");
  }
  MaybeDumpJsonFromEnv(m);
  MaybeDumpSuperstepRows(m, superstep_rows);
  return m;
}

Measurement MeasureBaseline(const BenchConfig& bc, const EdgeList& graph,
                            const std::string& graph_name, Query query,
                            const std::string& system_name,
                            BaselineFactory factory, int pr_iterations) {
  Measurement m;
  m.system = system_name;
  m.graph = graph_name;
  m.query = query;
  MaybeEnableTracingFromEnv();
  MaybeArmFaultsFromEnv();
  const uint64_t injected_before = fault::InjectedCount();

  const std::string run_name =
      system_name + "_" + graph_name + "_" + QueryName(query);
  Cluster cluster(ToClusterConfig(bc, run_name));
  std::unique_ptr<BaselineSystem> system = factory(&cluster);

  WallTimer prep_timer;
  Status load = system->Load(graph);
  m.prep_seconds = prep_timer.Seconds();
  if (!load.ok()) {
    m.status = load;
    FillFaultInfo(&m, injected_before);
    MaybeDumpJsonFromEnv(m);
    return m;
  }
  cluster.ResetCountersAndCaches();

  WallTimer timer;
  BaselineResult result;
  switch (query) {
    case Query::kPageRank:
      result = system->RunPageRank(pr_iterations);
      break;
    case Query::kSssp: {
      // Highest out-degree vertex, matching the paper's source choice.
      std::vector<uint64_t> degree(graph.num_vertices, 0);
      for (const Edge& e : graph.edges) ++degree[e.src];
      VertexId best = 0;
      for (VertexId v = 0; v < graph.num_vertices; ++v) {
        if (degree[v] > degree[best]) best = v;
      }
      result = system->RunSssp(best);
      break;
    }
    case Query::kWcc:
      result = system->RunWcc();
      break;
    case Query::kTriangleCount:
      result = system->RunTriangleCount();
      break;
    case Query::kLcc:
      result.status = Status::NotSupported(system_name + " lacks LCC");
      break;
  }
  const double wall = timer.Seconds();
  FillFaultInfo(&m, injected_before);
  if (!result.status.ok()) {
    m.status = result.status;
    MaybeDumpJsonFromEnv(m);
    return m;
  }
  m.supersteps = result.supersteps;
  m.aggregate = result.aggregate;
  FillFromSnapshot(&m, &cluster, system->overlap_model(), wall);
  if (query == Query::kPageRank && pr_iterations > 0) {
    m.exec_seconds /= pr_iterations;
    m.wall_seconds /= pr_iterations;
  }
  if (m.exec_seconds > bc.timeout_model_seconds) {
    m.status = Status::Timeout("modeled time exceeds limit");
  }
  MaybeDumpJsonFromEnv(m);
  return m;
}

const std::vector<SystemEntry>& ComparisonRoster() {
  static const std::vector<SystemEntry>* kRoster =
      new std::vector<SystemEntry>{
          {"TurboGraph++", nullptr},
          {"Gemini", &MakeGeminiLike},
          {"Pregel+", &MakePregelLike},
          {"GraphX", &MakeGraphxLike},
          {"HybridGraph", &MakeHybridGraphLike},
          {"Chaos", &MakeChaosLike},
          {"PTE", &MakePte},
      };
  return *kRoster;
}

void PrintTable(
    const std::string& title, const std::vector<std::string>& columns,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", "system");
  for (const auto& c : columns) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (const auto& [name, cells] : rows) {
    std::printf("%-14s", name.c_str());
    for (const auto& cell : cells) std::printf(" %12s", cell.c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

void PrintMeasurementTable(
    const std::string& title, const std::vector<std::string>& columns,
    const std::vector<std::string>& systems,
    const std::vector<std::vector<Measurement>>& by_column,
    const std::function<std::string(const Measurement&)>& cell) {
  std::vector<std::pair<std::string, std::vector<std::string>>> rows;
  for (size_t s = 0; s < systems.size(); ++s) {
    std::vector<std::string> cells;
    for (const auto& column : by_column) cells.push_back(cell(column[s]));
    rows.emplace_back(systems[s], std::move(cells));
  }
  PrintTable(title, columns, rows);
}

EdgeList UndirectedCopy(const EdgeList& graph) {
  EdgeList copy = graph;
  MakeUndirected(&copy);
  return copy;
}

int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

}  // namespace tgpp::bench
