// Figure 10: decomposed execution time with the HDD RAID-0 disk profile
// (5x less bandwidth than the SSD profile — the disk-bound first PR
// iteration becomes more pronounced).

#include "decomposed_common.h"

int main(int argc, char** argv) {
  tgpp::bench::RunDecomposed(argc, argv, tgpp::kHddRaidProfile, "Fig10");
  return 0;
}
