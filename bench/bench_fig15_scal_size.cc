// Figure 15: PR and TC execution time for doubling RMAT sizes — the
// data-scalability study. Same matrix as Figure 1 plus PTE on TC; the
// paper's crossover to watch is TurboGraph++ overtaking Gemini as the
// graph outgrows memory, and the TG++/PTE gap growing with size.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 4)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig15");
  const int pr_min = static_cast<int>(FlagInt(argc, argv, "pr_min", 15));
  const int pr_max = static_cast<int>(FlagInt(argc, argv, "pr_max", 21));
  const int tc_min = static_cast<int>(FlagInt(argc, argv, "tc_min", 13));
  const int tc_max = static_cast<int>(FlagInt(argc, argv, "tc_max", 18));

  // --- PR panel ---
  {
    const std::vector<SystemEntry> systems = {
        {"TurboGraph++", nullptr},       {"Gemini", &MakeGeminiLike},
        {"Pregel+", &MakePregelLike},    {"GraphX", &MakeGraphxLike},
        {"HybridGraph", &MakeHybridGraphLike}, {"Chaos", &MakeChaosLike},
    };
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (int scale = pr_min; scale <= pr_max; ++scale) {
      const EdgeList graph = GenerateRmatX(scale, 800 + scale);
      const std::string name = "RMAT" + std::to_string(scale);
      columns.push_back(name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, name, Query::kPageRank)
                : MeasureBaseline(bc, graph, name, Query::kPageRank,
                                  entry.name, entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable("Fig 15 (PR): exec time (s/iter) vs graph size",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });
  }

  // --- TC panel ---
  {
    const std::vector<SystemEntry> systems = {
        {"TurboGraph++", nullptr},
        {"Pregel+", &MakePregelLike},
        {"GraphX", &MakeGraphxLike},
        {"HybridGraph", &MakeHybridGraphLike},
        {"PTE", &MakePte},
    };
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    double tgpp_exec = 0, pte_exec = 0;
    for (int scale = tc_min; scale <= tc_max; ++scale) {
      EdgeList graph = GenerateRmatX(scale, 900 + scale);
      DeduplicateEdges(&graph);
      MakeUndirected(&graph);
      const std::string name = "RMAT" + std::to_string(scale);
      columns.push_back(name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, name, Query::kTriangleCount)
                : MeasureBaseline(bc, graph, name, Query::kTriangleCount,
                                  entry.name, entry.factory));
      }
      if (col.front().status.ok() && col.back().status.ok()) {
        tgpp_exec = col.front().exec_seconds;
        pte_exec = col.back().exec_seconds;
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable("Fig 15 (TC): exec time (s) vs graph size",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });
    if (pte_exec > 0) {
      std::printf("\nAt the largest common size, TurboGraph++ is %.2fx "
                  "faster than PTE (paper: growing to ~6x).\n",
                  pte_exec / tgpp_exec);
    }
  }
  return 0;
}
