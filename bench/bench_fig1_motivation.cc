// Figure 1: execution times for PageRank (a) and triangle counting (b)
// while doubling the graph size, across the system roster.
//
// Paper shape to reproduce: in-memory systems (Pregel+, Gemini) are fast
// on small graphs but hit out-of-memory (O) as the graph grows;
// HybridGraph OOMs while loading the largest PR graph and OOMs early on
// TC; GraphX is slowest overall; Chaos processes everything but slowly;
// only TurboGraph++ (and PTE, for TC) spans every size, at in-memory-like
// speed.

#include "bench_util.h"

namespace tgpp::bench {
namespace {

void RunPageRankPanel(const BenchConfig& bc, int min_scale, int max_scale) {
  const std::vector<SystemEntry> systems = {
      {"TurboGraph++", nullptr},       {"Gemini", &MakeGeminiLike},
      {"Pregel+", &MakePregelLike},    {"GraphX", &MakeGraphxLike},
      {"HybridGraph", &MakeHybridGraphLike}, {"Chaos", &MakeChaosLike},
  };
  std::vector<std::string> columns;
  std::vector<std::vector<Measurement>> by_column;
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    const EdgeList graph = GenerateRmatX(scale, /*seed=*/200 + scale);
    const std::string name = "RMAT" + std::to_string(scale);
    columns.push_back(name);
    std::vector<Measurement> col;
    for (const SystemEntry& entry : systems) {
      col.push_back(entry.factory == nullptr
                        ? MeasureTurboGraph(bc, graph, name,
                                            Query::kPageRank)
                        : MeasureBaseline(bc, graph, name, Query::kPageRank,
                                          entry.name, entry.factory));
    }
    by_column.push_back(std::move(col));
  }
  std::vector<std::string> names;
  for (const auto& s : systems) names.push_back(s.name);
  PrintMeasurementTable(
      "Fig 1(a): PageRank exec time (s/iter) vs graph size  [O=OOM T=timeout]",
      columns, names, by_column,
      [](const Measurement& m) { return m.Cell(); });
}

void RunTrianglePanel(const BenchConfig& bc, int min_scale, int max_scale) {
  const std::vector<SystemEntry> systems = {
      {"TurboGraph++", nullptr},
      {"Pregel+", &MakePregelLike},
      {"GraphX", &MakeGraphxLike},
      {"HybridGraph", &MakeHybridGraphLike},
      {"PTE", &MakePte},
  };
  std::vector<std::string> columns;
  std::vector<std::vector<Measurement>> by_column;
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    EdgeList graph = GenerateRmatX(scale, /*seed=*/300 + scale);
    DeduplicateEdges(&graph);
    MakeUndirected(&graph);
    const std::string name = "RMAT" + std::to_string(scale);
    columns.push_back(name);
    std::vector<Measurement> col;
    for (const SystemEntry& entry : systems) {
      col.push_back(entry.factory == nullptr
                        ? MeasureTurboGraph(bc, graph, name,
                                            Query::kTriangleCount)
                        : MeasureBaseline(bc, graph, name,
                                          Query::kTriangleCount, entry.name,
                                          entry.factory));
    }
    // Cross-check: all successful systems must agree on the count.
    uint64_t count = 0;
    for (const Measurement& m : col) {
      if (m.status.ok()) {
        if (count == 0) count = m.aggregate;
        TGPP_CHECK(m.aggregate == count)
            << m.system << " counted " << m.aggregate << " vs " << count;
      }
    }
    by_column.push_back(std::move(col));
  }
  std::vector<std::string> names;
  for (const auto& s : systems) names.push_back(s.name);
  PrintMeasurementTable(
      "Fig 1(b): Triangle counting exec time (s) vs graph size",
      columns, names, by_column,
      [](const Measurement& m) { return m.Cell(); });
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) {
  using namespace tgpp::bench;
  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 3)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig1");
  const int pr_min = static_cast<int>(FlagInt(argc, argv, "pr_min", 14));
  const int pr_max = static_cast<int>(FlagInt(argc, argv, "pr_max", 20));
  const int tc_min = static_cast<int>(FlagInt(argc, argv, "tc_min", 12));
  const int tc_max = static_cast<int>(FlagInt(argc, argv, "tc_max", 17));

  std::printf("Figure 1 reproduction: %d machines, %llu MB budget/machine\n",
              bc.machines,
              static_cast<unsigned long long>(bc.budget_bytes >> 20));
  RunPageRankPanel(bc, pr_min, pr_max);
  RunTrianglePanel(bc, tc_min, tc_max);
  return 0;
}
