// Figures 12, 13, 14: overall performance on the real-graph stand-ins —
// execution time, total disk I/O, and total network I/O for PR, SSSP,
// WCC, TC and LCC across the system roster.
//
// Paper shape to reproduce:
//  - group1 (PR/SSSP/WCC): TurboGraph++ beats the external-memory systems
//    by large factors, beats Pregel+/GraphX, and is comparable to Gemini
//    where Gemini survives; Gemini/Pregel+ fail beyond the smaller
//    graphs (O markers).
//  - group2 (TC/LCC): only TurboGraph++ handles everything; the
//    vertex-centric systems OOM; PTE completes TC but slower.
//  - Fig 13: TurboGraph++ has the lowest disk I/O among external-memory
//    systems; Fig 14: lowest network I/O thanks to local gather.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 3)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig12");

  const std::vector<Query> queries = {Query::kPageRank, Query::kSssp,
                                      Query::kWcc, Query::kTriangleCount,
                                      Query::kLcc};

  for (Query query : queries) {
    // Roster per query, as in the paper (PTE is TC-only; nobody else runs
    // LCC; Gemini/Chaos have no TC API).
    std::vector<SystemEntry> systems;
    for (const SystemEntry& entry : ComparisonRoster()) {
      if (query == Query::kLcc && entry.factory != nullptr) continue;
      if (query != Query::kTriangleCount && entry.name == "PTE") continue;
      systems.push_back(entry);
    }

    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (const DatasetSpec& spec : RealGraphStandIns()) {
      EdgeList graph = GenerateDataset(spec);
      if (query != Query::kPageRank) {
        DeduplicateEdges(&graph);
        MakeUndirected(&graph);
      }
      columns.push_back(spec.name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, spec.name, query)
                : MeasureBaseline(bc, graph, spec.name, query, entry.name,
                                  entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);

    const std::string qname = QueryName(query);
    PrintMeasurementTable("Fig 12 (" + qname + "): execution time (s)",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });
    PrintMeasurementTable(
        "Fig 13 (" + qname + "): total disk I/O (MB)", columns, names,
        by_column, [](const Measurement& m) {
          if (!m.status.ok()) return m.Cell();
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.2f", m.disk_bytes / 1e6);
          return std::string(buf);
        });
    PrintMeasurementTable(
        "Fig 14 (" + qname + "): total network I/O (MB)", columns, names,
        by_column, [](const Measurement& m) {
          if (!m.status.ok()) return m.Cell();
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.2f", m.net_bytes / 1e6);
          return std::string(buf);
        });
  }
  return 0;
}
