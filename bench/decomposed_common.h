// Shared runner for Figures 9/10: decomposed CPU / disk / network times
// per PageRank iteration and for triangle counting, under a given disk
// profile.
//
// Paper shape: PR iteration 1 is disk-bound (cold edge pages); iterations
// 2-3 are CPU-bound (pages resident in the buffer pool); TC is CPU-bound
// throughout, with the k-walk enumeration overhead a sub-percent share of
// CPU time (§5.2.3). The modeled execution time tracks the max resource.

#ifndef TGPP_BENCH_DECOMPOSED_COMMON_H_
#define TGPP_BENCH_DECOMPOSED_COMMON_H_

#include "bench_util.h"

namespace tgpp::bench {

inline void RunDecomposed(int argc, char** argv, DiskProfile profile,
                          const char* figure) {
  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes = 64ull << 20;
  // Pool large enough to keep the edge pages of the default graph warm
  // across PR iterations (the paper's machines cache the working set).
  bc.pool_frames = static_cast<size_t>(FlagInt(argc, argv, "frames", 96));
  bc.disk = profile;
  bc.root_dir = std::string("/tmp/tgpp_bench/") + figure;
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 18));

  std::printf("%s: decomposed times, %s disk (%.1f MB/s/machine)\n",
              figure, profile.name,
              profile.aggregate_bandwidth_bytes_per_sec() / 1e6);

  struct Row {
    std::string label;
    double cpu, disk, net, exec;
  };
  std::vector<Row> rows;

  // --- PageRank, one iteration at a time, warm pool across iterations ---
  const EdgeList directed = GenerateRmatX(scale, 600 + scale);
  {
    TurboGraphSystem system(ToClusterConfig(bc, "decomp_pr"));
    TGPP_CHECK_OK(system.LoadGraph(directed));
    system.cluster()->ResetCountersAndCaches();  // cold start
    NwsmEngine<PageRankAttr, PageRankUpdate> engine(system.cluster(),
                                                    system.partition());
    auto app = MakePageRankApp(system.partition(), 1);
    app.max_supersteps = 1;
    TGPP_CHECK_OK(engine.Initialize(app));
    system.cluster()->ResetCounters();  // drop init I/O, keep pool state
    for (int iter = 1; iter <= 3; ++iter) {
      auto stats = engine.Run(app);
      TGPP_CHECK(stats.ok()) << stats.status().ToString();
      const ClusterSnapshot snap = system.cluster()->Snapshot();
      uint64_t hits = 0, misses = 0;
      for (int m = 0; m < system.cluster()->num_machines(); ++m) {
        hits += system.cluster()->machine(m)->buffer_pool()->hits();
        misses += system.cluster()->machine(m)->buffer_pool()->misses();
      }
      std::printf("  [pool] iter%d: %llu hits, %llu misses\n", iter,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses));
      const double cpu = snap.max_machine_cpu_seconds;
      const double disk = snap.max_machine_disk_seconds;
      const double net = snap.net_io_seconds;
      rows.push_back({"PR iter" + std::to_string(iter), cpu, disk, net,
                      std::max({cpu, disk, net})});
      system.cluster()->ResetCounters();  // keep buffer pool warm
    }
  }

  // --- Triangle counting (plus the enumeration-overhead measurement) ---
  double enum_share = 0;
  {
    const EdgeList undirected = UndirectedCopy(directed);
    TurboGraphSystem system(ToClusterConfig(bc, "decomp_tc"));
    TGPP_CHECK_OK(system.LoadGraph(undirected));
    system.cluster()->ResetCountersAndCaches();
    auto app = MakeTriangleCountingApp();
    auto stats = system.RunQuery(app);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    const ClusterSnapshot snap = system.cluster()->Snapshot();
    const double cpu = snap.max_machine_cpu_seconds;
    const double disk = snap.max_machine_disk_seconds;
    const double net = snap.net_io_seconds;
    rows.push_back({"TC", cpu, disk, net, std::max({cpu, disk, net})});
    enum_share = snap.cpu_seconds > 0
                     ? snap.enumeration_cpu_seconds / snap.cpu_seconds
                     : 0;
  }

  std::printf("\n%-10s %12s %12s %12s %12s  bounded-by\n", "phase",
              "CPU(s)", "Disk(s)", "Net(s)", "exec~max(s)");
  for (const Row& r : rows) {
    const char* bound = (r.disk >= r.cpu && r.disk >= r.net) ? "disk"
                        : (r.cpu >= r.net)                   ? "cpu"
                                                             : "net";
    std::printf("%-10s %12.5f %12.5f %12.5f %12.5f  %s\n",
                r.label.c_str(), r.cpu, r.disk, r.net, r.exec, bound);
  }
  std::printf(
      "\nk-walk enumeration overhead during TC: %.2f%% of CPU time "
      "(paper: ~0.7%%)\n",
      enum_share * 100);
}

}  // namespace tgpp::bench

#endif  // TGPP_BENCH_DECOMPOSED_COMMON_H_
