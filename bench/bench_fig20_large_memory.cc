// Figure 20 (appendix A.5.1): PR and TC on the real-graph stand-ins plus
// the hyperlink graph HL-S, with machines carrying 2x the default memory.
//
// Paper shape: doubling RAM lets Pregel+ reach one graph further and the
// external-memory systems process HL, but Gemini still dies during
// partitioning on the big graphs, every in-memory system still OOMs on
// TC, and TurboGraph++ still spans everything while outrunning
// HybridGraph/Chaos by large factors.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 6)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig20");

  std::vector<DatasetSpec> datasets = RealGraphStandIns();
  datasets.push_back(HyperlinkStandIn());

  for (Query query : {Query::kPageRank, Query::kTriangleCount}) {
    std::vector<SystemEntry> systems;
    for (const SystemEntry& entry : ComparisonRoster()) {
      if (query != Query::kTriangleCount && entry.name == "PTE") continue;
      systems.push_back(entry);
    }
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (const DatasetSpec& spec : datasets) {
      EdgeList graph = GenerateDataset(spec);
      if (query == Query::kTriangleCount) {
        DeduplicateEdges(&graph);
        MakeUndirected(&graph);
      }
      columns.push_back(spec.name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, spec.name, query)
                : MeasureBaseline(bc, graph, spec.name, query, entry.name,
                                  entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable(std::string("Fig 20 (") + QueryName(query) +
                              "): exec time (s) with 2x memory",
                          columns, names, by_column,
                          [](const Measurement& m) { return m.Cell(); });
  }
  return 0;
}
