// Figure 22 (appendix A.5.2): TurboGraph++ vs out-of-core Giraph for PR
// across graph sizes.
//
// Paper shape: despite the out-of-core capability, Giraph OOMs on the
// large PR graphs (its messages stay memory-resident) and on TC at every
// size; where it completes, TurboGraph++ is an order of magnitude faster.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 3)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig22");
  const int min_scale = static_cast<int>(FlagInt(argc, argv, "min", 15));
  const int max_scale = static_cast<int>(FlagInt(argc, argv, "max", 21));

  const std::vector<SystemEntry> systems = {
      {"TurboGraph++", nullptr},
      {"Giraph(ooc)", &MakeGiraphLike},
  };
  std::vector<std::string> columns;
  std::vector<std::vector<Measurement>> by_column;
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    const EdgeList graph = GenerateRmatX(scale, 1200 + scale);
    const std::string name = "RMAT" + std::to_string(scale);
    columns.push_back(name);
    std::vector<Measurement> col;
    for (const SystemEntry& entry : systems) {
      col.push_back(
          entry.factory == nullptr
              ? MeasureTurboGraph(bc, graph, name, Query::kPageRank)
              : MeasureBaseline(bc, graph, name, Query::kPageRank,
                                entry.name, entry.factory));
    }
    by_column.push_back(std::move(col));
  }
  std::vector<std::string> names;
  for (const auto& s : systems) names.push_back(s.name);
  PrintMeasurementTable("Fig 22: PR exec time (s/iter) vs out-of-core "
                        "Giraph",
                        columns, names, by_column,
                        [](const Measurement& m) { return m.Cell(); });

  // TC: out-of-core Giraph OOMs at every size (appendix finding).
  EdgeList graph = GenerateRmatX(14, 1300);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  Measurement tc = MeasureBaseline(bc, graph, "RMAT14",
                                   Query::kTriangleCount, "Giraph(ooc)",
                                   &MakeGiraphLike);
  std::printf("\nGiraph(ooc) TC on RMAT14: %s (paper: OOM at all sizes)\n",
              tc.Cell().c_str());
  return 0;
}
