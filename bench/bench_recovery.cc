// Machine-failure recovery cost vs checkpoint interval
// (docs/FAULTS.md "Failure model & recovery", EXPERIMENTS.md).
//
// Kills machine 1 mid-run (`machine1:machine.kill@superstep=K`) and
// measures the end-to-end time-to-complete of a deterministic PageRank
// under checkpoint cadences {1, 2, 4}, against a fault-free baseline.
// Each row decomposes the recovery tax the way the engine accounts it:
//
//   detect   — wall time of failed supersteps (kill → MachineLost)
//   restore  — revive + checkpoint restore on every machine
//   replay   — re-executed supersteps the rollback discarded
//
// Every recovered run must reproduce the baseline CRC bit-for-bit
// (deterministic mode); a mismatch fails the bench. A `ckpt=off` row
// shows the clean failure mode: no checkpoint to confine the rollback,
// so the run surfaces MachineLost (cell "F") within the heartbeat bound.
//
// TGPP_BENCH_JSON=results.jsonl appends one JSON line per row.
//
//   bench_recovery [--scale=13] [--machines=4] [--kill-step=2]
//                  [--iterations=10] [--smoke]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "util/crc32.h"
#include "util/timer.h"

#include "bench_util.h"

namespace tgpp::bench {
namespace {

struct Row {
  std::string label;
  Measurement m;
  QueryStats stats;
  uint32_t crc = 0;
};

// One full PageRank run on a fresh system; `spec` is armed before the
// query and disarmed after, so the load/partition phase is never killed
// (the paper's failure model covers query execution, not ingest).
Row RunCell(const BenchConfig& bc, const EdgeList& graph,
            const std::string& label, int checkpoint_every,
            const std::string& spec, int iterations) {
  Row row;
  row.label = label;
  row.m.system = "TurboGraph++";
  row.m.graph = label;
  row.m.query = Query::kPageRank;

  EngineOptions options;
  options.deterministic = true;
  options.checkpoint_every = checkpoint_every;
  options.recv_timeout_ms = 20000;
  options.heartbeat_interval_ms = 5;
  options.heartbeat_timeout_ms = 200;

  TurboGraphSystem system(ToClusterConfig(bc, "recovery_" + label));
  Status load = system.LoadGraph(graph);
  if (!load.ok()) {
    row.m.status = load;
    return row;
  }
  system.cluster()->ResetCountersAndCaches();

  const uint64_t injected_before = fault::InjectedCount();
  if (!spec.empty()) {
    Status armed = fault::Configure(spec, /*seed=*/42);
    if (!armed.ok()) {
      row.m.status = armed;
      return row;
    }
  }
  auto app = MakePageRankApp(system.partition(), iterations);
  std::vector<PageRankAttr> attrs;
  WallTimer timer;
  Result<QueryStats> stats = system.RunQuery(app, &attrs, options);
  row.m.wall_seconds = row.m.exec_seconds = timer.Seconds();
  row.m.fault_spec = spec;
  row.m.fault_seed = spec.empty() ? 0 : fault::ActiveSeed();
  row.m.faults_injected = fault::InjectedCount() - injected_before;
  fault::Disarm();
  if (!stats.ok()) {
    row.m.status = stats.status();
    return row;
  }
  row.stats = *stats;
  row.m.supersteps = stats->supersteps;
  row.m.aggregate = stats->aggregate_sum;
  row.m.checkpoints = stats->checkpoints;
  row.m.recoveries = stats->recoveries;
  row.crc = Crc32(attrs.data(), attrs.size() * sizeof(PageRankAttr));
  return row;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int scale =
      static_cast<int>(FlagInt(argc, argv, "scale", smoke ? 11 : 13));
  const int machines =
      static_cast<int>(FlagInt(argc, argv, "machines", smoke ? 2 : 4));
  const int kill_step =
      static_cast<int>(FlagInt(argc, argv, "kill-step", 2));
  const int iterations =
      static_cast<int>(FlagInt(argc, argv, "iterations", smoke ? 6 : 10));

  BenchConfig bc;
  bc.machines = machines;
  bc.budget_bytes = 64ull << 20;

  const EdgeList graph = GenerateRmatX(scale, /*seed=*/33);
  const std::string kill_spec =
      "machine1:machine.kill@superstep=" + std::to_string(kill_step);
  std::printf("bench_recovery: rmat scale %d, %d machines, PR x%d, "
              "kill %s\n\n",
              scale, machines, iterations, kill_spec.c_str());

  const Row baseline =
      RunCell(bc, graph, "baseline", /*checkpoint_every=*/0, "", iterations);
  if (!baseline.m.status.ok()) {
    std::fprintf(stderr, "fault-free baseline failed: %s\n",
                 baseline.m.status.ToString().c_str());
    return 1;
  }
  std::vector<Row> rows;
  rows.push_back(baseline);

  std::vector<int> cadences = smoke ? std::vector<int>{0, 1}
                                    : std::vector<int>{0, 1, 2, 4};
  for (int every : cadences) {
    const std::string label =
        every == 0 ? "kill+ckpt=off" : "kill+ckpt=" + std::to_string(every);
    rows.push_back(RunCell(bc, graph, label, every, kill_spec, iterations));
  }

  std::printf("%-16s %9s %9s %8s %8s %8s %5s %6s %6s\n", "cell",
              "total(s)", "overhead", "detect", "restore", "replay", "recov",
              "ckpts", "match");
  bool ok = true;
  for (const Row& row : rows) {
    const bool expected_fail = row.label == "kill+ckpt=off";
    if (!row.m.status.ok()) {
      std::printf("%-16s %9s  (%s)\n", row.label.c_str(),
                  row.m.Cell().c_str(), row.m.status.ToString().c_str());
      // The checkpoint-free kill must fail as MachineLost; anything else
      // failing (or failing differently) is a bench error.
      if (!expected_fail || !row.m.status.IsMachineLost()) ok = false;
      continue;
    }
    if (expected_fail) {
      std::printf("%-16s completed but was expected to fail\n",
                  row.label.c_str());
      ok = false;
      continue;
    }
    const bool match = row.crc == baseline.crc;
    if (!match) ok = false;
    std::printf("%-16s %9.3f %8.1f%% %8.3f %8.3f %8.3f %5d %6d %6s\n",
                row.label.c_str(), row.m.wall_seconds,
                100.0 * (row.m.wall_seconds / baseline.m.wall_seconds - 1.0),
                row.stats.recovery_detect_seconds,
                row.stats.recovery_restore_seconds,
                row.stats.recovery_replay_seconds, row.m.recoveries,
                row.m.checkpoints, match ? "yes" : "NO");
    if (const char* jp = std::getenv("TGPP_BENCH_JSON");
        jp != nullptr && jp[0] != '\0') {
      Status s = AppendMeasurementJson(row.m, jp);
      if (!s.ok()) {
        std::fprintf(stderr, "TGPP_BENCH_JSON append failed: %s\n",
                     s.ToString().c_str());
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "\nFAIL: recovered run diverged from baseline or the "
                 "checkpoint-free kill did not surface MachineLost\n");
    return 1;
  }
  std::printf("\nall recovered runs bit-identical to baseline (crc %08x)\n",
              baseline.crc);
  return 0;
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) {
  return tgpp::bench::Main(argc, argv);
}
