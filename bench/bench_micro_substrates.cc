// Microbenchmarks (google-benchmark) for the substrates: slotted pages,
// buffer pool, sorted intersections, the RMAT generator, the fabric, and
// the metrics instruments (obs/metrics.h).

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "algos/pagerank.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "core/system.h"
#include "graph/csr.h"
#include "graph/rmat.h"
#include "net/fabric.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace tgpp {
namespace {

void BM_SlottedPageBuild(benchmark::State& state) {
  std::vector<uint8_t> buffer(kPageSize);
  std::vector<VertexId> dsts(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < dsts.size(); ++i) dsts[i] = i * 3;
  for (auto _ : state) {
    SlottedPageBuilder builder(buffer.data());
    VertexId src = 0;
    while (builder.AddRecord(src, dsts)) ++src;
    benchmark::DoNotOptimize(builder.num_slots());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlottedPageBuild)->Arg(8)->Arg(64)->Arg(512);

void BM_SlottedPageScan(benchmark::State& state) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  std::vector<VertexId> dsts(16);
  for (size_t i = 0; i < dsts.size(); ++i) dsts[i] = i;
  VertexId src = 0;
  while (builder.AddRecord(src, dsts)) ++src;
  SlottedPageReader reader(buffer.data());
  for (auto _ : state) {
    uint64_t sum = 0;
    const uint32_t slots = reader.num_slots();
    for (uint32_t s = 0; s < slots; ++s) {
      for (VertexId v : reader.DstsAt(s)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SlottedPageScan);

void BM_BufferPoolHit(benchmark::State& state) {
  const std::string dir = "/tmp/tgpp_bench/micro_pool";
  std::filesystem::remove_all(dir);
  DiskDevice disk(dir, kPcieSsdProfile);
  auto file_result = PageFile::Open(&disk, "micro.pf");
  PageFile file = std::move(file_result).value();
  std::vector<uint8_t> page(kPageSize, 0xab);
  for (int i = 0; i < 8; ++i) {
    auto r = file.AppendPage(page.data());
    benchmark::DoNotOptimize(r.ok());
  }
  BufferPool pool(16);
  for (auto _ : state) {
    auto handle = pool.Fetch(&file, 3);
    benchmark::DoNotOptimize(handle->data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  const std::string dir = "/tmp/tgpp_bench/micro_pool_miss";
  std::filesystem::remove_all(dir);
  DiskDevice disk(dir, kPcieSsdProfile);
  auto file_result = PageFile::Open(&disk, "micro.pf");
  PageFile file = std::move(file_result).value();
  std::vector<uint8_t> page(kPageSize, 0xcd);
  const int kPages = 64;
  for (int i = 0; i < kPages; ++i) {
    auto r = file.AppendPage(page.data());
    benchmark::DoNotOptimize(r.ok());
  }
  BufferPool pool(8);  // 8 frames over 64 pages: every fetch evicts
  uint64_t next = 0;
  for (auto _ : state) {
    auto handle = pool.Fetch(&file, next);
    benchmark::DoNotOptimize(handle->data());
    next = (next + 1) % kPages;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMissEvict);

// Multi-threaded cold-miss throughput: every fetch misses and evicts, so
// each thread spends most of its time in ReadPage. A deterministic 1 ms
// injected device delay per read makes the misses latency-bound, the
// regime of a real cold pool (the PCIe profile models bandwidth only, and
// a bare 64 KB page-cache memcpy saturates one core's memory bandwidth,
// which no latch design can scale past). With reads performed outside the
// pool latch, the delays overlap and aggregate throughput scales with
// threads (the acceptance bar is >= 2x at 4 threads vs 1); under the old
// single global read latch every ReadPage serialized and Threads(4) ran
// at Threads(1) speed.
void BM_BufferPoolConcurrentMiss(benchmark::State& state) {
  static DiskDevice* disk = nullptr;
  static PageFile* file = nullptr;
  static BufferPool* pool = nullptr;
  constexpr int kPagesPerThread = 256;
  if (state.thread_index() == 0) {
    const std::string dir = "/tmp/tgpp_bench/micro_pool_mt";
    std::filesystem::remove_all(dir);
    disk = new DiskDevice(dir, kPcieSsdProfile);
    auto file_result = PageFile::Open(disk, "micro.pf");
    file = new PageFile(std::move(file_result).value());
    std::vector<uint8_t> page(kPageSize, 0xef);
    const int pages = kPagesPerThread * state.threads();
    for (int i = 0; i < pages; ++i) {
      auto r = file->AppendPage(page.data());
      benchmark::DoNotOptimize(r.ok());
    }
    // Far fewer frames than pages: each thread's cycling range keeps
    // missing, so every iteration pays a read and an eviction.
    pool = new BufferPool(16);
    TGPP_CHECK(fault::Configure("disk.read:delay@ms=1").ok());
  }
  const uint64_t base =
      static_cast<uint64_t>(state.thread_index()) * kPagesPerThread;
  uint64_t next = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto handle = pool->Fetch(file, base + next);
    benchmark::DoNotOptimize(handle->data());
    next = (next + 1) % kPagesPerThread;
  }
  // Each thread reports its own fetch rate; counters sum across threads,
  // so `agg_fetches_per_sec` is the pool's aggregate miss throughput —
  // the number that must scale with threads (items_per_second is the
  // per-thread rate and stays roughly flat).
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.counters["agg_fetches_per_sec"] = benchmark::Counter(
      secs > 0 ? static_cast<double>(state.iterations()) / secs : 0);
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    fault::Disarm();
    delete pool;
    pool = nullptr;
    delete file;
    file = nullptr;
    delete disk;
    disk = nullptr;
  }
}
BENCHMARK(BM_BufferPoolConcurrentMiss)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// Async cold-miss throughput vs queue depth: batches of non-adjacent
// pages through AsyncIoService/SubmitReads with a 1 ms injected device
// delay per request. With the io_uring backend the in-flight window is
// the ring depth (range(0)), so aggregate throughput scales with it; the
// thread-pool fallback is capped by its worker count. Run with
// TGPP_IO_BACKEND=threads / =uring to compare backends.
void BM_AsyncMissQueueDepth(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  const std::string dir = "/tmp/tgpp_bench/micro_async_depth";
  std::filesystem::remove_all(dir);
  DiskDevice disk(dir, kPcieSsdProfile);
  auto file_result = PageFile::Open(&disk, "micro.pf");
  PageFile file(std::move(file_result).value());
  constexpr int kPages = 256;
  std::vector<uint8_t> page(kPageSize, 0xcd);
  for (int i = 0; i < kPages; ++i) {
    auto r = file.AppendPage(page.data());
    benchmark::DoNotOptimize(r.ok());
  }
  BufferPool pool(static_cast<size_t>(depth) * 2 + 8);
  AsyncIoService io(/*num_io_threads=*/4, -1, IoBackendKind::kAuto, depth);
  TGPP_CHECK(fault::Configure("disk.read:delay@ms=1").ok());
  // Stride-2 page order: nothing adjacent, so no request merging — the
  // measured window is purely the backend's in-flight parallelism.
  std::vector<uint64_t> order;
  for (int p = 0; p < kPages; p += 2) order.push_back(p);
  for (int p = 1; p < kPages; p += 2) order.push_back(p);
  size_t next = 0;
  uint64_t pages_done = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<uint64_t> window;
    for (unsigned i = 0; i < depth; ++i) {
      window.push_back(order[next]);
      next = (next + 1) % order.size();
    }
    auto ticket = io.SubmitReads(&pool, &file, std::move(window),
                                 [](uint64_t, PageHandle) {});
    ticket.Wait();
    pages_done += depth;
    pool.DropAll();  // every batch misses again
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  fault::Disarm();
  state.counters["pages_per_sec"] = benchmark::Counter(
      secs > 0 ? static_cast<double>(pages_done) / secs : 0);
  state.SetItemsProcessed(static_cast<int64_t>(pages_done));
  state.SetLabel(io.backend_name());
}
BENCHMARK(BM_AsyncMissQueueDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_IntersectionBalanced(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = i * 2;
    b[i] = i * 3;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntersectionBalanced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectionGalloping(benchmark::State& state) {
  // Skewed pair: short list vs long list — the degree-ordered hot case.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> a(16), b(n);
  for (size_t i = 0; i < a.size(); ++i) a[i] = i * (n / 16);
  for (size_t i = 0; i < n; ++i) b[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
}
BENCHMARK(BM_IntersectionGalloping)->Arg(1024)->Arg(65536);

void BM_RmatGenerate(benchmark::State& state) {
  RmatParams params;
  params.vertex_scale = 14;
  params.num_edges = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(GenerateRmat(params).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGenerate)->Arg(1 << 14)->Arg(1 << 17);

void BM_FabricRoundtrip(benchmark::State& state) {
  Fabric fabric(2, kInfinibandQdr);
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 7);
  Message msg;
  for (auto _ : state) {
    fabric.Send(0, 1, 0, payload);
    const bool got = fabric.TryRecv(1, 0, &msg);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FabricRoundtrip)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MetricsCounterAdd(benchmark::State& state) {
  // The hot-path cost of one instrument update: a single relaxed
  // fetch_add (or nothing at all under TGPP_DISABLE_METRICS).
  obs::Counter counter;
  for (auto _ : state) {
    counter.Add(1);
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(obs::kMetricsCompiledOut ? "metrics-off" : "metrics-on");
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram hist;
  int64_t v = 1;
  for (auto _ : state) {
    hist.Record(v);
    v = (v * 7 + 13) & 0xfffff;  // spread over buckets, no clock reads
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(obs::kMetricsCompiledOut ? "metrics-off" : "metrics-on");
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_EventEmit(benchmark::State& state) {
  // Cost of one structured-log emit on the enabled path: a thread-local
  // ring slot store plus one release publish (docs/OBSERVABILITY.md).
  // The ring is drained periodically so the loop measures steady-state
  // writes, not wrap accounting.
  obs::SetEventsEnabled(true);
  obs::ResetEvents();
  uint64_t i = 0;
  for (auto _ : state) {
    obs::EmitEvent(obs::EventType::kSuperstep, /*job_id=*/1, /*machine=*/0,
                   static_cast<int>(i & 0xff), "push", "active", i);
    if ((++i & 0xfff) == 0) benchmark::DoNotOptimize(obs::DrainEvents());
  }
  obs::SetEventsEnabled(false);
  obs::ResetEvents();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("events-on");
}
BENCHMARK(BM_EventEmit);

void BM_EventEmitDisabled(benchmark::State& state) {
  // The cost every engine superstep pays when no --events-out sink is
  // attached: one relaxed atomic load and out.
  obs::SetEventsEnabled(false);
  for (auto _ : state) {
    obs::EmitEvent(obs::EventType::kSuperstep, 1, 0, 3, "push", "active",
                   42);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("events-off");
}
BENCHMARK(BM_EventEmitDisabled);

void BM_PageRankInstrumented(benchmark::State& state) {
  // End-to-end PageRank on a small in-memory RMAT graph. The overhead
  // acceptance check for the metrics layer compares this benchmark built
  // with -DTGPP_DISABLE_METRICS=ON against the default build (label shows
  // which one is running): the instrumented wall time must stay within a
  // few percent of the compiled-out build.
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.memory_budget_bytes = 64ull << 20;
  config.buffer_pool_frames = 96;
  config.root_dir = "/tmp/tgpp_bench/micro_metrics_pr";
  std::filesystem::remove_all(config.root_dir);
  const EdgeList graph = GenerateRmatX(/*scale=*/14, /*seed=*/714);
  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(graph));
  auto app = MakePageRankApp(system.partition(), /*iterations=*/3);
  for (auto _ : state) {
    system.cluster()->ResetCounters();
    auto stats = system.RunQuery(app);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    benchmark::DoNotOptimize(stats->wall_seconds);
  }
  state.SetLabel(obs::kMetricsCompiledOut ? "metrics-off" : "metrics-on");
}
BENCHMARK(BM_PageRankInstrumented)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgpp

BENCHMARK_MAIN();
