// SNB-style interactive workload over the dynamic-graph subsystem
// (docs/DYNAMIC.md, docs/SERVICE.md).
//
// Mirrors the shape of the LDBC SNB interactive workload: closed-loop
// clients drive a mixed stream of short reads (pr/sssp/wcc jobs) and
// writes (update jobs carrying small edge-mutation batches) against ONE
// JobManager over a shared cluster. Update jobs run exclusively (they
// reserve the whole admission ledger), so every read observes a single
// mutation epoch — the snapshot-consistency contract this bench prices.
//
// Reported: ops/sec, update throughput, read/write latency p50/p99, and
// two correctness gates plus one acceptance measurement:
//   1. final-state gate — after the workload drains, the digest of a
//      converged integer PageRank on the mutated-in-place graph must
//      equal the digest on a FRESH system loaded with the offline rebuilt
//      edge list (base - deletes + inserts). Mutation streams are
//      constructed conflict-free (inserts target absent edges, deletes
//      distinct present edges), so the final edge set is independent of
//      the order concurrent update jobs committed in.
//   2. recovery gate — a machine is killed mid-batch (fault injection),
//      then WAL replay (Recover) must converge to the digest of a
//      fault-free apply of the same batch.
//   3. incremental-vs-full — after a small batch (affected vertices
//      <= ~1% of V when the graph is big enough), a warm incremental
//      PageRank (dyn/incremental.h) is timed against the full recompute;
//      the warm state must be exactly quiescent with ranks within
//      kPrIncScale/1000 of the cold fixed point (the integer map's
//      fixed point is non-unique — src/dyn/incremental.h), and the
//      speedup is reported.
//
// --smoke shrinks everything for CI; the gates are asserted in every
// mode (exit 1 on any mismatch or failed job).
//
// TGPP_BENCH_JSON=results.jsonl appends one JSON line per row.
//
//   bench_snb_interactive [--scale=14] [--ops=40] [--clients=3]
//                         [--machines=4] [--write-pct=10] [--batch=8]
//                         [--max-running=2] [--smoke]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"

#include "bench_util.h"
#include "dyn/dynamic_graph.h"
#include "dyn/incremental.h"
#include "service/job_manager.h"
#include "service/wire.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace tgpp::bench {
namespace {

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(pct * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

void AppendJsonRow(const std::string& row) {
  const char* path = std::getenv("TGPP_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << row << "\n";
}

// Digest of a converged integer PageRank, old-id order. The cold
// incremental app IS the full-recompute baseline, and its integer
// gathers are order-free, so the digest is partition-independent: a
// mutated-in-place system and a freshly rebuilt one must agree.
uint32_t PrDigest(TurboGraphSystem* system) {
  auto app = dyn::MakePageRankIncApp(system->partition());
  std::vector<dyn::PrIncAttr> attrs;
  EngineOptions options;
  options.deterministic = true;
  auto stats = system->RunQuery(app, &attrs, options);
  TGPP_CHECK_OK(stats.status());
  std::vector<int64_t> ranks(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) ranks[i] = attrs[i].rank;
  return Crc32(ranks.data(), ranks.size() * sizeof(int64_t));
}

// Spread `write_pct`% of op indices evenly through the stream.
bool IsWriteOp(int i, int write_pct) {
  return (i + 1) * write_pct / 100 > i * write_pct / 100;
}

// Deterministic conflict-free mutation stream: every insert targets an
// edge absent from the base graph and untouched by any other op; every
// delete removes a distinct base edge. The union/difference is therefore
// the same no matter which order the update jobs commit in.
class MutationStream {
 public:
  explicit MutationStream(const EdgeList& graph)
      : graph_(graph), present_(graph.edges.begin(), graph.edges.end()) {}

  service::JobSpec NextUpdateSpec(int batch_size) {
    service::JobSpec spec;
    spec.query = "update";
    for (int j = 0; j < batch_size; ++j) {
      // ~1 delete per 4 mutations keeps the write mix insert-heavy like
      // SNB's (new edges dominate removals).
      if (j % 4 == 3) {
        const Edge* victim = NextDeletableEdge();
        if (victim != nullptr) {
          spec.mutations.push_back(dyn::FormatEdgeMutation(
              {dyn::EdgeOp::kDelete, victim->src, victim->dst}));
          continue;
        }
      }
      const Edge fresh = NextFreshEdge();
      spec.mutations.push_back(dyn::FormatEdgeMutation(
          {dyn::EdgeOp::kInsert, fresh.src, fresh.dst}));
    }
    return spec;
  }

  // The offline rebuild of the final state: base - deletes + inserts.
  EdgeList FinalEdgeList() const {
    std::set<Edge> final_set = present_;
    for (const Edge& e : deleted_) final_set.erase(e);
    for (const Edge& e : inserted_) final_set.insert(e);
    EdgeList out;
    out.num_vertices = graph_.num_vertices;
    out.edges.assign(final_set.begin(), final_set.end());
    return out;
  }

  size_t inserts() const { return inserted_.size(); }
  size_t deletes() const { return deleted_.size(); }

 private:
  Edge NextFreshEdge() {
    const uint64_t n = graph_.num_vertices;
    while (true) {
      const VertexId s = cursor_ % n;
      const VertexId d = (cursor_ * 2654435761ull) % n;
      ++cursor_;
      if (s == d) continue;
      const Edge e{s, d};
      if (present_.count(e) != 0 || inserted_.count(e) != 0) continue;
      inserted_.insert(e);
      return e;
    }
  }

  const Edge* NextDeletableEdge() {
    while (delete_cursor_ < graph_.edges.size()) {
      const Edge& e = graph_.edges[delete_cursor_++];
      if (deleted_.count(e) != 0) continue;
      deleted_.insert(e);
      return &e;
    }
    return nullptr;
  }

  const EdgeList& graph_;
  std::set<Edge> present_;
  std::set<Edge> inserted_;
  std::set<Edge> deleted_;
  uint64_t cursor_ = 1;
  size_t delete_cursor_ = 0;
};

service::JobSpec ReadSpecFor(int read_index) {
  service::JobSpec spec;
  switch (read_index % 3) {
    case 0:
      spec.query = "pr";
      spec.iterations = 3;
      break;
    case 1:
      spec.query = "sssp";
      break;
    default:
      spec.query = "wcc";
      break;
  }
  return spec;
}

struct WorkloadResult {
  double seconds = 0;
  int failed = 0;
  int reads = 0;
  int writes = 0;
  double read_p50 = 0, read_p99 = 0;
  double write_p50 = 0, write_p99 = 0;
  double qw_p50 = 0, qw_p99 = 0;
  uint64_t edges_inserted = 0, edges_deleted = 0;
  uint64_t final_epoch = 0;
};

WorkloadResult RunWorkload(TurboGraphSystem* system,
                           dyn::DynamicGraph* dynamic,
                           const std::vector<service::JobSpec>& ops,
                           int clients, int max_running) {
  service::JobServiceOptions svc;
  svc.max_running = max_running;
  service::JobManager manager(system->cluster(), system->partition(), svc,
                              dynamic);

  WallTimer timer;
  std::atomic<int> next{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int cl = 0; cl < clients; ++cl) {
    workers.emplace_back([&] {
      for (int i; (i = next.fetch_add(1)) <
                  static_cast<int>(ops.size());) {
        auto id = manager.Submit(ops[static_cast<size_t>(i)]);
        if (!id.ok()) {
          failed.fetch_add(1);
          continue;
        }
        auto record = manager.Wait(*id, /*timeout_ms=*/600000);
        if (!record.ok() || record->state != service::JobState::kDone) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  WorkloadResult result;
  result.seconds = timer.Seconds();
  result.failed = failed.load();

  std::vector<double> read_times, write_times, queue_waits;
  for (const service::JobRecord& record : manager.ListJobs()) {
    queue_waits.push_back(record.queue_wait_seconds);
    if (record.spec.query == "update") {
      ++result.writes;
      write_times.push_back(record.run_seconds);
      result.edges_inserted += record.edges_inserted;
      result.edges_deleted += record.edges_deleted;
      result.final_epoch = std::max(result.final_epoch, record.epoch);
    } else {
      ++result.reads;
      read_times.push_back(record.run_seconds);
    }
  }
  result.read_p50 = Percentile(read_times, 0.50);
  result.read_p99 = Percentile(read_times, 0.99);
  result.write_p50 = Percentile(write_times, 0.50);
  result.write_p99 = Percentile(write_times, 0.99);
  result.qw_p50 = Percentile(queue_waits, 0.50);
  result.qw_p99 = Percentile(queue_waits, 0.99);
  manager.Shutdown();
  return result;
}

struct IncrementalResult {
  double cold_seconds = 0;
  double warm_seconds = 0;
  int cold_supersteps = 0;
  int warm_supersteps = 0;
  size_t affected = 0;
  bool exact = false;  // quiescent + rank within tolerance of cold
};

// Times a warm incremental PageRank against the full recompute after one
// small batch. Both runs execute on the same (warm) buffer pool; both
// are the SAME kernel, differing only in init mode, so bit-equality is
// the acceptance check, not an approximation bound.
IncrementalResult MeasureIncremental(TurboGraphSystem* system,
                                     dyn::DynamicGraph* dynamic,
                                     MutationStream* stream,
                                     int batch_size) {
  IncrementalResult result;
  EngineOptions det;
  det.deterministic = true;

  // Converge once on the current graph to obtain the warm state.
  auto warm_app = dyn::MakePageRankIncApp(system->partition());
  std::vector<dyn::PrIncAttr> warm;
  TGPP_CHECK_OK(system->RunQuery(warm_app, &warm, det).status());

  // One small batch, continuing the workload's stream so every mutation
  // is fresh against the live graph (a restarted stream would replay the
  // already-applied sequence and the batch would be all idempotent
  // skips, seeding an empty frontier).
  const service::JobSpec spec = stream->NextUpdateSpec(batch_size);
  dyn::UpdateBatch batch;
  for (const std::string& text : spec.mutations) {
    auto m = dyn::ParseEdgeMutation(text);
    TGPP_CHECK_OK(m.status());
    batch.mutations.push_back(*m);
  }
  dyn::ApplyStats stats;
  TGPP_CHECK_OK(dynamic->ApplyBatch(batch, &stats));
  result.affected = stats.affected.size();

  // Full recompute on the mutated graph (cold init of the same kernel).
  WallTimer cold_timer;
  auto cold_app = dyn::MakePageRankIncApp(system->partition());
  std::vector<dyn::PrIncAttr> cold_attrs;
  auto cold_stats = system->RunQuery(cold_app, &cold_attrs, det);
  TGPP_CHECK_OK(cold_stats.status());
  result.cold_seconds = cold_timer.Seconds();
  result.cold_supersteps = cold_stats->supersteps;

  // Warm incremental: previous state + per-mutation corrections.
  WallTimer warm_timer;
  auto inject = dyn::BuildPrInjections(system->partition(), stats.applied,
                                       warm);
  auto inc_app =
      dyn::MakePageRankIncApp(system->partition(), &warm, std::move(inject));
  std::vector<dyn::PrIncAttr> warm_attrs;
  auto inc_stats = system->RunQuery(inc_app, &warm_attrs, det);
  TGPP_CHECK_OK(inc_stats.status());
  result.warm_seconds = warm_timer.Seconds();
  result.warm_supersteps = inc_stats->supersteps;

  // Acceptance (src/dyn/incremental.h): the warm result must be a TRUE
  // quiescent state of the integer PageRank equations — checked exactly
  // per vertex — with ranks within kPrIncScale/1000 of the cold fixed
  // point (the integer map's fixed point is non-unique, so bit-equality
  // is not the contract for pr-inc). Announced contributions are a pure
  // function of (rank, deg) up to floor truncation, so their gap is
  // bounded by the rank gap: |da| <= (|dr|*85/100)/deg + 2.
  result.exact = cold_attrs.size() == warm_attrs.size();
  size_t violations = 0;
  for (size_t i = 0; i < warm_attrs.size() && result.exact; ++i) {
    const dyn::PrIncAttr& w = warm_attrs[i];
    const dyn::PrIncAttr& c = cold_attrs[i];
    const int64_t dr = std::llabs(w.rank - c.rank);
    const int64_t da_bound =
        (dr * 85 / 100) / std::max<int64_t>(1, (int64_t)w.deg) + 2;
    const bool ok =
        w.deg == c.deg && w.rank == dyn::kPrIncBase + w.sum &&
        w.announced == dyn::PrIncContrib(w.rank, w.deg) &&
        std::llabs(w.announced - c.announced) <= da_bound &&
        dr <= dyn::kPrIncScale / 1000;
    if (!ok) {
      if (violations++ < 5) {
        std::fprintf(stderr,
                     "pr-inc violation old_id=%zu cold(r=%lld a=%lld "
                     "d=%llu) warm(r=%lld s=%lld a=%lld d=%llu)\n",
                     i, (long long)c.rank, (long long)c.announced,
                     (unsigned long long)c.deg, (long long)w.rank,
                     (long long)w.sum, (long long)w.announced,
                     (unsigned long long)w.deg);
      }
      result.exact = false;
    }
  }
  return result;
}

// Kill machine 1 mid-batch, then WAL replay must converge to the digest
// of a fault-free apply of the same batch.
bool RecoveryGate(const EdgeList& graph, const ClusterConfig& base) {
  dyn::UpdateBatch batch;
  const uint64_t n = graph.num_vertices;
  for (uint64_t s = 0; s < 24 && s < n; ++s) {
    batch.Insert(s, (s + n / 2 + 1) % n);
  }

  ClusterConfig clean_config = base;
  clean_config.root_dir = base.root_dir + "/recovery_clean";
  std::filesystem::remove_all(clean_config.root_dir);
  TurboGraphSystem clean(clean_config);
  TGPP_CHECK_OK(clean.LoadGraph(graph));
  dyn::DynamicGraph clean_dyn(clean.cluster(), clean.mutable_partition());
  TGPP_CHECK_OK(clean_dyn.ApplyBatch(batch));
  const uint32_t clean_digest = PrDigest(&clean);

  ClusterConfig chaos_config = base;
  chaos_config.root_dir = base.root_dir + "/recovery_chaos";
  std::filesystem::remove_all(chaos_config.root_dir);
  TurboGraphSystem chaos(chaos_config);
  TGPP_CHECK_OK(chaos.LoadGraph(graph));
  dyn::DynamicGraph chaos_dyn(chaos.cluster(), chaos.mutable_partition());
  TGPP_CHECK_OK(fault::Configure("machine1:machine.kill@n=2", /*seed=*/7));
  const Status hit = chaos_dyn.ApplyBatch(batch);
  fault::Disarm();
  if (!hit.IsMachineLost()) {
    std::printf("recovery gate: kill did not fire (%s)\n",
                hit.ToString().c_str());
    return false;
  }
  chaos.cluster()->ReviveAllMachines();
  TGPP_CHECK_OK(chaos_dyn.Recover());
  const uint32_t replayed_digest = PrDigest(&chaos);

  if (replayed_digest != clean_digest) {
    std::printf("recovery gate: digest mismatch %08x != %08x\n",
                replayed_digest, clean_digest);
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  const bool smoke = FlagStr(argc, argv, "smoke", "") == "1" ||
                     std::find_if(argv + 1, argv + argc, [](const char* a) {
                       return std::string(a) == "--smoke";
                     }) != argv + argc;
  const int scale =
      static_cast<int>(FlagInt(argc, argv, "scale", smoke ? 12 : 14));
  const int total_ops =
      static_cast<int>(FlagInt(argc, argv, "ops", smoke ? 20 : 40));
  const int clients =
      static_cast<int>(FlagInt(argc, argv, "clients", smoke ? 2 : 3));
  const int write_pct =
      static_cast<int>(FlagInt(argc, argv, "write-pct", 10));
  const int batch_size = static_cast<int>(FlagInt(argc, argv, "batch", 8));
  const int max_running =
      static_cast<int>(FlagInt(argc, argv, "max-running", 2));

  EdgeList graph = GenerateRmatX(scale, /*seed=*/77);
  RemoveSelfLoops(&graph);
  DeduplicateEdges(&graph);

  ClusterConfig config;
  config.num_machines =
      static_cast<int>(FlagInt(argc, argv, "machines", 4));
  config.memory_budget_bytes = 32ull << 20;
  config.buffer_pool_frames = 64;
  config.root_dir = "/tmp/tgpp_bench_snb";
  std::filesystem::remove_all(config.root_dir);

  ClusterConfig shared_config = config;
  shared_config.root_dir = config.root_dir + "/shared";
  TurboGraphSystem system(shared_config);
  // Pin q up front, like `tgpp serve`: once mutated, the graph cannot be
  // repartitioned without dropping the applied batches.
  auto q = service::RequiredQForService(*system.cluster(),
                                        graph.num_vertices, max_running);
  TGPP_CHECK_OK(q.status());
  TGPP_CHECK_OK(system.LoadGraph(graph, PartitionScheme::kBbp, *q));
  system.cluster()->ResetCountersAndCaches();
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  // Pre-generate the deterministic op stream (the closed loop then only
  // pulls indices, so client count does not change the workload).
  MutationStream stream(graph);
  std::vector<service::JobSpec> ops;
  ops.reserve(static_cast<size_t>(total_ops));
  int read_index = 0;
  for (int i = 0; i < total_ops; ++i) {
    if (IsWriteOp(i, write_pct)) {
      ops.push_back(stream.NextUpdateSpec(batch_size));
    } else {
      ops.push_back(ReadSpecFor(read_index++));
    }
  }

  const WorkloadResult wl =
      RunWorkload(&system, &dynamic, ops, clients, max_running);

  // Gate 1: mutated-in-place digest vs offline rebuild.
  const uint32_t live_digest = PrDigest(&system);
  ClusterConfig rebuilt_config = config;
  rebuilt_config.root_dir = config.root_dir + "/rebuilt";
  TurboGraphSystem rebuilt(rebuilt_config);
  TGPP_CHECK_OK(rebuilt.LoadGraph(stream.FinalEdgeList()));
  const uint32_t rebuilt_digest = PrDigest(&rebuilt);
  const bool final_state_ok = live_digest == rebuilt_digest;

  // Acceptance: incremental recompute vs full rerun after a small batch.
  const int inc_batch = std::max(
      2, static_cast<int>(graph.num_vertices / 200));  // <=1% endpoints
  const IncrementalResult inc =
      MeasureIncremental(&system, &dynamic, &stream, inc_batch);
  const double speedup = inc.warm_seconds > 0
                             ? inc.cold_seconds / inc.warm_seconds
                             : 0;

  // Gate 2: kill + WAL replay convergence.
  const bool recovery_ok = RecoveryGate(graph, config);

  const double ops_per_sec = wl.seconds > 0 ? total_ops / wl.seconds : 0;
  const double updates_per_sec =
      wl.seconds > 0 ? wl.writes / wl.seconds : 0;
  std::printf("snb interactive: scale=%d ops=%d clients=%d write_pct=%d "
              "batch=%d machines=%d q=%d%s\n",
              scale, total_ops, clients, write_pct, batch_size,
              config.num_machines, *q, smoke ? " (smoke)" : "");
  std::printf("throughput: %.3f ops/s (%.3f updates/s), %d reads, "
              "%d writes, %d failed, %.2f s\n",
              ops_per_sec, updates_per_sec, wl.reads, wl.writes, wl.failed,
              wl.seconds);
  std::printf("latency: read p50/p99 %.3f/%.3f s, write p50/p99 "
              "%.3f/%.3f s, queue p50/p99 %.3f/%.3f s\n",
              wl.read_p50, wl.read_p99, wl.write_p50, wl.write_p99,
              wl.qw_p50, wl.qw_p99);
  std::printf("mutations: %llu inserted, %llu deleted, final epoch %llu\n",
              static_cast<unsigned long long>(wl.edges_inserted),
              static_cast<unsigned long long>(wl.edges_deleted),
              static_cast<unsigned long long>(wl.final_epoch));
  std::printf("final state: live %08x vs rebuilt %08x -> %s\n", live_digest,
              rebuilt_digest, final_state_ok ? "MATCH" : "MISMATCH");
  std::printf("incremental: %zu affected (%.2f%% of V), warm %.3f s / "
              "%d steps vs full %.3f s / %d steps -> %.1fx, %s\n",
              inc.affected,
              100.0 * inc.affected / graph.num_vertices,
              inc.warm_seconds, inc.warm_supersteps, inc.cold_seconds,
              inc.cold_supersteps, speedup,
              inc.exact ? "exact (quiescent, bounded)" : "VIOLATED");
  std::printf("recovery: %s\n", recovery_ok ? "OK" : "FAILED");

  AppendJsonRow(service::JsonWriter()
                    .Str("bench", "snb_interactive")
                    .Int("scale", scale)
                    .Int("ops", total_ops)
                    .Int("clients", clients)
                    .Int("write_pct", write_pct)
                    .Int("batch", batch_size)
                    .Int("failed", wl.failed)
                    .Double("ops_per_sec", ops_per_sec)
                    .Double("updates_per_sec", updates_per_sec)
                    .Double("read_p50_s", wl.read_p50)
                    .Double("read_p99_s", wl.read_p99)
                    .Double("write_p50_s", wl.write_p50)
                    .Double("write_p99_s", wl.write_p99)
                    .UInt("edges_inserted", wl.edges_inserted)
                    .UInt("edges_deleted", wl.edges_deleted)
                    .UInt("final_epoch", wl.final_epoch)
                    .Bool("final_state_ok", final_state_ok)
                    .Double("inc_warm_s", inc.warm_seconds)
                    .Double("inc_full_s", inc.cold_seconds)
                    .Double("inc_speedup", speedup)
                    .Bool("inc_exact", inc.exact)
                    .Bool("recovery_ok", recovery_ok)
                    .Close());

  const bool ok = wl.failed == 0 && final_state_ok && inc.exact &&
                  recovery_ok;
  if (!smoke && speedup < 3.0) {
    std::printf("NOTE: incremental speedup %.1fx below the 3x target "
                "(timing-sensitive; supersteps ratio %d:%d is the robust "
                "signal)\n",
                speedup, inc.cold_supersteps, inc.warm_supersteps);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) { return tgpp::bench::Main(argc, argv); }
