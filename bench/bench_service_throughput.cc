// Multi-query job-service throughput (docs/SERVICE.md).
//
// Closed-loop clients submit a mixed PageRank/SSSP/WCC stream against one
// `JobManager` over a shared cluster and wait for each job before sending
// the next. Reports jobs/sec plus queue-wait and run-latency p50/p99, and
// a comparison row that executes the same job list serially with a FRESH
// system per job (reload + repartition + cold buffer pool every time) —
// the cost the shared service amortizes away.
//
// TGPP_BENCH_JSON=results.jsonl appends one JSON line per row.
//
//   bench_service_throughput [--scale=12] [--jobs=12] [--clients=3]
//                            [--max-running=2] [--machines=2]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.h"

#include "bench_util.h"
#include "service/job_manager.h"
#include "service/wire.h"
#include "util/timer.h"

namespace tgpp::bench {
namespace {

service::JobSpec SpecFor(int index) {
  service::JobSpec spec;
  switch (index % 3) {
    case 0:
      spec.query = "pr";
      spec.iterations = 3;
      break;
    case 1:
      spec.query = "sssp";
      break;
    default:
      spec.query = "wcc";
      break;
  }
  return spec;
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(pct * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

void AppendJsonRow(const std::string& row) {
  const char* path = std::getenv("TGPP_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << row << "\n";
}

int Main(int argc, char** argv) {
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 12));
  const int total_jobs = static_cast<int>(FlagInt(argc, argv, "jobs", 12));
  const int clients = static_cast<int>(FlagInt(argc, argv, "clients", 3));
  const int max_running =
      static_cast<int>(FlagInt(argc, argv, "max-running", 2));

  EdgeList graph = GenerateRmatX(scale, /*seed=*/77);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);

  ClusterConfig config;
  config.num_machines =
      static_cast<int>(FlagInt(argc, argv, "machines", 2));
  config.memory_budget_bytes = 32ull << 20;
  config.buffer_pool_frames = 64;
  config.root_dir = "/tmp/tgpp_bench_service/shared";
  std::filesystem::remove_all(config.root_dir);

  // --- Row 1: the shared service. One cluster, one partition, one
  // buffer pool; `clients` closed-loop submitters.
  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(graph));
  system.cluster()->ResetCountersAndCaches();

  service::JobServiceOptions svc;
  svc.max_running = max_running;
  service::JobManager manager(system.cluster(), system.partition(), svc);

  WallTimer shared_timer;
  std::atomic<int> next{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int cl = 0; cl < clients; ++cl) {
    workers.emplace_back([&] {
      for (int i; (i = next.fetch_add(1)) < total_jobs;) {
        auto id = manager.Submit(SpecFor(i));
        if (!id.ok()) {
          failed.fetch_add(1);
          continue;
        }
        auto record = manager.Wait(*id, /*timeout_ms=*/600000);
        if (!record.ok() || record->state != service::JobState::kDone) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double shared_seconds = shared_timer.Seconds();

  std::vector<double> queue_waits;
  std::vector<double> run_times;
  for (const service::JobRecord& record : manager.ListJobs()) {
    queue_waits.push_back(record.queue_wait_seconds);
    run_times.push_back(record.run_seconds);
  }
  manager.Shutdown();
  const ClusterSnapshot shared_snap = system.cluster()->Snapshot();
  const double shared_jobs_per_sec =
      shared_seconds > 0 ? total_jobs / shared_seconds : 0;

  // --- Row 2: the same job list, serial, fresh system per job. Every
  // job pays graph load + partition + cold pool again.
  WallTimer reload_timer;
  int reload_failed = 0;
  for (int i = 0; i < total_jobs; ++i) {
    ClusterConfig fresh = config;
    fresh.root_dir = "/tmp/tgpp_bench_service/reload";
    std::filesystem::remove_all(fresh.root_dir);
    TurboGraphSystem one_shot(fresh);
    if (!one_shot.LoadGraph(graph).ok()) {
      ++reload_failed;
      continue;
    }
    EngineOptions det;
    det.deterministic = true;
    const service::JobSpec spec = SpecFor(i);
    Result<QueryStats> stats = Status::OK();
    if (spec.query == "pr") {
      auto app = MakePageRankApp(one_shot.partition(), spec.iterations);
      stats = one_shot.RunQuery(app, det);
    } else if (spec.query == "sssp") {
      auto app = MakeSsspApp(one_shot.partition(), spec.source);
      stats = one_shot.RunQuery(app, det);
    } else {
      auto app = MakeWccApp(one_shot.partition());
      stats = one_shot.RunQuery(app, det);
    }
    if (!stats.ok()) ++reload_failed;
  }
  const double reload_seconds = reload_timer.Seconds();
  const double reload_jobs_per_sec =
      reload_seconds > 0 ? total_jobs / reload_seconds : 0;

  const double qw_p50 = Percentile(queue_waits, 0.50);
  const double qw_p99 = Percentile(queue_waits, 0.99);
  const double run_p50 = Percentile(run_times, 0.50);
  const double run_p99 = Percentile(run_times, 0.99);

  std::printf("service throughput: scale=%d jobs=%d clients=%d "
              "max_running=%d\n",
              scale, total_jobs, clients, max_running);
  std::printf("%-16s %9s %8s %12s %12s %9s\n", "system", "jobs/s",
              "failed", "queue p50/p99", "run p50/p99", "total s");
  std::printf("%-16s %9.3f %8d %6.3f/%.3f %6.3f/%.3f %9.2f\n",
              "service-shared", shared_jobs_per_sec, failed.load(), qw_p50,
              qw_p99, run_p50, run_p99, shared_seconds);
  std::printf("%-16s %9.3f %8d %13s %13s %9.2f\n", "per-job-reload",
              reload_jobs_per_sec, reload_failed, "-", "-", reload_seconds);
  std::printf("shared pool: disk %.2f MB, net %.2f MB over %d jobs\n",
              shared_snap.disk_bytes / 1e6, shared_snap.net_bytes / 1e6,
              total_jobs);

  AppendJsonRow(service::JsonWriter()
                    .Str("bench", "service_throughput")
                    .Str("system", "service-shared")
                    .Int("scale", scale)
                    .Int("jobs", total_jobs)
                    .Int("clients", clients)
                    .Int("max_running", max_running)
                    .Int("failed", failed.load())
                    .Double("jobs_per_sec", shared_jobs_per_sec)
                    .Double("queue_wait_p50_s", qw_p50)
                    .Double("queue_wait_p99_s", qw_p99)
                    .Double("run_p50_s", run_p50)
                    .Double("run_p99_s", run_p99)
                    .Double("total_s", shared_seconds)
                    .UInt("disk_bytes", shared_snap.disk_bytes)
                    .UInt("net_bytes", shared_snap.net_bytes)
                    .Close());
  AppendJsonRow(service::JsonWriter()
                    .Str("bench", "service_throughput")
                    .Str("system", "per-job-reload")
                    .Int("scale", scale)
                    .Int("jobs", total_jobs)
                    .Int("failed", reload_failed)
                    .Double("jobs_per_sec", reload_jobs_per_sec)
                    .Double("total_s", reload_seconds)
                    .Close());
  return (failed.load() == 0 && reload_failed == 0) ? 0 : 1;
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) { return tgpp::bench::Main(argc, argv); }
