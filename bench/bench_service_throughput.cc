// Multi-query job-service throughput (docs/SERVICE.md).
//
// Closed-loop clients submit a mixed PageRank/SSSP/WCC stream against one
// `JobManager` over a shared cluster and wait for each job before sending
// the next. Reports jobs/sec plus queue-wait and run-latency p50/p99 for
// the service with the observability plane off and on (structured event
// log streaming to disk + per-job profiles + a profile fetch per job,
// docs/OBSERVABILITY.md) — the on/off delta is the plane's end-to-end
// tax — and a comparison row that executes the same job list serially
// with a FRESH system per job (reload + repartition + cold buffer pool
// every time), the cost the shared service amortizes away.
//
// TGPP_BENCH_JSON=results.jsonl appends one JSON line per row.
//
//   bench_service_throughput [--scale=12] [--jobs=12] [--clients=3]
//                            [--max-running=2] [--machines=2]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.h"

#include "bench_util.h"
#include "obs/events.h"
#include "service/job_manager.h"
#include "service/wire.h"
#include "util/timer.h"

namespace tgpp::bench {
namespace {

service::JobSpec SpecFor(int index) {
  service::JobSpec spec;
  switch (index % 3) {
    case 0:
      spec.query = "pr";
      spec.iterations = 3;
      break;
    case 1:
      spec.query = "sssp";
      break;
    default:
      spec.query = "wcc";
      break;
  }
  return spec;
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(pct * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

void AppendJsonRow(const std::string& row) {
  const char* path = std::getenv("TGPP_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << row << "\n";
}

struct SharedRunResult {
  double seconds = 0;
  double jobs_per_sec = 0;
  int failed = 0;
  double qw_p50 = 0, qw_p99 = 0;
  double run_p50 = 0, run_p99 = 0;
  uint64_t disk_bytes = 0, net_bytes = 0;
  uint64_t events_recorded = 0, events_dropped = 0;
};

// One shared-service run: `clients` closed-loop submitters draining
// `total_jobs`. With `observability`, the structured event log streams
// to `events_path` on a 200 ms cadence (mirroring `tgpp serve
// --events-out`) and every finished job's profile is fetched — the full
// operator-facing surface, priced end to end.
SharedRunResult RunShared(const EdgeList& graph,
                          const ClusterConfig& config,
                          const service::JobServiceOptions& svc,
                          int total_jobs, int clients, bool observability,
                          const std::string& events_path) {
  obs::SetEventsEnabled(observability);
  obs::ResetEvents();

  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(graph));
  system.cluster()->ResetCountersAndCaches();
  service::JobManager manager(system.cluster(), system.partition(), svc);

  std::atomic<bool> drain_done{false};
  std::thread drainer;
  if (observability) {
    std::filesystem::remove(events_path);
    drainer = std::thread([&] {
      while (!drain_done.load(std::memory_order_acquire)) {
        (void)obs::AppendEventsFile(events_path);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      (void)obs::AppendEventsFile(events_path);
    });
  }

  WallTimer timer;
  std::atomic<int> next{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int cl = 0; cl < clients; ++cl) {
    workers.emplace_back([&] {
      for (int i; (i = next.fetch_add(1)) < total_jobs;) {
        auto id = manager.Submit(SpecFor(i));
        if (!id.ok()) {
          failed.fetch_add(1);
          continue;
        }
        auto record = manager.Wait(*id, /*timeout_ms=*/600000);
        if (!record.ok() || record->state != service::JobState::kDone) {
          failed.fetch_add(1);
        }
        if (observability) {
          auto profile = manager.GetProfile(*id);
          if (!profile.ok() || profile->supersteps == 0) {
            failed.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  SharedRunResult result;
  result.seconds = timer.Seconds();
  result.failed = failed.load();
  result.jobs_per_sec =
      result.seconds > 0 ? total_jobs / result.seconds : 0;

  std::vector<double> queue_waits;
  std::vector<double> run_times;
  for (const service::JobRecord& record : manager.ListJobs()) {
    queue_waits.push_back(record.queue_wait_seconds);
    run_times.push_back(record.run_seconds);
  }
  result.qw_p50 = Percentile(queue_waits, 0.50);
  result.qw_p99 = Percentile(queue_waits, 0.99);
  result.run_p50 = Percentile(run_times, 0.50);
  result.run_p99 = Percentile(run_times, 0.99);
  manager.Shutdown();

  if (drainer.joinable()) {
    drain_done.store(true, std::memory_order_release);
    drainer.join();
    const obs::EventLogStats stats = obs::EventStats();
    result.events_recorded = stats.recorded;
    result.events_dropped = stats.dropped;
  }
  obs::SetEventsEnabled(false);
  obs::ResetEvents();

  const ClusterSnapshot snap = system.cluster()->Snapshot();
  result.disk_bytes = snap.disk_bytes;
  result.net_bytes = snap.net_bytes;
  return result;
}

int Main(int argc, char** argv) {
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 12));
  const int total_jobs = static_cast<int>(FlagInt(argc, argv, "jobs", 12));
  const int clients = static_cast<int>(FlagInt(argc, argv, "clients", 3));
  const int max_running =
      static_cast<int>(FlagInt(argc, argv, "max-running", 2));

  EdgeList graph = GenerateRmatX(scale, /*seed=*/77);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);

  ClusterConfig config;
  config.num_machines =
      static_cast<int>(FlagInt(argc, argv, "machines", 2));
  config.memory_budget_bytes = 32ull << 20;
  config.buffer_pool_frames = 64;
  config.root_dir = "/tmp/tgpp_bench_service/shared";
  std::filesystem::remove_all(config.root_dir);

  service::JobServiceOptions svc;
  svc.max_running = max_running;

  // --- Rows 1 and 2: the shared service, observability off then on.
  const SharedRunResult plain = RunShared(
      graph, config, svc, total_jobs, clients, /*observability=*/false,
      "");
  std::filesystem::remove_all(config.root_dir);
  const SharedRunResult observed = RunShared(
      graph, config, svc, total_jobs, clients, /*observability=*/true,
      "/tmp/tgpp_bench_service/events.jsonl");

  // --- Row 3: the same job list, serial, fresh system per job. Every
  // job pays graph load + partition + cold pool again.
  WallTimer reload_timer;
  int reload_failed = 0;
  for (int i = 0; i < total_jobs; ++i) {
    ClusterConfig fresh = config;
    fresh.root_dir = "/tmp/tgpp_bench_service/reload";
    std::filesystem::remove_all(fresh.root_dir);
    TurboGraphSystem one_shot(fresh);
    if (!one_shot.LoadGraph(graph).ok()) {
      ++reload_failed;
      continue;
    }
    EngineOptions det;
    det.deterministic = true;
    const service::JobSpec spec = SpecFor(i);
    Result<QueryStats> stats = Status::OK();
    if (spec.query == "pr") {
      auto app = MakePageRankApp(one_shot.partition(), spec.iterations);
      stats = one_shot.RunQuery(app, det);
    } else if (spec.query == "sssp") {
      auto app = MakeSsspApp(one_shot.partition(), spec.source);
      stats = one_shot.RunQuery(app, det);
    } else {
      auto app = MakeWccApp(one_shot.partition());
      stats = one_shot.RunQuery(app, det);
    }
    if (!stats.ok()) ++reload_failed;
  }
  const double reload_seconds = reload_timer.Seconds();
  const double reload_jobs_per_sec =
      reload_seconds > 0 ? total_jobs / reload_seconds : 0;

  std::printf("service throughput: scale=%d jobs=%d clients=%d "
              "max_running=%d\n",
              scale, total_jobs, clients, max_running);
  std::printf("%-16s %9s %8s %12s %12s %9s\n", "system", "jobs/s",
              "failed", "queue p50/p99", "run p50/p99", "total s");
  for (const auto& [name, row] :
       {std::pair{"service-shared", &plain},
        std::pair{"service-observed", &observed}}) {
    std::printf("%-16s %9.3f %8d %6.3f/%.3f %6.3f/%.3f %9.2f\n", name,
                row->jobs_per_sec, row->failed, row->qw_p50, row->qw_p99,
                row->run_p50, row->run_p99, row->seconds);
  }
  std::printf("%-16s %9.3f %8d %13s %13s %9.2f\n", "per-job-reload",
              reload_jobs_per_sec, reload_failed, "-", "-", reload_seconds);
  std::printf("observability tax: %+.1f%% wall (%llu events, %llu "
              "dropped, profiles fetched per job)\n",
              plain.seconds > 0
                  ? (observed.seconds / plain.seconds - 1.0) * 100.0
                  : 0.0,
              static_cast<unsigned long long>(observed.events_recorded),
              static_cast<unsigned long long>(observed.events_dropped));
  std::printf("shared pool: disk %.2f MB, net %.2f MB over %d jobs\n",
              plain.disk_bytes / 1e6, plain.net_bytes / 1e6, total_jobs);

  for (const auto& [name, row] :
       {std::pair{"service-shared", &plain},
        std::pair{"service-observed", &observed}}) {
    AppendJsonRow(service::JsonWriter()
                      .Str("bench", "service_throughput")
                      .Str("system", name)
                      .Int("scale", scale)
                      .Int("jobs", total_jobs)
                      .Int("clients", clients)
                      .Int("max_running", max_running)
                      .Int("failed", row->failed)
                      .Double("jobs_per_sec", row->jobs_per_sec)
                      .Double("queue_wait_p50_s", row->qw_p50)
                      .Double("queue_wait_p99_s", row->qw_p99)
                      .Double("run_p50_s", row->run_p50)
                      .Double("run_p99_s", row->run_p99)
                      .Double("total_s", row->seconds)
                      .UInt("disk_bytes", row->disk_bytes)
                      .UInt("net_bytes", row->net_bytes)
                      .UInt("events_recorded", row->events_recorded)
                      .UInt("events_dropped", row->events_dropped)
                      .Close());
  }
  AppendJsonRow(service::JsonWriter()
                    .Str("bench", "service_throughput")
                    .Str("system", "per-job-reload")
                    .Int("scale", scale)
                    .Int("jobs", total_jobs)
                    .Int("failed", reload_failed)
                    .Double("jobs_per_sec", reload_jobs_per_sec)
                    .Double("total_s", reload_seconds)
                    .Close());
  return (plain.failed == 0 && observed.failed == 0 && reload_failed == 0)
             ? 0
             : 1;
}

}  // namespace
}  // namespace tgpp::bench

int main(int argc, char** argv) { return tgpp::bench::Main(argc, argv); }
