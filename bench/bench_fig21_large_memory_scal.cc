// Figure 21 (appendix A.5.1): data scalability with 2x machine memory —
// the OOM cliffs of Figure 15 shift right by about one doubling, and
// TurboGraph++'s advantage persists.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  BenchConfig bc;
  bc.machines = static_cast<int>(FlagInt(argc, argv, "machines", 4));
  bc.budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget_mb", 8)) << 20;
  bc.root_dir = FlagStr(argc, argv, "root", "/tmp/tgpp_bench/fig21");
  const int pr_min = static_cast<int>(FlagInt(argc, argv, "pr_min", 16));
  const int pr_max = static_cast<int>(FlagInt(argc, argv, "pr_max", 21));
  const int tc_min = static_cast<int>(FlagInt(argc, argv, "tc_min", 14));
  const int tc_max = static_cast<int>(FlagInt(argc, argv, "tc_max", 18));

  {
    const std::vector<SystemEntry> systems = {
        {"TurboGraph++", nullptr},       {"Gemini", &MakeGeminiLike},
        {"Pregel+", &MakePregelLike},    {"GraphX", &MakeGraphxLike},
        {"HybridGraph", &MakeHybridGraphLike}, {"Chaos", &MakeChaosLike},
    };
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (int scale = pr_min; scale <= pr_max; ++scale) {
      const EdgeList graph = GenerateRmatX(scale, 800 + scale);
      const std::string name = "RMAT" + std::to_string(scale);
      columns.push_back(name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, name, Query::kPageRank)
                : MeasureBaseline(bc, graph, name, Query::kPageRank,
                                  entry.name, entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable(
        "Fig 21 (PR): exec time (s/iter) vs size, 2x memory", columns,
        names, by_column, [](const Measurement& m) { return m.Cell(); });
  }
  {
    const std::vector<SystemEntry> systems = {
        {"TurboGraph++", nullptr},
        {"Pregel+", &MakePregelLike},
        {"GraphX", &MakeGraphxLike},
        {"HybridGraph", &MakeHybridGraphLike},
        {"PTE", &MakePte},
    };
    std::vector<std::string> columns;
    std::vector<std::vector<Measurement>> by_column;
    for (int scale = tc_min; scale <= tc_max; ++scale) {
      EdgeList graph = GenerateRmatX(scale, 900 + scale);
      DeduplicateEdges(&graph);
      MakeUndirected(&graph);
      const std::string name = "RMAT" + std::to_string(scale);
      columns.push_back(name);
      std::vector<Measurement> col;
      for (const SystemEntry& entry : systems) {
        col.push_back(
            entry.factory == nullptr
                ? MeasureTurboGraph(bc, graph, name, Query::kTriangleCount)
                : MeasureBaseline(bc, graph, name, Query::kTriangleCount,
                                  entry.name, entry.factory));
      }
      by_column.push_back(std::move(col));
    }
    std::vector<std::string> names;
    for (const auto& s : systems) names.push_back(s.name);
    PrintMeasurementTable(
        "Fig 21 (TC): exec time (s) vs size, 2x memory", columns, names,
        by_column, [](const Measurement& m) { return m.Cell(); });
  }
  return 0;
}
