// Ablation: the design choices behind 3-LPO and BBP, toggled one at a
// time on the same PageRank workload.
//
//  - in-memory local gather OFF: every generated update crosses the
//    network uncombined — network bytes blow up (the mechanism behind
//    TurboGraph++'s lowest-net-I/O result in Fig 14).
//  - async read-ahead OFF (depth 1): adjacency pages are fetched
//    synchronously — disk latency serializes with compute instead of
//    hiding behind it.
//  - NUMA sub-chunks r=1: the LGB loses its CAS-free disjoint
//    destination ranges (here: fewer parallel sub-chunk tasks).

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace tgpp;
  using namespace tgpp::bench;

  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 19));
  const EdgeList graph = GenerateRmatX(scale, 1500 + scale);

  struct Variant {
    std::string label;
    EngineOptions options;
    int numa_nodes;
  };
  const std::vector<Variant> variants = {
      {"full 3-LPO (default)", {}, 2},
      {"no local gather", {.in_memory_local_gather = false}, 2},
      {"no read-ahead", {.in_memory_local_gather = true,
                         .read_ahead_pages = 1}, 2},
      {"r=1 (no NUMA sub-chunks)", {}, 1},
  };

  std::printf("3-LPO/BBP ablations: PR on RMAT%d, 4 machines\n\n", scale);
  std::printf("%-26s %10s %12s %12s %12s %12s\n", "variant", "exec(s)",
              "cpu(s)", "disk(MB)", "net(MB)", "updates-sent");

  for (const Variant& variant : variants) {
    BenchConfig bc;
    bc.machines = 4;
    bc.numa_nodes = variant.numa_nodes;
    bc.budget_bytes = 64ull << 20;
    bc.root_dir = "/tmp/tgpp_bench/ablation_" +
                  std::to_string(&variant - variants.data());

    TurboGraphSystem system(ToClusterConfig(bc, "run"));
    TGPP_CHECK_OK(system.LoadGraph(graph));
    system.cluster()->ResetCountersAndCaches();
    auto app = MakePageRankApp(system.partition(), 3);
    auto stats = system.RunQuery(app, variant.options);
    TGPP_CHECK(stats.ok()) << stats.status().ToString();
    const ClusterSnapshot snap = system.cluster()->Snapshot();
    uint64_t updates_sent = 0;
    for (int m = 0; m < system.cluster()->num_machines(); ++m) {
      updates_sent += system.cluster()->machine(m)->metrics()->updates_sent.value();
    }
    const double cpu = snap.max_machine_cpu_seconds;
    const double exec = std::max(
        {cpu, snap.max_machine_disk_seconds, snap.net_io_seconds});
    std::printf("%-26s %10.4f %12.4f %12.2f %12.2f %12llu\n",
                variant.label.c_str(), exec / 3, cpu, snap.disk_bytes / 1e6,
                snap.net_bytes / 1e6,
                static_cast<unsigned long long>(updates_sent));
  }
  return 0;
}
