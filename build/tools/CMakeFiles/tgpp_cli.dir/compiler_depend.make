# Empty compiler generated dependencies file for tgpp_cli.
# This may be replaced when dependencies are built.
