file(REMOVE_RECURSE
  "CMakeFiles/tgpp_cli.dir/tgpp_cli.cc.o"
  "CMakeFiles/tgpp_cli.dir/tgpp_cli.cc.o.d"
  "tgpp"
  "tgpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
