file(REMOVE_RECURSE
  "CMakeFiles/social_triangles.dir/social_triangles.cpp.o"
  "CMakeFiles/social_triangles.dir/social_triangles.cpp.o.d"
  "social_triangles"
  "social_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
