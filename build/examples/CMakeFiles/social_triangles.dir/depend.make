# Empty dependencies file for social_triangles.
# This may be replaced when dependencies are built.
