file(REMOVE_RECURSE
  "CMakeFiles/road_reachability.dir/road_reachability.cpp.o"
  "CMakeFiles/road_reachability.dir/road_reachability.cpp.o.d"
  "road_reachability"
  "road_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
