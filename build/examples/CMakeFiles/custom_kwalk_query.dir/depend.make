# Empty dependencies file for custom_kwalk_query.
# This may be replaced when dependencies are built.
