file(REMOVE_RECURSE
  "CMakeFiles/custom_kwalk_query.dir/custom_kwalk_query.cpp.o"
  "CMakeFiles/custom_kwalk_query.dir/custom_kwalk_query.cpp.o.d"
  "custom_kwalk_query"
  "custom_kwalk_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kwalk_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
