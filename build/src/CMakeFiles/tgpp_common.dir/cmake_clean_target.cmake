file(REMOVE_RECURSE
  "libtgpp_common.a"
)
