# Empty compiler generated dependencies file for tgpp_common.
# This may be replaced when dependencies are built.
