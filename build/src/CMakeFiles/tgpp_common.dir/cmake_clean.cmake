file(REMOVE_RECURSE
  "CMakeFiles/tgpp_common.dir/common/logging.cc.o"
  "CMakeFiles/tgpp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/tgpp_common.dir/common/status.cc.o"
  "CMakeFiles/tgpp_common.dir/common/status.cc.o.d"
  "libtgpp_common.a"
  "libtgpp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
