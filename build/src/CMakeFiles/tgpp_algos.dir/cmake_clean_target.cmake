file(REMOVE_RECURSE
  "libtgpp_algos.a"
)
