file(REMOVE_RECURSE
  "CMakeFiles/tgpp_algos.dir/algos/reference.cc.o"
  "CMakeFiles/tgpp_algos.dir/algos/reference.cc.o.d"
  "libtgpp_algos.a"
  "libtgpp_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
