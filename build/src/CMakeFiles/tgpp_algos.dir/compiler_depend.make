# Empty compiler generated dependencies file for tgpp_algos.
# This may be replaced when dependencies are built.
