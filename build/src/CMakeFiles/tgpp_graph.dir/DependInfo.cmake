
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/tgpp_graph.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/tgpp_graph.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/tgpp_graph.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/tgpp_graph.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/degree.cc" "src/CMakeFiles/tgpp_graph.dir/graph/degree.cc.o" "gcc" "src/CMakeFiles/tgpp_graph.dir/graph/degree.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/CMakeFiles/tgpp_graph.dir/graph/edge_list.cc.o" "gcc" "src/CMakeFiles/tgpp_graph.dir/graph/edge_list.cc.o.d"
  "/root/repo/src/graph/rmat.cc" "src/CMakeFiles/tgpp_graph.dir/graph/rmat.cc.o" "gcc" "src/CMakeFiles/tgpp_graph.dir/graph/rmat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
