file(REMOVE_RECURSE
  "CMakeFiles/tgpp_graph.dir/graph/csr.cc.o"
  "CMakeFiles/tgpp_graph.dir/graph/csr.cc.o.d"
  "CMakeFiles/tgpp_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/tgpp_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/tgpp_graph.dir/graph/degree.cc.o"
  "CMakeFiles/tgpp_graph.dir/graph/degree.cc.o.d"
  "CMakeFiles/tgpp_graph.dir/graph/edge_list.cc.o"
  "CMakeFiles/tgpp_graph.dir/graph/edge_list.cc.o.d"
  "CMakeFiles/tgpp_graph.dir/graph/rmat.cc.o"
  "CMakeFiles/tgpp_graph.dir/graph/rmat.cc.o.d"
  "libtgpp_graph.a"
  "libtgpp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
