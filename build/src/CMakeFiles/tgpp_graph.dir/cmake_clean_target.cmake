file(REMOVE_RECURSE
  "libtgpp_graph.a"
)
