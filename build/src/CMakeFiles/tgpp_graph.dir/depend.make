# Empty dependencies file for tgpp_graph.
# This may be replaced when dependencies are built.
