# Empty dependencies file for tgpp_net.
# This may be replaced when dependencies are built.
