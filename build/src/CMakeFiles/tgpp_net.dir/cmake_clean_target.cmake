file(REMOVE_RECURSE
  "libtgpp_net.a"
)
