file(REMOVE_RECURSE
  "CMakeFiles/tgpp_net.dir/net/fabric.cc.o"
  "CMakeFiles/tgpp_net.dir/net/fabric.cc.o.d"
  "libtgpp_net.a"
  "libtgpp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
