file(REMOVE_RECURSE
  "CMakeFiles/tgpp_partition.dir/partition/chunking.cc.o"
  "CMakeFiles/tgpp_partition.dir/partition/chunking.cc.o.d"
  "CMakeFiles/tgpp_partition.dir/partition/partitioner.cc.o"
  "CMakeFiles/tgpp_partition.dir/partition/partitioner.cc.o.d"
  "libtgpp_partition.a"
  "libtgpp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
