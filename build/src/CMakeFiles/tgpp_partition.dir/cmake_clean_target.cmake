file(REMOVE_RECURSE
  "libtgpp_partition.a"
)
