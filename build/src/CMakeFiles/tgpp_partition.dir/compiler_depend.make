# Empty compiler generated dependencies file for tgpp_partition.
# This may be replaced when dependencies are built.
