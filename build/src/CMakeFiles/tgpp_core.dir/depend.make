# Empty dependencies file for tgpp_core.
# This may be replaced when dependencies are built.
