file(REMOVE_RECURSE
  "libtgpp_core.a"
)
