file(REMOVE_RECURSE
  "CMakeFiles/tgpp_core.dir/core/adjacency_service.cc.o"
  "CMakeFiles/tgpp_core.dir/core/adjacency_service.cc.o.d"
  "CMakeFiles/tgpp_core.dir/core/memory_model.cc.o"
  "CMakeFiles/tgpp_core.dir/core/memory_model.cc.o.d"
  "libtgpp_core.a"
  "libtgpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
