
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitmap.cc" "src/CMakeFiles/tgpp_util.dir/util/bitmap.cc.o" "gcc" "src/CMakeFiles/tgpp_util.dir/util/bitmap.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/tgpp_util.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/tgpp_util.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/memory_budget.cc" "src/CMakeFiles/tgpp_util.dir/util/memory_budget.cc.o" "gcc" "src/CMakeFiles/tgpp_util.dir/util/memory_budget.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/tgpp_util.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/tgpp_util.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/tgpp_util.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/tgpp_util.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
