file(REMOVE_RECURSE
  "CMakeFiles/tgpp_util.dir/util/bitmap.cc.o"
  "CMakeFiles/tgpp_util.dir/util/bitmap.cc.o.d"
  "CMakeFiles/tgpp_util.dir/util/histogram.cc.o"
  "CMakeFiles/tgpp_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/tgpp_util.dir/util/memory_budget.cc.o"
  "CMakeFiles/tgpp_util.dir/util/memory_budget.cc.o.d"
  "CMakeFiles/tgpp_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/tgpp_util.dir/util/thread_pool.cc.o.d"
  "CMakeFiles/tgpp_util.dir/util/timer.cc.o"
  "CMakeFiles/tgpp_util.dir/util/timer.cc.o.d"
  "libtgpp_util.a"
  "libtgpp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
