file(REMOVE_RECURSE
  "libtgpp_util.a"
)
