# Empty compiler generated dependencies file for tgpp_util.
# This may be replaced when dependencies are built.
