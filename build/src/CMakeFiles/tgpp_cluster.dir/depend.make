# Empty dependencies file for tgpp_cluster.
# This may be replaced when dependencies are built.
