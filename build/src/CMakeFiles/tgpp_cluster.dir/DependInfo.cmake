
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/tgpp_cluster.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/tgpp_cluster.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/CMakeFiles/tgpp_cluster.dir/cluster/machine.cc.o" "gcc" "src/CMakeFiles/tgpp_cluster.dir/cluster/machine.cc.o.d"
  "/root/repo/src/cluster/metrics.cc" "src/CMakeFiles/tgpp_cluster.dir/cluster/metrics.cc.o" "gcc" "src/CMakeFiles/tgpp_cluster.dir/cluster/metrics.cc.o.d"
  "/root/repo/src/cluster/resource_sampler.cc" "src/CMakeFiles/tgpp_cluster.dir/cluster/resource_sampler.cc.o" "gcc" "src/CMakeFiles/tgpp_cluster.dir/cluster/resource_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgpp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
