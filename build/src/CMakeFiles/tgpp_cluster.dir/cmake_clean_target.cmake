file(REMOVE_RECURSE
  "libtgpp_cluster.a"
)
