file(REMOVE_RECURSE
  "CMakeFiles/tgpp_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/tgpp_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/tgpp_cluster.dir/cluster/machine.cc.o"
  "CMakeFiles/tgpp_cluster.dir/cluster/machine.cc.o.d"
  "CMakeFiles/tgpp_cluster.dir/cluster/metrics.cc.o"
  "CMakeFiles/tgpp_cluster.dir/cluster/metrics.cc.o.d"
  "CMakeFiles/tgpp_cluster.dir/cluster/resource_sampler.cc.o"
  "CMakeFiles/tgpp_cluster.dir/cluster/resource_sampler.cc.o.d"
  "libtgpp_cluster.a"
  "libtgpp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
