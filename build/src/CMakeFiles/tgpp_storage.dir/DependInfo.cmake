
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/async_io.cc" "src/CMakeFiles/tgpp_storage.dir/storage/async_io.cc.o" "gcc" "src/CMakeFiles/tgpp_storage.dir/storage/async_io.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tgpp_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tgpp_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_device.cc" "src/CMakeFiles/tgpp_storage.dir/storage/disk_device.cc.o" "gcc" "src/CMakeFiles/tgpp_storage.dir/storage/disk_device.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/tgpp_storage.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/tgpp_storage.dir/storage/page_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/tgpp_storage.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/tgpp_storage.dir/storage/slotted_page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
