# Empty compiler generated dependencies file for tgpp_storage.
# This may be replaced when dependencies are built.
