file(REMOVE_RECURSE
  "CMakeFiles/tgpp_storage.dir/storage/async_io.cc.o"
  "CMakeFiles/tgpp_storage.dir/storage/async_io.cc.o.d"
  "CMakeFiles/tgpp_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/tgpp_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/tgpp_storage.dir/storage/disk_device.cc.o"
  "CMakeFiles/tgpp_storage.dir/storage/disk_device.cc.o.d"
  "CMakeFiles/tgpp_storage.dir/storage/page_file.cc.o"
  "CMakeFiles/tgpp_storage.dir/storage/page_file.cc.o.d"
  "CMakeFiles/tgpp_storage.dir/storage/slotted_page.cc.o"
  "CMakeFiles/tgpp_storage.dir/storage/slotted_page.cc.o.d"
  "libtgpp_storage.a"
  "libtgpp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
