file(REMOVE_RECURSE
  "libtgpp_storage.a"
)
