file(REMOVE_RECURSE
  "libtgpp_baselines.a"
)
