# Empty compiler generated dependencies file for tgpp_baselines.
# This may be replaced when dependencies are built.
