file(REMOVE_RECURSE
  "CMakeFiles/tgpp_baselines.dir/baselines/baseline.cc.o"
  "CMakeFiles/tgpp_baselines.dir/baselines/baseline.cc.o.d"
  "CMakeFiles/tgpp_baselines.dir/baselines/chaos_like.cc.o"
  "CMakeFiles/tgpp_baselines.dir/baselines/chaos_like.cc.o.d"
  "CMakeFiles/tgpp_baselines.dir/baselines/gemini_like.cc.o"
  "CMakeFiles/tgpp_baselines.dir/baselines/gemini_like.cc.o.d"
  "CMakeFiles/tgpp_baselines.dir/baselines/pte.cc.o"
  "CMakeFiles/tgpp_baselines.dir/baselines/pte.cc.o.d"
  "CMakeFiles/tgpp_baselines.dir/baselines/vertex_centric.cc.o"
  "CMakeFiles/tgpp_baselines.dir/baselines/vertex_centric.cc.o.d"
  "libtgpp_baselines.a"
  "libtgpp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
