
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memory_model_test.cc" "tests/CMakeFiles/memory_model_test.dir/memory_model_test.cc.o" "gcc" "tests/CMakeFiles/memory_model_test.dir/memory_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgpp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tgpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
