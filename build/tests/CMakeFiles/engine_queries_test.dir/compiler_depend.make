# Empty compiler generated dependencies file for engine_queries_test.
# This may be replaced when dependencies are built.
