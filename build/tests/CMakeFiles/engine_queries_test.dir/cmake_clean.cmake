file(REMOVE_RECURSE
  "CMakeFiles/engine_queries_test.dir/engine_queries_test.cc.o"
  "CMakeFiles/engine_queries_test.dir/engine_queries_test.cc.o.d"
  "engine_queries_test"
  "engine_queries_test.pdb"
  "engine_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
