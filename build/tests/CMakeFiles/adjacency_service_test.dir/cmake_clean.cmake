file(REMOVE_RECURSE
  "CMakeFiles/adjacency_service_test.dir/adjacency_service_test.cc.o"
  "CMakeFiles/adjacency_service_test.dir/adjacency_service_test.cc.o.d"
  "adjacency_service_test"
  "adjacency_service_test.pdb"
  "adjacency_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
