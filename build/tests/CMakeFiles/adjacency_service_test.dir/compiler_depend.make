# Empty compiler generated dependencies file for adjacency_service_test.
# This may be replaced when dependencies are built.
