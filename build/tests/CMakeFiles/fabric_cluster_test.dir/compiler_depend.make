# Empty compiler generated dependencies file for fabric_cluster_test.
# This may be replaced when dependencies are built.
