file(REMOVE_RECURSE
  "CMakeFiles/fabric_cluster_test.dir/fabric_cluster_test.cc.o"
  "CMakeFiles/fabric_cluster_test.dir/fabric_cluster_test.cc.o.d"
  "fabric_cluster_test"
  "fabric_cluster_test.pdb"
  "fabric_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
