file(REMOVE_RECURSE
  "CMakeFiles/status_logging_test.dir/status_logging_test.cc.o"
  "CMakeFiles/status_logging_test.dir/status_logging_test.cc.o.d"
  "status_logging_test"
  "status_logging_test.pdb"
  "status_logging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
