# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_logging_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/memory_model_test[1]_include.cmake")
include("/root/repo/build/tests/adjacency_service_test[1]_include.cmake")
include("/root/repo/build/tests/engine_queries_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
