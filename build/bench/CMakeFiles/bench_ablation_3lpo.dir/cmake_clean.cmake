file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_3lpo.dir/bench_ablation_3lpo.cc.o"
  "CMakeFiles/bench_ablation_3lpo.dir/bench_ablation_3lpo.cc.o.d"
  "bench_ablation_3lpo"
  "bench_ablation_3lpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_3lpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
