# Empty dependencies file for bench_ablation_3lpo.
# This may be replaced when dependencies are built.
