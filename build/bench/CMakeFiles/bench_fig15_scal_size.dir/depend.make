# Empty dependencies file for bench_fig15_scal_size.
# This may be replaced when dependencies are built.
