file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qmin.dir/bench_ablation_qmin.cc.o"
  "CMakeFiles/bench_ablation_qmin.dir/bench_ablation_qmin.cc.o.d"
  "bench_ablation_qmin"
  "bench_ablation_qmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
