# Empty compiler generated dependencies file for bench_ablation_qmin.
# This may be replaced when dependencies are built.
