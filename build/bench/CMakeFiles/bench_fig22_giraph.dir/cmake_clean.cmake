file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_giraph.dir/bench_fig22_giraph.cc.o"
  "CMakeFiles/bench_fig22_giraph.dir/bench_fig22_giraph.cc.o.d"
  "bench_fig22_giraph"
  "bench_fig22_giraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_giraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
