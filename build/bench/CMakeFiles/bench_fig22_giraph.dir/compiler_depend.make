# Empty compiler generated dependencies file for bench_fig22_giraph.
# This may be replaced when dependencies are built.
