file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_scal_machines_large.dir/bench_fig16_scal_machines_large.cc.o"
  "CMakeFiles/bench_fig16_scal_machines_large.dir/bench_fig16_scal_machines_large.cc.o.d"
  "bench_fig16_scal_machines_large"
  "bench_fig16_scal_machines_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_scal_machines_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
