# Empty dependencies file for bench_fig16_scal_machines_large.
# This may be replaced when dependencies are built.
