# Empty dependencies file for bench_fig17_scal_machines_mid.
# This may be replaced when dependencies are built.
