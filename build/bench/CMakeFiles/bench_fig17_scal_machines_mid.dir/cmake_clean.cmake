file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_scal_machines_mid.dir/bench_fig17_scal_machines_mid.cc.o"
  "CMakeFiles/bench_fig17_scal_machines_mid.dir/bench_fig17_scal_machines_mid.cc.o.d"
  "bench_fig17_scal_machines_mid"
  "bench_fig17_scal_machines_mid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_scal_machines_mid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
