file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_large_memory_scal.dir/bench_fig21_large_memory_scal.cc.o"
  "CMakeFiles/bench_fig21_large_memory_scal.dir/bench_fig21_large_memory_scal.cc.o.d"
  "bench_fig21_large_memory_scal"
  "bench_fig21_large_memory_scal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_large_memory_scal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
