# Empty dependencies file for bench_fig21_large_memory_scal.
# This may be replaced when dependencies are built.
