file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_decomposed_ssd.dir/bench_fig9_decomposed_ssd.cc.o"
  "CMakeFiles/bench_fig9_decomposed_ssd.dir/bench_fig9_decomposed_ssd.cc.o.d"
  "bench_fig9_decomposed_ssd"
  "bench_fig9_decomposed_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_decomposed_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
