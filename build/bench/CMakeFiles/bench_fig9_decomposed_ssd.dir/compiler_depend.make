# Empty compiler generated dependencies file for bench_fig9_decomposed_ssd.
# This may be replaced when dependencies are built.
