file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_decomposed_hdd.dir/bench_fig10_decomposed_hdd.cc.o"
  "CMakeFiles/bench_fig10_decomposed_hdd.dir/bench_fig10_decomposed_hdd.cc.o.d"
  "bench_fig10_decomposed_hdd"
  "bench_fig10_decomposed_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_decomposed_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
