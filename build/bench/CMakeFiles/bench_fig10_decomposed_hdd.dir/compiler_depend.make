# Empty compiler generated dependencies file for bench_fig10_decomposed_hdd.
# This may be replaced when dependencies are built.
