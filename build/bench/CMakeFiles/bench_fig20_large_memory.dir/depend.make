# Empty dependencies file for bench_fig20_large_memory.
# This may be replaced when dependencies are built.
