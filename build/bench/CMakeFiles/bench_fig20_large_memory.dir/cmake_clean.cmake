file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_large_memory.dir/bench_fig20_large_memory.cc.o"
  "CMakeFiles/bench_fig20_large_memory.dir/bench_fig20_large_memory.cc.o.d"
  "bench_fig20_large_memory"
  "bench_fig20_large_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_large_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
