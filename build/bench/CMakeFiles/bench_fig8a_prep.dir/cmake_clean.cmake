file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_prep.dir/bench_fig8a_prep.cc.o"
  "CMakeFiles/bench_fig8a_prep.dir/bench_fig8a_prep.cc.o.d"
  "bench_fig8a_prep"
  "bench_fig8a_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
