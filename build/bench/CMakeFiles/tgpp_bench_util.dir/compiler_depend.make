# Empty compiler generated dependencies file for tgpp_bench_util.
# This may be replaced when dependencies are built.
