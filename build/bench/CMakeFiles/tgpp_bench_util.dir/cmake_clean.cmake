file(REMOVE_RECURSE
  "CMakeFiles/tgpp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tgpp_bench_util.dir/bench_util.cc.o.d"
  "libtgpp_bench_util.a"
  "libtgpp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgpp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
