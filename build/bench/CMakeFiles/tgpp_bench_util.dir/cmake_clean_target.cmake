file(REMOVE_RECURSE
  "libtgpp_bench_util.a"
)
