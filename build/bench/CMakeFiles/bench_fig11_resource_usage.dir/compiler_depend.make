# Empty compiler generated dependencies file for bench_fig11_resource_usage.
# This may be replaced when dependencies are built.
