file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_resource_usage.dir/bench_fig11_resource_usage.cc.o"
  "CMakeFiles/bench_fig11_resource_usage.dir/bench_fig11_resource_usage.cc.o.d"
  "bench_fig11_resource_usage"
  "bench_fig11_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
