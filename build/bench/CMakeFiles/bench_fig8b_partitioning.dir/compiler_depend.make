# Empty compiler generated dependencies file for bench_fig8b_partitioning.
# This may be replaced when dependencies are built.
