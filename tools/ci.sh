#!/usr/bin/env bash
# Minimal CI: configure, build, run the tier-1 test suite, and check
# that the docs reference only paths that exist.
#
# Usage: tools/ci.sh [build-dir]   (default: build)
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-build}"

cmake -B "$root/$build" -S "$root"
cmake --build "$root/$build" -j"$(nproc)"
ctest --test-dir "$root/$build" --output-on-failure
"$root/tools/check_docs.sh" "$root"
echo "ci: OK"
