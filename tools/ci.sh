#!/usr/bin/env bash
# Minimal CI: configure, build, run the tier-1 test suite, check that
# the docs reference only paths that exist, and re-run the concurrency-
# and fault-heavy suites under ASan+UBSan and then under ThreadSanitizer.
#
# Usage: tools/ci.sh [build-dir]   (default: build)
# Set TGPP_CI_SKIP_SANITIZE=1 to skip both sanitizer stages.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-build}"

cmake -B "$root/$build" -S "$root"
cmake --build "$root/$build" -j"$(nproc)"
ctest --test-dir "$root/$build" --output-on-failure
"$root/tools/check_docs.sh" "$root"

if [ "${TGPP_CI_SKIP_SANITIZE:-0}" != "1" ]; then
  # The fault-injection, chaos, fabric, storage, and metrics tests
  # exercise the code most likely to hide lifetime/race bugs (retry
  # loops, receive deadlines, rollback/replay, lock-free instruments and
  # registration races): build just those under ASan+UBSan.
  asan="$build-asan"
  cmake -B "$root/$asan" -S "$root" \
        -DCMAKE_BUILD_TYPE=Debug -DTGPP_SANITIZE=ON
  cmake --build "$root/$asan" -j"$(nproc)" \
        --target fault_injector_test chaos_recovery_test \
                 fabric_cluster_test storage_test status_logging_test \
                 metrics_registry_test buffer_pool_concurrency_test \
                 job_service_test frontier_test kernels_direction_test \
                 machine_failure_test
  ctest --test-dir "$root/$asan" --output-on-failure \
        -R 'FaultInjector|Chaos|Fabric|DiskDevice|DiskFault|Result|Status|AsyncIo|BufferPool|PageHandle|SlottedPage|PageFile|Cluster|Logging|Instruments|Registry|Export|EndToEnd|MetricsChaos|JobService|Frontier|ChooseWindowModeTest|ChooseDirectionTest|BfsDirection|DeltaSssp|SampledWcc|KCore|LabelProp|Mis|MachineFailure|FabricHeartbeat'

  # Job-service smoke under ASan: serve a small graph on a temp unix
  # socket, submit a PageRank job, poll it to completion, list jobs, and
  # shut the daemon down cleanly (docs/SERVICE.md).
  cmake --build "$root/$asan" -j"$(nproc)" --target tgpp_cli
  smoke_dir="$(mktemp -d /tmp/tgpp_ci_service.XXXXXX)"
  trap 'rm -rf "$smoke_dir"' EXIT
  "$root/$asan/tools/tgpp" generate --scale=10 --out="$smoke_dir/g.bin" \
      --undirected
  "$root/$asan/tools/tgpp" serve --graph="$smoke_dir/g.bin" \
      --socket="$smoke_dir/tgpp.sock" --workdir="$smoke_dir/cluster" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$smoke_dir/tgpp.sock" ] && break
    kill -0 "$serve_pid" || { echo "ci: serve died" >&2; exit 1; }
    sleep 0.2
  done
  [ -S "$smoke_dir/tgpp.sock" ] || { echo "ci: serve never bound" >&2; exit 1; }
  "$root/$asan/tools/tgpp" submit --socket="$smoke_dir/tgpp.sock" \
      --query=pr --iterations=3 --wait --timeout-ms=120000
  "$root/$asan/tools/tgpp" jobs --socket="$smoke_dir/tgpp.sock"
  "$root/$asan/tools/tgpp" shutdown --socket="$smoke_dir/tgpp.sock"
  wait "$serve_pid"

  # ThreadSanitizer pass over the lock/latch-heavy suites: the buffer
  # pool's overlapped miss path (frame claim/publish races, pin CAS,
  # shard latches), the fabric mailboxes, and the lock-free metrics
  # instruments.
  tsan="$build-tsan"
  cmake -B "$root/$tsan" -S "$root" \
        -DCMAKE_BUILD_TYPE=Debug -DTGPP_SANITIZE=thread
  # The kill-recovery chaos matrix joins the TSan pass too: the heartbeat
  # monitor thread, FailableBarrier, and recovery replay are exactly the
  # cross-thread paths TSan is good at breaking.
  cmake --build "$root/$tsan" -j"$(nproc)" \
        --target storage_test buffer_pool_concurrency_test \
                 fabric_cluster_test metrics_registry_test \
                 frontier_test kernels_direction_test \
                 machine_failure_test
  ctest --test-dir "$root/$tsan" --output-on-failure \
        -R 'BufferPool|AsyncIo|PageHandle|DiskDevice|DiskFault|SlottedPage|PageFile|Fabric|Cluster|Instruments|Registry|Export|EndToEnd|MetricsChaos|Frontier|ChooseWindowModeTest|ChooseDirectionTest|BfsDirection|DeltaSssp|SampledWcc|KCore|LabelProp|Mis|MachineFailure|FabricHeartbeat'
fi

# Direction-optimization bench smoke: verifies push/pull/auto/sparse
# variants produce bit-identical results and that auto actually switches
# to pull on the RMAT graph (see bench/bench_kernels_direction.cc).
cmake --build "$root/$build" -j"$(nproc)" --target bench_kernels_direction
"$root/$build/bench/bench_kernels_direction" --smoke

# Kill-recovery bench smoke: kills machine 1 mid-PageRank, recovers from
# the last checkpoint, and verifies the recovered result is bit-identical
# to a fault-free baseline (see bench/bench_recovery.cc).
cmake --build "$root/$build" -j"$(nproc)" --target bench_recovery
"$root/$build/bench/bench_recovery" --smoke
echo "ci: OK"
