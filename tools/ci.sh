#!/usr/bin/env bash
# Minimal CI: configure, build, run the tier-1 test suite, check that
# the docs reference only paths that exist, and re-run the concurrency-
# and fault-heavy suites under ASan+UBSan and then under ThreadSanitizer.
#
# Usage: tools/ci.sh [build-dir]   (default: build)
# Set TGPP_CI_SKIP_SANITIZE=1 to skip both sanitizer stages.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-build}"

cmake -B "$root/$build" -S "$root"
cmake --build "$root/$build" -j"$(nproc)"
ctest --test-dir "$root/$build" --output-on-failure
"$root/tools/check_docs.sh" "$root"

if [ "${TGPP_CI_SKIP_SANITIZE:-0}" != "1" ]; then
  # The fault-injection, chaos, fabric, storage, and metrics tests
  # exercise the code most likely to hide lifetime/race bugs (retry
  # loops, receive deadlines, rollback/replay, lock-free instruments and
  # registration races): build just those under ASan+UBSan.
  asan="$build-asan"
  cmake -B "$root/$asan" -S "$root" \
        -DCMAKE_BUILD_TYPE=Debug -DTGPP_SANITIZE=ON
  cmake --build "$root/$asan" -j"$(nproc)" \
        --target fault_injector_test chaos_recovery_test \
                 fabric_cluster_test storage_test status_logging_test \
                 metrics_registry_test buffer_pool_concurrency_test \
                 job_service_test frontier_test kernels_direction_test \
                 machine_failure_test events_test dynamic_graph_test \
                 incremental_test
  ctest --test-dir "$root/$asan" --output-on-failure \
        -R 'FaultInjector|Chaos|Fabric|DiskDevice|DiskFault|Result|Status|AsyncIo|BufferPool|PageHandle|SlottedPage|PageFile|Cluster|Logging|Instruments|Registry|Export|EndToEnd|MetricsChaos|JobService|Frontier|ChooseWindowModeTest|ChooseDirectionTest|BfsDirection|DeltaSssp|SampledWcc|KCore|LabelProp|Mis|MachineFailure|FabricHeartbeat|EventsTest|DynamicGraph|Incremental'

  # Job-service smoke under ASan: serve a small graph on loopback TCP
  # with the event log and metrics export on, submit two PageRank jobs,
  # scrape the HTTP introspection endpoints, pull a job profile, list
  # jobs as JSONL, and shut the daemon down cleanly (docs/SERVICE.md,
  # docs/OBSERVABILITY.md).
  cmake --build "$root/$asan" -j"$(nproc)" --target tgpp_cli
  smoke_dir="$(mktemp -d /tmp/tgpp_ci_service.XXXXXX)"
  trap 'rm -rf "$smoke_dir"' EXIT
  "$root/$asan/tools/tgpp" generate --scale=10 --out="$smoke_dir/g.bin" \
      --undirected
  "$root/$asan/tools/tgpp" serve --graph="$smoke_dir/g.bin" \
      --port=0 --workdir="$smoke_dir/cluster" \
      --events-out="$smoke_dir/events.jsonl" \
      --metrics-out="$smoke_dir/metrics.prom" \
      --heartbeat-interval-ms=50 --heartbeat-timeout-ms=2000 \
      > "$smoke_dir/serve.log" &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
                "$smoke_dir/serve.log" 2>/dev/null | head -1)"
    [ -n "$port" ] && break
    kill -0 "$serve_pid" || { echo "ci: serve died" >&2; exit 1; }
    sleep 0.2
  done
  [ -n "$port" ] || { echo "ci: serve never bound" >&2; exit 1; }
  "$root/$asan/tools/tgpp" submit --port="$port" \
      --query=pr --iterations=3 --wait --timeout-ms=120000
  "$root/$asan/tools/tgpp" submit --port="$port" \
      --query=wcc --wait --timeout-ms=120000

  # HTTP introspection: /metrics must be Prometheus text, /healthz must
  # report live heartbeats, /jobs must embed per-job profiles.
  http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    # The server may RST after its final write (HTTP/1.0 close); tolerate
    # the reset here — the content greps below still require the full
    # response to have arrived.
    cat <&3 || true
    exec 3<&- 3>&-
  }
  http_get /metrics > "$smoke_dir/metrics.http"
  grep -q "200 OK" "$smoke_dir/metrics.http"
  grep -q "# TYPE tgpp_service_jobs_done counter" "$smoke_dir/metrics.http"
  http_get /healthz > "$smoke_dir/healthz.http"
  grep -q "200 OK" "$smoke_dir/healthz.http"
  grep -q '"ok":true' "$smoke_dir/healthz.http"
  http_get /jobs > "$smoke_dir/jobs.http"
  grep -q '"profile":{' "$smoke_dir/jobs.http"

  # Per-job profile + machine-readable listings.
  "$root/$asan/tools/tgpp" profile --port="$port" --id=1
  "$root/$asan/tools/tgpp" profile --port="$port" --id=2 --json \
      | grep -q '"supersteps":'
  "$root/$asan/tools/tgpp" jobs --port="$port" --json \
      > "$smoke_dir/jobs.jsonl"
  [ "$(wc -l < "$smoke_dir/jobs.jsonl")" -eq 2 ]
  grep -q '"scatter_cpu_s":' "$smoke_dir/jobs.jsonl"
  "$root/$asan/tools/tgpp" shutdown --port="$port"
  wait "$serve_pid"

  # The streamed event log must be well-formed JSONL telling the whole
  # story: submits, admits, supersteps, and terminal states.
  [ -s "$smoke_dir/events.jsonl" ] || { echo "ci: no events" >&2; exit 1; }
  grep -q '"type":"job.submit"' "$smoke_dir/events.jsonl"
  grep -q '"type":"job.admit"' "$smoke_dir/events.jsonl"
  grep -q '"type":"superstep"' "$smoke_dir/events.jsonl"
  grep -q '"type":"job.done"' "$smoke_dir/events.jsonl"
  if grep -vq '^{"v":1,' "$smoke_dir/events.jsonl"; then
    echo "ci: malformed event line" >&2; exit 1
  fi

  # ThreadSanitizer pass over the lock/latch-heavy suites: the buffer
  # pool's overlapped miss path (frame claim/publish races, pin CAS,
  # shard latches), the fabric mailboxes, and the lock-free metrics
  # instruments.
  tsan="$build-tsan"
  cmake -B "$root/$tsan" -S "$root" \
        -DCMAKE_BUILD_TYPE=Debug -DTGPP_SANITIZE=thread
  # The kill-recovery chaos matrix joins the TSan pass too: the heartbeat
  # monitor thread, FailableBarrier, and recovery replay are exactly the
  # cross-thread paths TSan is good at breaking.
  # dynamic_graph_test joins TSan for the update-vs-query isolation test
  # (ConcurrentQueriesSeeExactlyOneEpoch): concurrent readers over a
  # mutating shared buffer pool is exactly the race surface of the
  # dynamic-graph subsystem (docs/DYNAMIC.md).
  cmake --build "$root/$tsan" -j"$(nproc)" \
        --target storage_test buffer_pool_concurrency_test \
                 fabric_cluster_test metrics_registry_test \
                 frontier_test kernels_direction_test \
                 machine_failure_test dynamic_graph_test
  ctest --test-dir "$root/$tsan" --output-on-failure \
        -R 'BufferPool|AsyncIo|PageHandle|DiskDevice|DiskFault|SlottedPage|PageFile|Fabric|Cluster|Instruments|Registry|Export|EndToEnd|MetricsChaos|Frontier|ChooseWindowModeTest|ChooseDirectionTest|BfsDirection|DeltaSssp|SampledWcc|KCore|LabelProp|Mis|MachineFailure|FabricHeartbeat|ConcurrentQueriesSeeExactlyOneEpoch'
fi

# Direction-optimization bench smoke: verifies push/pull/auto/sparse
# variants produce bit-identical results and that auto actually switches
# to pull on the RMAT graph (see bench/bench_kernels_direction.cc).
cmake --build "$root/$build" -j"$(nproc)" --target bench_kernels_direction
"$root/$build/bench/bench_kernels_direction" --smoke

# Kill-recovery bench smoke: kills machine 1 mid-PageRank, recovers from
# the last checkpoint, and verifies the recovered result is bit-identical
# to a fault-free baseline (see bench/bench_recovery.cc).
cmake --build "$root/$build" -j"$(nproc)" --target bench_recovery
"$root/$build/bench/bench_recovery" --smoke

# I/O-backend bench smoke: cold-miss throughput rows for both backends
# plus the backend-parity check — a deterministic PageRank must produce
# identical CRCs under io_uring and the thread-pool fallback (see
# bench/bench_io_backend.cc; on kernels without io_uring the uring rows
# are skipped and the parity check degenerates to the threads run).
cmake --build "$root/$build" -j"$(nproc)" --target bench_io_backend
"$root/$build/bench/bench_io_backend" --smoke

# Interactive-workload bench smoke: closed-loop 90/10 read/write mix over
# the job service with update jobs, asserting (1) the final mutated graph
# digests identically to an offline rebuild, (2) warm incremental
# PageRank is bit-identical to the full recompute, and (3) WAL replay
# after a mid-batch kill converges (see bench/bench_snb_interactive.cc).
cmake --build "$root/$build" -j"$(nproc)" --target bench_snb_interactive
"$root/$build/bench/bench_snb_interactive" --smoke
echo "ci: OK"
