// tgpp: command-line driver for the TurboGraph++ library.
//
//   tgpp generate  --scale=18 --seed=42 --out=graph.bin [--undirected]
//   tgpp stats     --graph=graph.bin
//   tgpp partition --graph=graph.bin [--machines=4] [--q=1]
//                  [--scheme=bbp|random|hash]
//   tgpp run       --graph=graph.bin
//                  --query=pr|bfs|sssp|sssp-delta|wcc|wcc-sampled|tc|lcc|
//                          clique4|kcore|lp|mis
//                  [--machines=4] [--budget-mb=32] [--iterations=10]
//                  [--source=0] [--workdir=/tmp/tgpp_cli] [--q=1]
//                  [--direction=push|pull|auto] [--sparse-windows]
//                  [--delta=4] [--max-weight=8] [--sample-rounds=2]
//                  [--rounds=10]
//                  [--trace-out=trace.json]
//                  [--metrics-out=metrics.prom] [--progress]
//                  [--events-out=events.jsonl]
//                  [--faults=SPEC] [--fault-seed=42]
//                  [--checkpoint-every=N] [--deterministic]
//                  [--heartbeat-interval-ms=0] [--heartbeat-timeout-ms=0]
//                  [--io-backend=auto|uring|threads] [--io-queue-depth=64]
//   tgpp serve     --graph=graph.bin (--socket=PATH | --port=N)
//                  [--machines=4] [--budget-mb=32] [--q=0 (auto)]
//                  [--max-running=2] [--recv-timeout-ms=60000]
//                  [--ledger-bytes=0] [--reservation-bytes=0]
//                  [--max-retries=0] [--retry-backoff-ms=50]
//                  [--checkpoint-every=0]
//                  [--heartbeat-interval-ms=0] [--heartbeat-timeout-ms=0]
//                  [--metrics-out=metrics.prom] [--trace-out=trace.json]
//                  [--events-out=events.jsonl]
//                  [--faults=SPEC] [--fault-seed=42]
//                  [--workdir=/tmp/tgpp_serve]
//                  [--io-backend=auto|uring|threads] [--io-queue-depth=64]
//   tgpp submit    (--socket=PATH | --port=N) [--query=pr]
//                  [--iterations=10] [--source=0] [--priority=0]
//                  [--deadline-ms=0] [--nondeterministic]
//                  [--wait] [--timeout-ms=-1]
//   tgpp update    (--socket=PATH | --port=N) [--add=SRC:DST]...
//                  [--del=SRC:DST]... [--file=PATH]
//                  [--async] [--timeout-ms=-1]
//   tgpp jobs      (--socket=PATH | --port=N) [--json]
//   tgpp profile   (--socket=PATH | --port=N) --id=N [--json]
//   tgpp cancel    (--socket=PATH | --port=N) --id=N
//   tgpp shutdown  (--socket=PATH | --port=N)
//
// --trace-out records an execution trace of the run (superstep phases,
// async I/O, fabric traffic, barriers — one track per simulated machine)
// and writes Chrome-trace JSON loadable in chrome://tracing or Perfetto.
// See docs/TRACING.md.
//
// --metrics-out writes the full metrics registry in Prometheus text
// exposition format, refreshed at every superstep barrier and once more
// when the run finishes (atomic tmp+rename, so a scraper tailing the file
// never sees a partial write). --progress prints one line per superstep
// (active frontier, updates, disk/net bytes, buffer-pool hit rate,
// elapsed time). Metric name catalog: docs/METRICS.md.
//
// --faults arms deterministic fault injection for the run, e.g.
//   --faults="disk.read:io_error@p=0.001;machine2:crash@superstep=3"
// --checkpoint-every=N writes a superstep-boundary checkpoint every N
// supersteps so injected crashes roll back and resume instead of failing
// the query; --deterministic makes gather order (and thus floating-point
// results) independent of thread/message timing. --heartbeat-timeout-ms>0
// turns on the fabric failure detector (a fail-stop machine surfaces as
// MachineLost within the timeout instead of wedging); an armed
// machine.kill fault auto-enables it. Grammar and recovery semantics:
// docs/FAULTS.md.
//
// `tgpp serve --max-retries=N` retries a job that fails with a retryable
// status (timeout, I/O error, machine lost) up to N more times with
// exponential backoff (base --retry-backoff-ms plus deterministic
// jitter), resuming from the job's latest checkpoint when
// --checkpoint-every > 0. `tgpp jobs` shows each job's attempt count;
// a job whose retries are exhausted maps to exit code 6.
//
// --direction selects the scatter direction per superstep (push is the
// classic NWSM scatter; pull scans edges from the destination side and
// is profitable on large frontiers; auto switches per superstep by the
// Ligra rule) and --sparse-windows materializes only active sources'
// adjacency when a window's frontier is tiny. Both need a symmetric
// graph and a k=1 query; the algorithm catalog in docs/ALGORITHMS.md
// lists which query supports what.
//
// `tgpp serve` runs the multi-query job service over one shared cluster
// (admission control, scheduling, cancellation) speaking line-delimited
// JSON over the socket; `tgpp submit`/`tgpp jobs`/`tgpp cancel`/
// `tgpp shutdown` are its clients. Protocol and lifecycle: docs/SERVICE.md.
//
// `tgpp update` submits an edge-mutation batch to a running server
// (--add/--del are repeatable; --file reads one "[+|-]src:dst" per line,
// '#' comments and blank lines skipped). Update jobs run exclusively —
// queued behind running queries and vice versa — so every query reads the
// graph at exactly one epoch. By default the command waits for the batch
// to commit and prints the new epoch; --async just enqueues. Mutation
// model, WAL durability, and epoch semantics: docs/DYNAMIC.md.
//
// --events-out streams the structured event log (one JSON object per
// line, job-correlated: submit/admit/start, supersteps, checkpoints,
// retries, recoveries, lost machines, terminal states). `tgpp profile`
// prints a finished (or running) job's execution profile — per-superstep
// scatter/gather/apply decomposition, I/O, recovery tax — and the serve
// port also answers HTTP GET /metrics, /jobs and /healthz for scrapers.
// Operator guide: docs/OBSERVABILITY.md.
//
// Exit codes (all subcommands): 0 success, 2 usage error, 3 timeout
// (deadline exceeded), 4 cancelled, 6 machine lost / retries exhausted,
// 5 internal/other failure. `tgpp submit --wait` maps the job's terminal
// state through the same table.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "algos/bfs.h"
#include "algos/clique4.h"
#include "algos/kcore.h"
#include "algos/label_propagation.h"
#include "algos/lcc.h"
#include "algos/mis.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "dyn/dynamic_graph.h"
#include "graph/degree.h"
#include "graph/rmat.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/job_manager.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/crc32.h"
#include "util/trace.h"

namespace tgpp::cli {
namespace {

std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return def;
}

// All occurrences of a repeatable flag, in command-line order
// (`tgpp update --add=1:2 --add=3:4`).
std::vector<std::string> FlagStrAll(int argc, char** argv,
                                    const std::string& key) {
  const std::string prefix = "--" + key + "=";
  std::vector<std::string> values;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      values.push_back(std::string(argv[i]).substr(prefix.size()));
    }
  }
  return values;
}

int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t def) {
  const std::string v = FlagStr(argc, argv, key, "");
  return v.empty() ? def : std::stoll(v);
}

bool FlagBool(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 2; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeForStatus(status);
}

int Usage() {
  std::fprintf(stderr,
               "usage: tgpp <generate|stats|partition|run|serve|submit|"
               "update|jobs|profile|cancel|shutdown> [--flags]\n"
               "see the header of tools/tgpp_cli.cc for details\n"
               "exit codes: 0 ok, 2 usage, 3 timeout, 4 cancelled, "
               "6 machine lost / retries exhausted, 5 internal\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  const std::string out = FlagStr(argc, argv, "out", "graph.bin");
  RmatParams params;
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 18));
  params.vertex_scale = scale - 4;
  params.num_edges = 1ull << scale;
  params.seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 42));
  EdgeList graph = GenerateRmat(params);
  if (FlagBool(argc, argv, "undirected")) {
    DeduplicateEdges(&graph);
    MakeUndirected(&graph);
  }
  Status s = SaveEdgeList(graph, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %llu vertices, %llu edges\n", out.c_str(),
              static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdStats(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());
  const DegreeStats stats = ComputeDegreeStats(*graph);
  std::printf("vertices:        %llu\n",
              static_cast<unsigned long long>(graph->num_vertices));
  std::printf("edges:           %llu\n",
              static_cast<unsigned long long>(graph->num_edges()));
  std::printf("bytes:           %llu\n",
              static_cast<unsigned long long>(graph->size_bytes()));
  std::printf("mean out-degree: %.2f\n", stats.mean_degree);
  std::printf("max out-degree:  %llu\n",
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("top-1%% share:    %.1f%%\n",
              stats.top1pct_edge_share * 100);
  return 0;
}

ClusterConfig MakeClusterConfig(int argc, char** argv) {
  ClusterConfig config;
  config.num_machines =
      static_cast<int>(FlagInt(argc, argv, "machines", 4));
  config.memory_budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget-mb", 32)) << 20;
  config.root_dir = FlagStr(argc, argv, "workdir", "/tmp/tgpp_cli");
  Result<IoBackendKind> backend =
      ParseIoBackendKind(FlagStr(argc, argv, "io-backend", "auto"));
  if (!backend.ok()) std::exit(Fail(backend.status()));
  config.io_backend = *backend;
  config.io_queue_depth =
      static_cast<int>(FlagInt(argc, argv, "io-queue-depth", 64));
  std::filesystem::remove_all(config.root_dir);
  return config;
}

int CmdPartition(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());

  PartitionScheme scheme = PartitionScheme::kBbp;
  const std::string scheme_name = FlagStr(argc, argv, "scheme", "bbp");
  if (scheme_name == "random") scheme = PartitionScheme::kRandom;
  if (scheme_name == "hash") scheme = PartitionScheme::kHashPregel;

  TurboGraphSystem system(MakeClusterConfig(argc, argv));
  Status s = system.LoadGraph(std::move(*graph), scheme,
                              static_cast<int>(FlagInt(argc, argv, "q", 1)));
  if (!s.ok()) return Fail(s);

  const PartitionedGraph* pg = system.partition();
  std::printf("scheme=%s p=%d q=%d r=%d  partitioned in %.3fs\n",
              PartitionSchemeName(pg->scheme), pg->p, pg->q, pg->r,
              system.last_partition_seconds());
  std::printf("edge balance (max/mean): %.3f\n", pg->EdgeBalanceRatio());
  for (int m = 0; m < pg->p; ++m) {
    uint64_t pages = 0;
    for (const EdgeChunkInfo& c : pg->machines[m].chunks) {
      pages += c.num_pages;
    }
    std::printf("  machine %d: vertices [%llu, %llu), %llu edges, "
                "%llu pages\n",
                m,
                static_cast<unsigned long long>(pg->MachineRange(m).begin),
                static_cast<unsigned long long>(pg->MachineRange(m).end),
                static_cast<unsigned long long>(pg->machines[m].num_edges),
                static_cast<unsigned long long>(pages));
  }
  return 0;
}

int CmdRun(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());
  const std::string query = FlagStr(argc, argv, "query", "pr");
  const std::string trace_out = FlagStr(argc, argv, "trace-out", "");
  if (!trace_out.empty()) trace::SetEnabled(true);
  const std::string events_out = FlagStr(argc, argv, "events-out", "");
  if (!events_out.empty()) obs::SetEventsEnabled(true);

  const std::string faults = FlagStr(argc, argv, "faults", "");
  if (!faults.empty()) {
    Status s = fault::Configure(
        faults, static_cast<uint64_t>(FlagInt(argc, argv, "fault-seed", 42)));
    if (!s.ok()) return Fail(s);
  }
  EngineOptions options;
  options.checkpoint_every =
      static_cast<int>(FlagInt(argc, argv, "checkpoint-every", 0));
  options.deterministic = FlagBool(argc, argv, "deterministic");
  options.heartbeat_interval_ms =
      FlagInt(argc, argv, "heartbeat-interval-ms", 0);
  options.heartbeat_timeout_ms =
      FlagInt(argc, argv, "heartbeat-timeout-ms", 0);

  const std::string direction = FlagStr(argc, argv, "direction", "push");
  if (direction == "pull") {
    options.frontier.direction = DirectionMode::kPull;
  } else if (direction == "auto") {
    options.frontier.direction = DirectionMode::kAuto;
  } else if (direction != "push") {
    return Fail(Status::InvalidArgument("unknown --direction: " + direction));
  }
  options.frontier.sparse_windows = FlagBool(argc, argv, "sparse-windows");

  const std::string metrics_out = FlagStr(argc, argv, "metrics-out", "");
  const bool progress = FlagBool(argc, argv, "progress");
  if (!metrics_out.empty() || progress) {
    options.superstep_observer = [&](const obs::SuperstepRow& row) {
      if (progress) {
        std::printf("%s\n", row.ToProgressLine().c_str());
        std::fflush(stdout);
      }
      if (!metrics_out.empty()) {
        // Refresh at every superstep barrier so a scraper sees live values;
        // a failed write is not worth aborting the query over.
        (void)obs::WritePrometheusFile(obs::Registry::Global(), metrics_out);
      }
    };
  }

  TurboGraphSystem system(MakeClusterConfig(argc, argv));
  Status s = system.LoadGraph(std::move(*graph), PartitionScheme::kBbp,
                              static_cast<int>(FlagInt(argc, argv, "q", 1)));
  if (!s.ok()) return Fail(s);
  std::printf("partitioned in %.3fs (q=%d)\n",
              system.last_partition_seconds(), system.partition()->q);
  system.cluster()->ResetCountersAndCaches();

  // With --deterministic the final attributes are bit-reproducible, so
  // this digest (original-id order, the same one the job service
  // records) lets a serial run be compared against service results.
  const bool print_digest = options.deterministic;
  auto digest = [&](const auto& attrs) {
    if (!print_digest || attrs.empty()) return;
    using Attr = typename std::remove_reference_t<decltype(attrs)>::value_type;
    std::printf("result: crc32=%08x\n",
                Crc32(attrs.data(), attrs.size() * sizeof(Attr)));
  };

  Result<QueryStats> stats = Status::InvalidArgument("unknown query: " +
                                                     query);
  if (query == "pr") {
    auto app = MakePageRankApp(
        system.partition(),
        static_cast<int>(FlagInt(argc, argv, "iterations", 10)));
    std::vector<PageRankAttr> ranks;
    stats = system.RunQuery(app, &ranks, options);
    if (stats.ok()) {
      VertexId best = 0;
      for (VertexId v = 0; v < ranks.size(); ++v) {
        if (ranks[v].pr > ranks[best].pr) best = v;
      }
      std::printf("top vertex: v%llu (pr=%.4f)\n",
                  static_cast<unsigned long long>(best), ranks[best].pr);
      digest(ranks);
    }
  } else if (query == "bfs") {
    auto app = MakeBfsApp(
        system.partition(),
        static_cast<VertexId>(FlagInt(argc, argv, "source", 0)));
    std::vector<BfsAttr> dists;
    stats = system.RunQuery(app, &dists, options);
    if (stats.ok()) {
      uint64_t reachable = 0, depth = 0;
      for (const BfsAttr& d : dists) {
        if (d.dist != kBfsUnreached) {
          ++reachable;
          depth = std::max(depth, d.dist);
        }
      }
      std::printf("reachable vertices: %llu, depth %llu\n",
                  static_cast<unsigned long long>(reachable),
                  static_cast<unsigned long long>(depth));
      digest(dists);
    }
  } else if (query == "sssp") {
    auto app = MakeSsspApp(
        system.partition(),
        static_cast<VertexId>(FlagInt(argc, argv, "source", 0)));
    std::vector<SsspAttr> dists;
    stats = system.RunQuery(app, &dists, options);
    if (stats.ok()) {
      uint64_t reachable = 0;
      for (const SsspAttr& d : dists) {
        if (d.dist != kInfiniteDistance) ++reachable;
      }
      std::printf("reachable vertices: %llu\n",
                  static_cast<unsigned long long>(reachable));
      digest(dists);
    }
  } else if (query == "sssp-delta") {
    auto app = MakeSsspDeltaApp(
        system.partition(),
        static_cast<VertexId>(FlagInt(argc, argv, "source", 0)),
        static_cast<uint64_t>(FlagInt(argc, argv, "delta", 4)),
        static_cast<uint64_t>(FlagInt(argc, argv, "max-weight", 8)));
    std::vector<SsspDeltaAttr> dists;
    stats = system.RunQuery(app, &dists, options);
    if (stats.ok()) {
      uint64_t reachable = 0;
      for (const SsspDeltaAttr& d : dists) {
        if (d.dist != kInfiniteDistance) ++reachable;
      }
      std::printf("reachable vertices: %llu\n",
                  static_cast<unsigned long long>(reachable));
      digest(dists);
    }
  } else if (query == "wcc-sampled") {
    auto app = MakeWccSampledApp(
        system.partition(),
        static_cast<int>(FlagInt(argc, argv, "sample-rounds", 2)));
    std::vector<WccSampledAttr> labels;
    stats = system.RunQuery(app, &labels, options);
    if (stats.ok()) {
      std::set<uint64_t> components;
      for (const WccSampledAttr& l : labels) components.insert(l.label);
      std::printf("components: %zu\n", components.size());
      // Digest only the labels: the step counter depends on superstep
      // count, which the sampling schedule is free to change.
      if (print_digest && !labels.empty()) {
        std::vector<uint64_t> only(labels.size());
        for (size_t i = 0; i < labels.size(); ++i) only[i] = labels[i].label;
        std::printf("result: crc32=%08x\n",
                    Crc32(only.data(), only.size() * sizeof(uint64_t)));
      }
    }
  } else if (query == "kcore") {
    auto app = MakeKcoreApp(system.partition());
    std::vector<KcoreAttr> cores;
    stats = system.RunQuery(app, &cores, options);
    if (stats.ok()) {
      uint64_t max_core = 0;
      for (const KcoreAttr& c : cores) max_core = std::max(max_core, c.core);
      std::printf("max coreness: %llu\n",
                  static_cast<unsigned long long>(max_core));
      digest(cores);
    }
  } else if (query == "lp") {
    auto app = MakeLabelPropagationApp(
        system.partition(),
        static_cast<int>(FlagInt(argc, argv, "rounds", 10)));
    std::vector<LpAttr> labels;
    stats = system.RunQuery(app, &labels, options);
    if (stats.ok()) {
      std::set<uint64_t> communities;
      for (const LpAttr& l : labels) communities.insert(l.label);
      std::printf("communities: %zu\n", communities.size());
      digest(labels);
    }
  } else if (query == "mis") {
    auto app = MakeMisApp(system.partition());
    std::vector<MisAttr> states;
    stats = system.RunQuery(app, &states, options);
    if (stats.ok()) {
      uint64_t in_set = 0;
      for (const MisAttr& s : states) {
        if (s.state == kMisIn) ++in_set;
      }
      std::printf("independent set size: %llu\n",
                  static_cast<unsigned long long>(in_set));
      digest(states);
    }
  } else if (query == "wcc") {
    auto app = MakeWccApp(system.partition());
    std::vector<WccAttr> labels;
    stats = system.RunQuery(app, &labels, options);
    if (stats.ok()) {
      std::set<uint64_t> components;
      for (const WccAttr& l : labels) components.insert(l.label);
      std::printf("components: %zu\n", components.size());
      digest(labels);
    }
  } else if (query == "tc") {
    auto app = MakeTriangleCountingApp();
    stats = system.RunQuery(app, options);
    if (stats.ok()) {
      std::printf("triangles: %llu\n",
                  static_cast<unsigned long long>(stats->aggregate_sum));
    }
  } else if (query == "lcc") {
    auto app = MakeLccApp(system.partition());
    std::vector<LccAttr> attrs;
    stats = system.RunQuery(app, &attrs, options);
    if (stats.ok()) {
      double sum = 0;
      for (const LccAttr& a : attrs) sum += a.lcc;
      std::printf("mean lcc: %.4f\n",
                  attrs.empty() ? 0.0 : sum / attrs.size());
      digest(attrs);
    }
  } else if (query == "clique4") {
    auto app = MakeFourCliqueApp();
    stats = system.RunQuery(app, options);
    if (stats.ok()) {
      std::printf("4-cliques: %llu\n",
                  static_cast<unsigned long long>(stats->aggregate_sum));
    }
  }
  if (!stats.ok()) return Fail(stats.status());

  const ClusterSnapshot snap = system.cluster()->Snapshot();
  std::printf("%s: %d supersteps, %.3fs wall (q=%d)\n", query.c_str(),
              stats->supersteps, stats->wall_seconds, stats->q_used);
  std::printf("I/O: disk %.2f MB, network %.2f MB\n",
              snap.disk_bytes / 1e6, snap.net_bytes / 1e6);
  if (!faults.empty() || options.checkpoint_every > 0) {
    std::printf("faults: %llu injected, %d checkpoints, %d recoveries\n",
                static_cast<unsigned long long>(fault::InjectedCount()),
                stats->checkpoints, stats->recoveries);
    fault::Disarm();
  }
  if (!metrics_out.empty()) {
    Status ms = obs::WritePrometheusFile(obs::Registry::Global(), metrics_out);
    if (!ms.ok()) return Fail(ms);
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Status s = trace::WriteChromeTrace(trace_out);
    if (!s.ok()) return Fail(s);
    const trace::TraceStats tstats = trace::Stats();
    std::printf("trace: %s (%llu events, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(tstats.recorded),
                static_cast<unsigned long long>(tstats.dropped));
  }
  if (!events_out.empty()) {
    Status es = obs::AppendEventsFile(events_out);
    if (!es.ok()) return Fail(es);
    const obs::EventLogStats estats = obs::EventStats();
    std::printf("events: %s (%llu events, %llu dropped)\n",
                events_out.c_str(),
                static_cast<unsigned long long>(estats.recorded),
                static_cast<unsigned long long>(estats.dropped));
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  const std::string socket_path = FlagStr(argc, argv, "socket", "");
  const int tcp_port = static_cast<int>(FlagInt(argc, argv, "port", -1));
  if (socket_path.empty() && tcp_port < 0) {
    std::fprintf(stderr, "serve: need --socket=PATH or --port=N\n");
    return Usage();
  }
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());
  const std::string trace_out = FlagStr(argc, argv, "trace-out", "");
  if (!trace_out.empty()) trace::SetEnabled(true);
  const std::string events_out = FlagStr(argc, argv, "events-out", "");
  if (!events_out.empty()) obs::SetEventsEnabled(true);
  const std::string faults = FlagStr(argc, argv, "faults", "");
  if (!faults.empty()) {
    Status fs = fault::Configure(
        faults,
        static_cast<uint64_t>(FlagInt(argc, argv, "fault-seed", 42)));
    if (!fs.ok()) return Fail(fs);
  }

  ClusterConfig config = MakeClusterConfig(argc, argv);
  if (FlagStr(argc, argv, "workdir", "").empty()) {
    // Distinct default from `tgpp run` so a serial comparison run does
    // not clobber the daemon's working files.
    std::filesystem::remove_all(config.root_dir);
    config.root_dir = "/tmp/tgpp_serve";
    std::filesystem::remove_all(config.root_dir);
  }

  service::JobServiceOptions svc;
  svc.max_running = static_cast<int>(FlagInt(argc, argv, "max-running", 2));
  svc.recv_timeout_ms = FlagInt(argc, argv, "recv-timeout-ms", 60000);
  svc.ledger_capacity_override =
      static_cast<uint64_t>(FlagInt(argc, argv, "ledger-bytes", 0));
  svc.reservation_override =
      static_cast<uint64_t>(FlagInt(argc, argv, "reservation-bytes", 0));
  svc.max_retries = static_cast<int>(FlagInt(argc, argv, "max-retries", 0));
  svc.retry_backoff_ms = FlagInt(argc, argv, "retry-backoff-ms", 50);
  svc.checkpoint_every =
      static_cast<int>(FlagInt(argc, argv, "checkpoint-every", 0));
  svc.heartbeat_interval_ms =
      FlagInt(argc, argv, "heartbeat-interval-ms", 0);
  svc.heartbeat_timeout_ms =
      FlagInt(argc, argv, "heartbeat-timeout-ms", 0);

  TurboGraphSystem system(config);
  int q = static_cast<int>(FlagInt(argc, argv, "q", 0));
  if (q < 1) {
    // Size chunks so max_running concurrent k=1 queries each fit in
    // their share of the per-machine window budget (docs/SERVICE.md).
    auto q_auto = service::RequiredQForService(
        *system.cluster(), graph->num_vertices, svc.max_running);
    if (!q_auto.ok()) return Fail(q_auto.status());
    q = *q_auto;
  }
  Status s = system.LoadGraph(std::move(*graph), PartitionScheme::kBbp, q);
  if (!s.ok()) return Fail(s);
  system.cluster()->ResetCountersAndCaches();

  // The dynamic-graph subsystem enables `update` jobs. q was pinned above
  // (auto-sizing or --q), so RunQuery never repartitions under mutations.
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());
  service::JobManager manager(system.cluster(), system.partition(), svc,
                              &dynamic);
  service::ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.tcp_port = tcp_port < 0 ? 0 : tcp_port;
  service::JobServer server(&manager, server_options);
  s = server.Start();
  if (!s.ok()) return Fail(s);
  if (!socket_path.empty()) {
    std::printf("serving on unix:%s (q=%d, max_running=%d, ledger=%llu "
                "bytes)\n",
                socket_path.c_str(), q, svc.max_running,
                static_cast<unsigned long long>(manager.ledger().capacity()));
  } else {
    std::printf("serving on 127.0.0.1:%d (q=%d, max_running=%d, "
                "ledger=%llu bytes)\n",
                server.port(), q, svc.max_running,
                static_cast<unsigned long long>(manager.ledger().capacity()));
  }
  std::fflush(stdout);

  const std::string metrics_out = FlagStr(argc, argv, "metrics-out", "");
  std::atomic<bool> done{false};
  std::thread refresher;
  if (!metrics_out.empty() || !events_out.empty()) {
    refresher = std::thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (!metrics_out.empty()) {
          (void)obs::WritePrometheusFile(obs::Registry::Global(),
                                         metrics_out);
        }
        // Stream the event log: drained while jobs run, so the file is a
        // live tail and the rings never fill between drains.
        if (!events_out.empty()) (void)obs::AppendEventsFile(events_out);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    });
  }

  server.WaitForShutdown();
  server.Stop();
  manager.Shutdown();
  if (refresher.joinable()) {
    done.store(true, std::memory_order_release);
    refresher.join();
  }

  int jobs_done = 0, jobs_failed = 0, jobs_cancelled = 0;
  for (const service::JobRecord& record : manager.ListJobs()) {
    switch (record.state) {
      case service::JobState::kDone: ++jobs_done; break;
      case service::JobState::kCancelled: ++jobs_cancelled; break;
      default: ++jobs_failed; break;
    }
  }
  std::printf("served %d jobs: %d done, %d failed, %d cancelled\n",
              jobs_done + jobs_failed + jobs_cancelled, jobs_done,
              jobs_failed, jobs_cancelled);
  if (!metrics_out.empty()) {
    Status ms = obs::WritePrometheusFile(obs::Registry::Global(), metrics_out);
    if (!ms.ok()) return Fail(ms);
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Status ts = trace::WriteChromeTrace(trace_out);
    if (!ts.ok()) return Fail(ts);
    std::printf("trace: %s\n", trace_out.c_str());
  }
  if (!events_out.empty()) {
    Status es = obs::AppendEventsFile(events_out);
    if (!es.ok()) return Fail(es);
    const obs::EventLogStats estats = obs::EventStats();
    std::printf("events: %s (%llu events, %llu dropped)\n",
                events_out.c_str(),
                static_cast<unsigned long long>(estats.recorded),
                static_cast<unsigned long long>(estats.dropped));
  }
  return 0;
}

Result<service::ServiceClient> ConnectFromFlags(int argc, char** argv) {
  const std::string socket_path = FlagStr(argc, argv, "socket", "");
  if (!socket_path.empty()) {
    return service::ServiceClient::ConnectUnix(socket_path);
  }
  const int port = static_cast<int>(FlagInt(argc, argv, "port", -1));
  if (port < 0) {
    return Status::InvalidArgument("need --socket=PATH or --port=N");
  }
  return service::ServiceClient::ConnectTcp(
      FlagStr(argc, argv, "host", "127.0.0.1"), port);
}

void PrintJobLine(const service::JsonObject& job) {
  auto field = [&](const char* key) {
    auto v = job.StringOr(key, "-");
    return v.ok() ? *v : std::string("-");
  };
  auto num = [&](const char* key) {
    auto v = job.IntOr(key, 0);
    return v.ok() ? *v : int64_t{0};
  };
  std::printf("job %lld %-8s %-9s crc32=%s supersteps=%lld",
              static_cast<long long>(num("id")), field("query").c_str(),
              field("state").c_str(), field("crc32").c_str(),
              static_cast<long long>(num("supersteps")));
  if (num("attempts") > 1) {
    std::printf(" attempts=%lld", static_cast<long long>(num("attempts")));
  }
  auto exhausted = job.BoolOr("retries_exhausted", false);
  if (exhausted.ok() && *exhausted) std::printf(" retries_exhausted");
  if (job.Has("error")) {
    std::printf(" error=%s (%s)", field("error").c_str(),
                field("code").c_str());
  }
  std::printf("\n");
}

// Exit code for a terminal job state, same table as ExitCodeForStatus.
int ExitCodeForJob(const service::JsonObject& job) {
  auto state = job.StringOr("state", "");
  if (!state.ok()) return 5;
  if (*state == "done") return 0;
  if (*state == "cancelled") return 4;
  auto exhausted = job.BoolOr("retries_exhausted", false);
  if (exhausted.ok() && *exhausted) return 6;
  auto code = job.StringOr("code", "");
  if (code.ok() && *code == "MachineLost") return 6;
  return (code.ok() && *code == "Timeout") ? 3 : 5;
}

int CmdSubmit(int argc, char** argv) {
  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());

  service::JsonWriter request;
  request.Str("cmd", "submit")
      .Str("query", FlagStr(argc, argv, "query", "pr"))
      .Int("iterations", FlagInt(argc, argv, "iterations", 10))
      .Int("source", FlagInt(argc, argv, "source", 0))
      .Int("priority", FlagInt(argc, argv, "priority", 0))
      .Int("deadline_ms", FlagInt(argc, argv, "deadline-ms", 0))
      .Bool("deterministic", !FlagBool(argc, argv, "nondeterministic"));
  auto response = client->Call(request.Close());
  if (!response.ok()) return Fail(response.status());
  auto id = response->GetInt("id");
  if (!id.ok()) return Fail(id.status());
  std::printf("submitted job %lld\n", static_cast<long long>(*id));

  if (!FlagBool(argc, argv, "wait")) return 0;
  service::JsonWriter wait;
  wait.Str("cmd", "wait")
      .Int("id", *id)
      .Int("timeout_ms", FlagInt(argc, argv, "timeout-ms", -1));
  auto waited = client->Call(wait.Close());
  if (!waited.ok()) return Fail(waited.status());
  auto raw = waited->GetRaw("job");
  Result<service::JsonObject> job =
      raw.ok() ? service::JsonObject::Parse(*raw)
               : Result<service::JsonObject>(raw.status());
  if (!job.ok()) return Fail(job.status());
  PrintJobLine(*job);
  return ExitCodeForJob(*job);
}

int CmdUpdate(int argc, char** argv) {
  std::vector<std::string> mutations;
  for (const std::string& spec : FlagStrAll(argc, argv, "add")) {
    mutations.push_back("+" + spec);
  }
  for (const std::string& spec : FlagStrAll(argc, argv, "del")) {
    mutations.push_back("-" + spec);
  }
  const std::string file = FlagStr(argc, argv, "file", "");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      return Fail(Status::IOError("update: cannot open " + file));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      mutations.push_back(line);
    }
  }
  if (mutations.empty()) {
    std::fprintf(stderr,
                 "update: need --add=SRC:DST, --del=SRC:DST or --file=PATH\n");
    return Usage();
  }

  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());

  std::string array = "[";
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (i > 0) array += ",";
    array += "\"" + service::EscapeJson(mutations[i]) + "\"";
  }
  array += "]";
  const bool wait = !FlagBool(argc, argv, "async");
  service::JsonWriter request;
  request.Str("cmd", "update").Raw("mutations", array).Bool("wait", wait);
  if (wait) {
    request.Int("timeout_ms", FlagInt(argc, argv, "timeout-ms", -1));
  }
  auto response = client->Call(request.Close());
  if (!response.ok()) return Fail(response.status());

  if (!wait) {
    auto id = response->GetInt("id");
    if (!id.ok()) return Fail(id.status());
    std::printf("submitted update job %lld (%zu mutations)\n",
                static_cast<long long>(*id), mutations.size());
    return 0;
  }
  auto raw = response->GetRaw("job");
  Result<service::JsonObject> job =
      raw.ok() ? service::JsonObject::Parse(*raw)
               : Result<service::JsonObject>(raw.status());
  if (!job.ok()) return Fail(job.status());
  auto num = [&](const char* key) {
    auto v = job->IntOr(key, 0);
    return v.ok() ? *v : int64_t{0};
  };
  auto state = job->StringOr("state", "-");
  std::printf("update job %lld %s epoch=%lld inserted=%lld deleted=%lld\n",
              static_cast<long long>(num("id")),
              state.ok() ? state->c_str() : "-",
              static_cast<long long>(num("epoch")),
              static_cast<long long>(num("inserted")),
              static_cast<long long>(num("deleted")));
  if (job->Has("error")) {
    auto err = job->StringOr("error", "-");
    auto code = job->StringOr("code", "-");
    std::printf("  error=%s (%s)\n", err.ok() ? err->c_str() : "-",
                code.ok() ? code->c_str() : "-");
  }
  return ExitCodeForJob(*job);
}

int CmdJobs(int argc, char** argv) {
  const bool json = FlagBool(argc, argv, "json");
  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());
  service::JsonWriter request;
  request.Str("cmd", "jobs");
  if (json) request.Bool("profiles", true);
  auto response = client->Call(request.Close());
  if (!response.ok()) return Fail(response.status());
  auto jobs = response->GetArray("jobs");
  if (!jobs.ok()) return Fail(jobs.status());
  for (const std::string& element : *jobs) {
    if (json) {
      // JSONL: one record (with embedded profile) per line, ready for jq.
      std::printf("%s\n", element.c_str());
      continue;
    }
    auto job = service::JsonObject::Parse(element);
    if (!job.ok()) return Fail(job.status());
    PrintJobLine(*job);
  }
  return 0;
}

int CmdProfile(int argc, char** argv) {
  const int64_t id = FlagInt(argc, argv, "id", -1);
  if (id < 0) {
    std::fprintf(stderr, "profile: need --id=N\n");
    return Usage();
  }
  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());
  auto response = client->Call(
      service::JsonWriter().Str("cmd", "profile").Int("id", id).Close());
  if (!response.ok()) return Fail(response.status());
  auto raw_profile = response->GetRaw("profile");
  if (!raw_profile.ok()) return Fail(raw_profile.status());
  // The profile carries engine-side totals; queue wait and wall time live
  // on the job record, so fetch that too and join on the id.
  auto status_response = client->Call(
      service::JsonWriter().Str("cmd", "status").Int("id", id).Close());
  if (!status_response.ok()) return Fail(status_response.status());
  auto raw_job = status_response->GetRaw("job");
  if (!raw_job.ok()) return Fail(raw_job.status());

  if (FlagBool(argc, argv, "json")) {
    std::printf("%s\n", service::JsonWriter()
                            .Raw("job", *raw_job)
                            .Raw("profile", *raw_profile)
                            .Close()
                            .c_str());
    return 0;
  }

  auto job = service::JsonObject::Parse(*raw_job);
  if (!job.ok()) return Fail(job.status());
  auto profile = service::JsonObject::Parse(*raw_profile);
  if (!profile.ok()) return Fail(profile.status());
  auto str = [](const service::JsonObject& o, const char* key) {
    auto v = o.StringOr(key, "-");
    return v.ok() ? *v : std::string("-");
  };
  auto num = [](const service::JsonObject& o, const char* key) {
    auto v = o.IntOr(key, 0);
    return v.ok() ? *v : int64_t{0};
  };
  auto dbl = [](const service::JsonObject& o, const char* key) {
    auto v = o.DoubleOr(key, 0.0);
    return v.ok() ? *v : 0.0;
  };

  std::printf("job %lld %s %s\n", static_cast<long long>(id),
              str(*job, "query").c_str(), str(*job, "state").c_str());
  std::printf("  queue wait %.3fs, run %.3fs\n", dbl(*job, "queue_wait_s"),
              dbl(*job, "run_s"));
  std::printf("  supersteps %lld (%lld push, %lld pull), checkpoints %lld\n",
              static_cast<long long>(num(*profile, "supersteps")),
              static_cast<long long>(num(*profile, "push_supersteps")),
              static_cast<long long>(num(*profile, "pull_supersteps")),
              static_cast<long long>(num(*profile, "checkpoints")));
  std::printf("  cpu scatter %.3fs, gather %.3fs, apply %.3fs\n",
              dbl(*profile, "scatter_cpu_s"), dbl(*profile, "gather_cpu_s"),
              dbl(*profile, "apply_cpu_s"));
  std::printf("  updates %lld generated, %lld sent, %lld spilled\n",
              static_cast<long long>(num(*profile, "updates_generated")),
              static_cast<long long>(num(*profile, "updates_sent")),
              static_cast<long long>(num(*profile, "updates_spilled")));
  std::printf("  io disk %lld bytes, net %lld bytes, buffer hit rate %.3f\n",
              static_cast<long long>(num(*profile, "disk_bytes")),
              static_cast<long long>(num(*profile, "net_bytes")),
              dbl(*profile, "buffer_hit_rate"));
  const int64_t recoveries = num(*profile, "recoveries");
  if (recoveries > 0 || profile->Has("lost_machine") ||
      profile->Has("resumed")) {
    std::printf("  recovery tax: %lld recoveries, detect %.3fs, "
                "restore %.3fs, replay %.3fs\n",
                static_cast<long long>(recoveries),
                dbl(*profile, "recovery_detect_s"),
                dbl(*profile, "recovery_restore_s"),
                dbl(*profile, "recovery_replay_s"));
    if (profile->Has("lost_machine")) {
      std::printf("  lost machine %lld\n",
                  static_cast<long long>(num(*profile, "lost_machine")));
    }
    auto resumed = profile->BoolOr("resumed", false);
    if (resumed.ok() && *resumed) std::printf("  resumed from checkpoint\n");
  }

  auto rows = profile->GetArray("rows");
  if (rows.ok() && !rows->empty()) {
    std::printf("  %-5s %-5s %9s %9s %9s %9s %12s\n", "step", "dir",
                "wall_s", "scatter_s", "gather_s", "apply_s", "active");
    for (const std::string& element : *rows) {
      auto row = service::JsonObject::Parse(element);
      if (!row.ok()) return Fail(row.status());
      std::printf("  %-5lld %-5s %9.3f %9.3f %9.3f %9.3f %12lld\n",
                  static_cast<long long>(num(*row, "superstep")),
                  str(*row, "direction").c_str(),
                  dbl(*row, "superstep_seconds"),
                  dbl(*row, "scatter_cpu_seconds"),
                  dbl(*row, "gather_cpu_seconds"),
                  dbl(*row, "apply_cpu_seconds"),
                  static_cast<long long>(num(*row, "active_vertices")));
    }
  }
  if (num(*profile, "rows_dropped") > 0) {
    std::printf("  (%lld rows dropped past cap)\n",
                static_cast<long long>(num(*profile, "rows_dropped")));
  }
  return 0;
}

int CmdCancel(int argc, char** argv) {
  const int64_t id = FlagInt(argc, argv, "id", -1);
  if (id < 0) {
    std::fprintf(stderr, "cancel: need --id=N\n");
    return Usage();
  }
  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());
  auto response = client->Call(
      service::JsonWriter().Str("cmd", "cancel").Int("id", id).Close());
  if (!response.ok()) return Fail(response.status());
  std::printf("cancel requested for job %lld\n", static_cast<long long>(id));
  return 0;
}

int CmdShutdown(int argc, char** argv) {
  auto client = ConnectFromFlags(argc, argv);
  if (!client.ok()) return Fail(client.status());
  auto response =
      client->Call(service::JsonWriter().Str("cmd", "shutdown").Close());
  if (!response.ok()) return Fail(response.status());
  std::printf("shutdown acknowledged\n");
  return 0;
}

}  // namespace
}  // namespace tgpp::cli

int main(int argc, char** argv) {
  using namespace tgpp::cli;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "partition") return CmdPartition(argc, argv);
  if (cmd == "run") return CmdRun(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "submit") return CmdSubmit(argc, argv);
  if (cmd == "update") return CmdUpdate(argc, argv);
  if (cmd == "jobs") return CmdJobs(argc, argv);
  if (cmd == "profile") return CmdProfile(argc, argv);
  if (cmd == "cancel") return CmdCancel(argc, argv);
  if (cmd == "shutdown") return CmdShutdown(argc, argv);
  return Usage();
}
