// tgpp: command-line driver for the TurboGraph++ library.
//
//   tgpp generate  --scale=18 --seed=42 --out=graph.bin [--undirected]
//   tgpp stats     --graph=graph.bin
//   tgpp partition --graph=graph.bin [--machines=4] [--q=1]
//                  [--scheme=bbp|random|hash]
//   tgpp run       --graph=graph.bin --query=pr|sssp|wcc|tc|lcc|clique4
//                  [--machines=4] [--budget-mb=32] [--iterations=10]
//                  [--source=0] [--workdir=/tmp/tgpp_cli]
//                  [--trace-out=trace.json]
//                  [--metrics-out=metrics.prom] [--progress]
//                  [--faults=SPEC] [--fault-seed=42]
//                  [--checkpoint-every=N] [--deterministic]
//
// --trace-out records an execution trace of the run (superstep phases,
// async I/O, fabric traffic, barriers — one track per simulated machine)
// and writes Chrome-trace JSON loadable in chrome://tracing or Perfetto.
// See docs/TRACING.md.
//
// --metrics-out writes the full metrics registry in Prometheus text
// exposition format, refreshed at every superstep barrier and once more
// when the run finishes (atomic tmp+rename, so a scraper tailing the file
// never sees a partial write). --progress prints one line per superstep
// (active frontier, updates, disk/net bytes, buffer-pool hit rate,
// elapsed time). Metric name catalog: docs/METRICS.md.
//
// --faults arms deterministic fault injection for the run, e.g.
//   --faults="disk.read:io_error@p=0.001;machine2:crash@superstep=3"
// --checkpoint-every=N writes a superstep-boundary checkpoint every N
// supersteps so injected crashes roll back and resume instead of failing
// the query; --deterministic makes gather order (and thus floating-point
// results) independent of thread/message timing. Grammar and recovery
// semantics: docs/FAULTS.md.
//
// Exit code 0 on success; failures print the Status and exit 1.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>

#include "algos/clique4.h"
#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/degree.h"
#include "graph/rmat.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/trace.h"

namespace tgpp::cli {
namespace {

std::string FlagStr(int argc, char** argv, const std::string& key,
                    const std::string& def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return def;
}

int64_t FlagInt(int argc, char** argv, const std::string& key,
                int64_t def) {
  const std::string v = FlagStr(argc, argv, key, "");
  return v.empty() ? def : std::stoll(v);
}

bool FlagBool(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 2; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tgpp <generate|stats|partition|run> [--flags]\n"
               "see the header of tools/tgpp_cli.cc for details\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  const std::string out = FlagStr(argc, argv, "out", "graph.bin");
  RmatParams params;
  const int scale = static_cast<int>(FlagInt(argc, argv, "scale", 18));
  params.vertex_scale = scale - 4;
  params.num_edges = 1ull << scale;
  params.seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 42));
  EdgeList graph = GenerateRmat(params);
  if (FlagBool(argc, argv, "undirected")) {
    DeduplicateEdges(&graph);
    MakeUndirected(&graph);
  }
  Status s = SaveEdgeList(graph, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %llu vertices, %llu edges\n", out.c_str(),
              static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdStats(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());
  const DegreeStats stats = ComputeDegreeStats(*graph);
  std::printf("vertices:        %llu\n",
              static_cast<unsigned long long>(graph->num_vertices));
  std::printf("edges:           %llu\n",
              static_cast<unsigned long long>(graph->num_edges()));
  std::printf("bytes:           %llu\n",
              static_cast<unsigned long long>(graph->size_bytes()));
  std::printf("mean out-degree: %.2f\n", stats.mean_degree);
  std::printf("max out-degree:  %llu\n",
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("top-1%% share:    %.1f%%\n",
              stats.top1pct_edge_share * 100);
  return 0;
}

ClusterConfig MakeClusterConfig(int argc, char** argv) {
  ClusterConfig config;
  config.num_machines =
      static_cast<int>(FlagInt(argc, argv, "machines", 4));
  config.memory_budget_bytes =
      static_cast<uint64_t>(FlagInt(argc, argv, "budget-mb", 32)) << 20;
  config.root_dir = FlagStr(argc, argv, "workdir", "/tmp/tgpp_cli");
  std::filesystem::remove_all(config.root_dir);
  return config;
}

int CmdPartition(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());

  PartitionScheme scheme = PartitionScheme::kBbp;
  const std::string scheme_name = FlagStr(argc, argv, "scheme", "bbp");
  if (scheme_name == "random") scheme = PartitionScheme::kRandom;
  if (scheme_name == "hash") scheme = PartitionScheme::kHashPregel;

  TurboGraphSystem system(MakeClusterConfig(argc, argv));
  Status s = system.LoadGraph(std::move(*graph), scheme,
                              static_cast<int>(FlagInt(argc, argv, "q", 1)));
  if (!s.ok()) return Fail(s);

  const PartitionedGraph* pg = system.partition();
  std::printf("scheme=%s p=%d q=%d r=%d  partitioned in %.3fs\n",
              PartitionSchemeName(pg->scheme), pg->p, pg->q, pg->r,
              system.last_partition_seconds());
  std::printf("edge balance (max/mean): %.3f\n", pg->EdgeBalanceRatio());
  for (int m = 0; m < pg->p; ++m) {
    uint64_t pages = 0;
    for (const EdgeChunkInfo& c : pg->machines[m].chunks) {
      pages += c.num_pages;
    }
    std::printf("  machine %d: vertices [%llu, %llu), %llu edges, "
                "%llu pages\n",
                m,
                static_cast<unsigned long long>(pg->MachineRange(m).begin),
                static_cast<unsigned long long>(pg->MachineRange(m).end),
                static_cast<unsigned long long>(pg->machines[m].num_edges),
                static_cast<unsigned long long>(pages));
  }
  return 0;
}

int CmdRun(int argc, char** argv) {
  auto graph = LoadEdgeList(FlagStr(argc, argv, "graph", "graph.bin"));
  if (!graph.ok()) return Fail(graph.status());
  const std::string query = FlagStr(argc, argv, "query", "pr");
  const std::string trace_out = FlagStr(argc, argv, "trace-out", "");
  if (!trace_out.empty()) trace::SetEnabled(true);

  const std::string faults = FlagStr(argc, argv, "faults", "");
  if (!faults.empty()) {
    Status s = fault::Configure(
        faults, static_cast<uint64_t>(FlagInt(argc, argv, "fault-seed", 42)));
    if (!s.ok()) return Fail(s);
  }
  EngineOptions options;
  options.checkpoint_every =
      static_cast<int>(FlagInt(argc, argv, "checkpoint-every", 0));
  options.deterministic = FlagBool(argc, argv, "deterministic");

  const std::string metrics_out = FlagStr(argc, argv, "metrics-out", "");
  const bool progress = FlagBool(argc, argv, "progress");
  if (!metrics_out.empty() || progress) {
    options.superstep_observer = [&](const obs::SuperstepRow& row) {
      if (progress) {
        std::printf("%s\n", row.ToProgressLine().c_str());
        std::fflush(stdout);
      }
      if (!metrics_out.empty()) {
        // Refresh at every superstep barrier so a scraper sees live values;
        // a failed write is not worth aborting the query over.
        (void)obs::WritePrometheusFile(obs::Registry::Global(), metrics_out);
      }
    };
  }

  TurboGraphSystem system(MakeClusterConfig(argc, argv));
  Status s = system.LoadGraph(std::move(*graph));
  if (!s.ok()) return Fail(s);
  std::printf("partitioned in %.3fs (q=%d)\n",
              system.last_partition_seconds(), system.partition()->q);
  system.cluster()->ResetCountersAndCaches();

  Result<QueryStats> stats = Status::InvalidArgument("unknown query: " +
                                                     query);
  if (query == "pr") {
    auto app = MakePageRankApp(
        system.partition(),
        static_cast<int>(FlagInt(argc, argv, "iterations", 10)));
    std::vector<PageRankAttr> ranks;
    stats = system.RunQuery(app, &ranks, options);
    if (stats.ok()) {
      VertexId best = 0;
      for (VertexId v = 0; v < ranks.size(); ++v) {
        if (ranks[v].pr > ranks[best].pr) best = v;
      }
      std::printf("top vertex: v%llu (pr=%.4f)\n",
                  static_cast<unsigned long long>(best), ranks[best].pr);
    }
  } else if (query == "sssp") {
    auto app = MakeSsspApp(
        system.partition(),
        static_cast<VertexId>(FlagInt(argc, argv, "source", 0)));
    std::vector<SsspAttr> dists;
    stats = system.RunQuery(app, &dists, options);
    if (stats.ok()) {
      uint64_t reachable = 0;
      for (const SsspAttr& d : dists) {
        if (d.dist != kInfiniteDistance) ++reachable;
      }
      std::printf("reachable vertices: %llu\n",
                  static_cast<unsigned long long>(reachable));
    }
  } else if (query == "wcc") {
    auto app = MakeWccApp(system.partition());
    std::vector<WccAttr> labels;
    stats = system.RunQuery(app, &labels, options);
    if (stats.ok()) {
      std::set<uint64_t> components;
      for (const WccAttr& l : labels) components.insert(l.label);
      std::printf("components: %zu\n", components.size());
    }
  } else if (query == "tc") {
    auto app = MakeTriangleCountingApp();
    stats = system.RunQuery(app, options);
    if (stats.ok()) {
      std::printf("triangles: %llu\n",
                  static_cast<unsigned long long>(stats->aggregate_sum));
    }
  } else if (query == "lcc") {
    auto app = MakeLccApp(system.partition());
    std::vector<LccAttr> attrs;
    stats = system.RunQuery(app, &attrs, options);
    if (stats.ok()) {
      double sum = 0;
      for (const LccAttr& a : attrs) sum += a.lcc;
      std::printf("mean lcc: %.4f\n",
                  attrs.empty() ? 0.0 : sum / attrs.size());
    }
  } else if (query == "clique4") {
    auto app = MakeFourCliqueApp();
    stats = system.RunQuery(app, options);
    if (stats.ok()) {
      std::printf("4-cliques: %llu\n",
                  static_cast<unsigned long long>(stats->aggregate_sum));
    }
  }
  if (!stats.ok()) return Fail(stats.status());

  const ClusterSnapshot snap = system.cluster()->Snapshot();
  std::printf("%s: %d supersteps, %.3fs wall (q=%d)\n", query.c_str(),
              stats->supersteps, stats->wall_seconds, stats->q_used);
  std::printf("I/O: disk %.2f MB, network %.2f MB\n",
              snap.disk_bytes / 1e6, snap.net_bytes / 1e6);
  if (!faults.empty() || options.checkpoint_every > 0) {
    std::printf("faults: %llu injected, %d checkpoints, %d recoveries\n",
                static_cast<unsigned long long>(fault::InjectedCount()),
                stats->checkpoints, stats->recoveries);
    fault::Disarm();
  }
  if (!metrics_out.empty()) {
    Status ms = obs::WritePrometheusFile(obs::Registry::Global(), metrics_out);
    if (!ms.ok()) return Fail(ms);
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Status s = trace::WriteChromeTrace(trace_out);
    if (!s.ok()) return Fail(s);
    const trace::TraceStats tstats = trace::Stats();
    std::printf("trace: %s (%llu events, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(tstats.recorded),
                static_cast<unsigned long long>(tstats.dropped));
  }
  return 0;
}

}  // namespace
}  // namespace tgpp::cli

int main(int argc, char** argv) {
  using namespace tgpp::cli;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "partition") return CmdPartition(argc, argv);
  if (cmd == "run") return CmdRun(argc, argv);
  return Usage();
}
