#!/usr/bin/env bash
# Fails if any docs/*.md (or README.md) references a repo path that does
# not exist. Keeps the architecture docs honest as the tree evolves.
#
# What counts as a reference: backtick-quoted tokens and markdown link
# targets that look like repo paths (contain a '/' or a known doc/file
# suffix). Anchors, URLs, and obvious non-paths are ignored.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

fail=0
checked=0

check_path() {
  local doc="$1" ref="$2"
  # Strip trailing punctuation and any :line suffix.
  ref="${ref%%:*}"
  ref="${ref%/}"
  [ -z "$ref" ] && return
  case "$ref" in
    http://*|https://*|mailto:*|\#*) return ;;          # URLs/anchors
    /*) return ;;                                       # absolute = not repo
    *\**|*\<*|*\>*|*'|'*|*' '*) return ;;               # globs/templates
  esac
  # Only treat as a path if it has a directory part or a doc/source suffix.
  case "$ref" in
    */*) : ;;
    *.md|*.sh|*.cc|*.h|*.cpp|*.txt|*.cmake) : ;;
    *) return ;;
  esac
  checked=$((checked + 1))
  # Accept repo-root-relative paths and include-style paths ("util/trace.h"
  # means src/util/trace.h, matching the #include convention).
  if [ ! -e "$ref" ] && [ ! -e "src/$ref" ]; then
    echo "check_docs: $doc references nonexistent path: $ref" >&2
    fail=1
  fi
}

scan_doc() {
  local doc="$1"
  # 1) backtick-quoted tokens: `src/core/engine.h`, `tools/check_docs.sh`
  while IFS= read -r ref; do
    check_path "$doc" "$ref"
  done < <(grep -o '`[^`]*`' "$doc" | tr -d '`')
  # 2) markdown link targets: [text](docs/TRACING.md)
  while IFS= read -r ref; do
    check_path "$doc" "$ref"
  done < <(grep -o '](/*[^)]*)' "$doc" | sed 's/^](//; s/)$//')
}

docs="README.md"
[ -d docs ] && docs="$docs $(ls docs/*.md 2>/dev/null)"
for doc in $docs; do
  [ -f "$doc" ] && scan_doc "$doc"
done

# Every kernel/support header under src/algos/ must be covered by the
# algorithm catalog so new workloads cannot land undocumented.
catalog="docs/ALGORITHMS.md"
if [ ! -f "$catalog" ]; then
  echo "check_docs: missing $catalog (algorithm catalog is mandatory)" >&2
  fail=1
else
  for hdr in src/algos/*.h; do
    base="$(basename "$hdr")"
    checked=$((checked + 1))
    if ! grep -q "$base" "$catalog"; then
      echo "check_docs: $catalog does not mention $hdr" >&2
      fail=1
    fi
  done
fi

# Every structured-event type (the `return "...";` lines between the
# EVENT-TYPES markers in src/obs/events.cc) and every HTTP introspection
# endpoint (the literals between the HTTP-ENDPOINTS markers in
# src/service/server.cc) must appear in the observability guide, so the
# wire vocabulary cannot drift from its documentation.
obs_doc="docs/OBSERVABILITY.md"
if [ ! -f "$obs_doc" ]; then
  echo "check_docs: missing $obs_doc (observability guide is mandatory)" >&2
  fail=1
else
  while IFS= read -r name; do
    [ -z "$name" ] && continue
    checked=$((checked + 1))
    if ! grep -q "$name" "$obs_doc"; then
      echo "check_docs: $obs_doc does not mention event type: $name" >&2
      fail=1
    fi
  done < <(sed -n '/EVENT-TYPES-BEGIN/,/EVENT-TYPES-END/p' \
               src/obs/events.cc |
           sed -n 's/.*return "\([^"]*\)";.*/\1/p')
  while IFS= read -r endpoint; do
    [ -z "$endpoint" ] && continue
    checked=$((checked + 1))
    if ! grep -q "$endpoint" "$obs_doc"; then
      echo "check_docs: $obs_doc does not mention endpoint: $endpoint" >&2
      fail=1
    fi
  done < <(sed -n '/HTTP-ENDPOINTS-BEGIN/,/HTTP-ENDPOINTS-END/p' \
               src/service/server.cc |
           sed -n 's/.*"\(\/[^"]*\)",.*/\1/p')
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK ($checked path references verified)"
