// Neighborhood analytics on a social-network-like graph: global triangle
// count and the local-clustering-coefficient distribution — the group2
// queries that motivate the paper's nested windowed streaming model.
//
// The interesting part: the same queries run under a deliberately tiny
// memory budget. A vertex-centric system would need sum(d_i^2) bytes of
// neighborhood messages; the NWSM engine recomputes q from Theorem 4.1,
// repartitions if needed, and streams the two-hop neighborhoods through
// fixed-size windows instead.

#include <cstdio>
#include <filesystem>

#include "algos/lcc.h"
#include "algos/triangle_counting.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "util/histogram.h"

int main() {
  using namespace tgpp;

  // A skewed "social" graph: undirected, deduplicated.
  RmatParams params;
  params.vertex_scale = 13;
  params.num_edges = 1 << 17;
  params.a = 0.6;
  params.b = 0.18;
  params.c = 0.16;
  params.seed = 7;
  EdgeList graph = GenerateRmat(params);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  std::printf("social graph: %llu members, %llu friendships\n",
              static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges() / 2));

  ClusterConfig config;
  config.num_machines = 4;
  config.memory_budget_bytes = 2ull << 20;  // 2 MB per machine — tiny!
  config.buffer_pool_frames = 8;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_triangles").string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(std::move(graph)));

  // Triangle counting: a 2-walk neighborhood query in full-list mode.
  auto tc = MakeTriangleCountingApp();
  auto tc_stats = system.RunQuery(tc);
  TGPP_CHECK(tc_stats.ok()) << tc_stats.status().ToString();
  std::printf("triangles: %llu (ran with q=%d under the 2 MB budget)\n",
              static_cast<unsigned long long>(tc_stats->aggregate_sum),
              tc_stats->q_used);

  // Local clustering coefficients: per-vertex triangle counting.
  auto lcc = MakeLccApp(system.partition());
  std::vector<LccAttr> coefficients;
  auto lcc_stats = system.RunQuery(lcc, &coefficients);
  TGPP_CHECK(lcc_stats.ok()) << lcc_stats.status().ToString();

  Histogram histogram;
  double sum = 0;
  uint64_t eligible = 0;
  for (const LccAttr& attr : coefficients) {
    if (attr.degree < 2) continue;
    histogram.Add(static_cast<uint64_t>(attr.lcc * 100));
    sum += attr.lcc;
    ++eligible;
  }
  std::printf("mean clustering coefficient: %.4f over %llu members\n",
              eligible > 0 ? sum / eligible : 0.0,
              static_cast<unsigned long long>(eligible));
  std::printf("lcc*100 distribution:\n%s", histogram.ToString().c_str());
  return 0;
}
