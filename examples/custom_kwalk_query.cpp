// Writing a custom k-walk neighborhood query against the public API:
// counting, for every vertex, how many distinct walk *endpoints* lie
// exactly two hops away under a partial-order constraint — a toy
// "friend-of-friend suggestion volume" metric.
//
// Shows the raw KWalkApp surface (paper Fig 6) without the prebuilt
// algorithm wrappers: adj_scatter per level, Mark/GetParentList, updates
// and the gather/apply pipeline.

#include <cstdio>
#include <filesystem>

#include "core/system.h"
#include "graph/rmat.h"

namespace {

struct FoafAttr {
  uint64_t suggestions;  // two-hop walk endpoints discovered
};

}  // namespace

int main() {
  using namespace tgpp;

  EdgeList graph = GenerateRmatX(14, 123);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);

  ClusterConfig config;
  config.num_machines = 4;
  config.memory_budget_bytes = 8ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_kwalk").string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(std::move(graph)));

  KWalkApp<FoafAttr, uint64_t> app;
  app.k = 2;                       // two-hop neighborhood query
  app.mode = AdjMode::kFull;       // need full lists at level 2
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = 1;

  app.init = [](VertexId, FoafAttr& attr) {
    attr.suggestions = 0;
    return true;  // every vertex enumerates its neighborhood
  };

  // Level 1: follow each edge (u, v) with u < v, marking v for level 2.
  app.adj_scatter[1] = [](ScatterContext<FoafAttr, uint64_t>& ctx,
                          VertexId u, const FoafAttr&,
                          std::span<const VertexId> adj) {
    for (VertexId v : adj) {
      if (ctx.CheckPartialOrder(u, v)) ctx.Mark(v);
    }
  };

  // Level 2: every walk (u, v, w) with w not adjacent to u is a
  // "suggestion" for u. GetParentList gives the walk prefix; GetAdjList
  // is u's full list, still resident in the level-1 window.
  app.adj_scatter[2] = [](ScatterContext<FoafAttr, uint64_t>& ctx,
                          VertexId v, const FoafAttr&,
                          std::span<const VertexId> adj) {
    for (VertexId u : ctx.GetParentList(v)) {
      const std::span<const VertexId> u_adj = ctx.GetAdjList(u);
      uint64_t fresh = 0;
      for (VertexId w : adj) {
        if (w == u) continue;
        // not already a direct neighbor of u?
        const bool known =
            std::binary_search(u_adj.begin(), u_adj.end(), w);
        if (!known) ++fresh;
      }
      if (fresh > 0) ctx.Update(u, fresh);
    }
  };

  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) { acc += in; };
  app.vertex_apply = [](VertexId, FoafAttr& attr, const uint64_t* upd) {
    attr.suggestions = upd != nullptr ? *upd : 0;
    return false;
  };

  std::vector<FoafAttr> results;
  auto stats = system.RunQuery(app, &results);
  TGPP_CHECK(stats.ok()) << stats.status().ToString();

  uint64_t total = 0, best_v = 0;
  for (VertexId v = 0; v < results.size(); ++v) {
    total += results[v].suggestions;
    if (results[v].suggestions > results[best_v].suggestions) best_v = v;
  }
  std::printf("two-hop suggestion volume: %llu total; max at v%llu "
              "(%llu suggestions); q=%d\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(best_v),
              static_cast<unsigned long long>(results[best_v].suggestions),
              stats->q_used);
  return 0;
}
