// Quickstart: generate a graph, spin up a simulated cluster, run
// PageRank on TurboGraph++, and print the top-ranked vertices.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "algos/pagerank.h"
#include "core/system.h"
#include "graph/rmat.h"

int main() {
  using namespace tgpp;

  // 1. A synthetic power-law graph: 2^12 vertices, 2^16 edges.
  EdgeList graph = GenerateRmatX(/*x=*/16, /*seed=*/42);
  std::printf("graph: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. A simulated 4-machine cluster, 16 MB memory budget per machine.
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.memory_budget_bytes = 16ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_quickstart").string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);

  // 3. Partition with BBP (degree-balanced placement + chunk grid).
  TGPP_CHECK_OK(system.LoadGraph(std::move(graph)));
  std::printf("BBP partitioning took %.3fs (p=%d, q=%d, r=%d)\n",
              system.last_partition_seconds(), system.partition()->p,
              system.partition()->q, system.partition()->r);

  // 4. Run 10 PageRank iterations through the NWSM engine.
  auto app = MakePageRankApp(system.partition(), /*iterations=*/10);
  std::vector<PageRankAttr> ranks;
  auto stats = system.RunQuery(app, &ranks);
  TGPP_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("PageRank: %d supersteps in %.3fs\n", stats->supersteps,
              stats->wall_seconds);

  // 5. Top five vertices by rank.
  std::vector<VertexId> order(ranks.size());
  for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return ranks[a].pr > ranks[b].pr;
                    });
  std::printf("top vertices by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%llu  pr=%.4f  out_degree=%llu\n",
                static_cast<unsigned long long>(order[i]),
                ranks[order[i]].pr,
                static_cast<unsigned long long>(ranks[order[i]].out_degree));
  }
  return 0;
}
