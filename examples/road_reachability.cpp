// Reachability analytics on a mesh-like network: single-source shortest
// paths (hop counts) and weakly connected components — the
// frontier-driven group1 queries.
//
// Demonstrates the engine's convergence loop (hundreds of supersteps on a
// high-diameter graph) and the chunk-level frontier skipping that keeps
// quiet supersteps cheap.

#include <cstdio>
#include <filesystem>
#include <map>

#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "util/rng.h"

int main() {
  using namespace tgpp;

  // A 128x64 grid with a few random shortcuts: high diameter, two extra
  // disconnected islands.
  const uint64_t width = 128, height = 64;
  EdgeList graph;
  graph.num_vertices = width * height + 64;  // + two 32-vertex islands
  auto at = [&](uint64_t x, uint64_t y) { return y * width + x; };
  for (uint64_t y = 0; y < height; ++y) {
    for (uint64_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        graph.edges.push_back({at(x, y), at(x + 1, y)});
      }
      if (y + 1 < height) {
        graph.edges.push_back({at(x, y), at(x, y + 1)});
      }
    }
  }
  Xoshiro256 rng(99);
  for (int i = 0; i < 32; ++i) {  // shortcuts
    graph.edges.push_back({rng.NextBounded(width * height),
                           rng.NextBounded(width * height)});
  }
  const uint64_t island = width * height;
  for (uint64_t i = 0; i + 1 < 32; ++i) {  // two chains off the grid
    graph.edges.push_back({island + i, island + i + 1});
    graph.edges.push_back({island + 32 + i, island + 32 + i + 1});
  }
  MakeUndirected(&graph);

  ClusterConfig config;
  config.num_machines = 3;
  config.memory_budget_bytes = 8ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_road").string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  TGPP_CHECK_OK(system.LoadGraph(std::move(graph)));

  // SSSP from the top-left corner.
  auto sssp = MakeSsspApp(system.partition(), /*source_old_id=*/0);
  std::vector<SsspAttr> dists;
  auto sssp_stats = system.RunQuery(sssp, &dists);
  TGPP_CHECK(sssp_stats.ok()) << sssp_stats.status().ToString();
  uint64_t reachable = 0, max_dist = 0;
  for (const SsspAttr& d : dists) {
    if (d.dist != kInfiniteDistance) {
      ++reachable;
      max_dist = std::max(max_dist, d.dist);
    }
  }
  std::printf("SSSP: %d supersteps; %llu reachable, eccentricity %llu, "
              "corner-to-corner %llu hops\n",
              sssp_stats->supersteps,
              static_cast<unsigned long long>(reachable),
              static_cast<unsigned long long>(max_dist),
              static_cast<unsigned long long>(
                  dists[at(width - 1, height - 1)].dist));

  // Connected components.
  auto wcc = MakeWccApp(system.partition());
  std::vector<WccAttr> labels;
  auto wcc_stats = system.RunQuery(wcc, &labels);
  TGPP_CHECK(wcc_stats.ok()) << wcc_stats.status().ToString();
  std::map<uint64_t, uint64_t> components;
  for (const WccAttr& l : labels) ++components[l.label];
  std::printf("WCC: %d supersteps; %zu components:",
              wcc_stats->supersteps, components.size());
  for (const auto& [label, size] : components) {
    std::printf(" {root v%llu: %llu vertices}",
                static_cast<unsigned long long>(label),
                static_cast<unsigned long long>(size));
  }
  std::printf("\n");
  return 0;
}
