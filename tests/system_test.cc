// TurboGraphSystem end-to-end behaviour: adaptive repartitioning
// (Algorithm 1 lines 1-4), graceful OOM, checkpoint/restore fault
// tolerance (paper A.3), and attribute readback mapping.

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/triangle_counting.h"
#include "core/system.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

ClusterConfig SystemCluster(const std::string& name,
                            uint64_t budget = 32ull << 20,
                            size_t frames = 16) {
  ClusterConfig config;
  config.num_machines = 2;
  config.memory_budget_bytes = budget;
  config.buffer_pool_frames = frames;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_system" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

TEST(System, AdaptiveRepartitioningKicksIn) {
  EdgeList graph = GenerateRmatX(17, 9);  // 2^13 vertices
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  // ~1 MB budget: LCC (k=2, 16B attrs) needs q > 1 on this graph.
  TurboGraphSystem system(
      SystemCluster("adaptive", /*budget=*/1ull << 20, /*frames=*/4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  EXPECT_EQ(system.partition()->q, 1);

  auto app = MakeLccApp(system.partition());
  auto stats = system.RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->q_used, 1);
  EXPECT_EQ(system.partition()->q, stats->q_used);
}

TEST(System, RepartitioningPreservesAnswers) {
  EdgeList graph = GenerateRmatX(14, 10);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  const uint64_t expected = ReferenceTriangleCount(graph);

  TurboGraphSystem tight(
      SystemCluster("repart_tight", /*budget=*/1ull << 20, /*frames=*/4));
  ASSERT_TRUE(tight.LoadGraph(graph).ok());
  auto app = MakeTriangleCountingApp();
  auto stats = tight.RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->aggregate_sum, expected);
}

TEST(System, HopelessBudgetFailsCleanly) {
  EdgeList graph = GenerateRmatX(14, 11);
  // 160 KB budget, 1 x 64 KB frame: below even the fixed window costs.
  TurboGraphSystem system(
      SystemCluster("hopeless", /*budget=*/160 << 10, /*frames=*/1));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  auto app = MakePageRankApp(system.partition(), 1);
  auto stats = system.RunQuery(app);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsOutOfMemory()) << stats.status().ToString();
}

TEST(System, ExplicitQIsRespectedWhenSufficient) {
  EdgeList graph = GenerateRmatX(13, 12);
  TurboGraphSystem system(SystemCluster("explicitq"));
  ASSERT_TRUE(
      system.LoadGraph(graph, PartitionScheme::kBbp, /*q=*/3).ok());
  auto app = MakePageRankApp(system.partition(), 2);
  auto stats = system.RunQuery(app);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->q_used, 3);  // no repartition needed, q kept
}

TEST(System, ReloadingReplacesPartition) {
  TurboGraphSystem system(SystemCluster("reload"));
  ASSERT_TRUE(system.LoadGraph(GenerateRmatX(12, 13)).ok());
  const uint64_t v1 = system.partition()->num_vertices;
  ASSERT_TRUE(system.LoadGraph(GenerateRmatX(13, 13)).ok());
  EXPECT_NE(system.partition()->num_vertices, v1);

  auto app = MakePageRankApp(system.partition(), 1);
  EXPECT_TRUE(system.RunQuery(app).ok());
}

TEST(System, CheckpointRestoreResumesExactly) {
  // Run 1 PR iteration, checkpoint, run 2 more, restore, run 2 again:
  // both 3-iteration results must match the reference exactly.
  const EdgeList graph = GenerateRmatX(13, 14);
  TurboGraphSystem system(SystemCluster("checkpoint"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  NwsmEngine<PageRankAttr, PageRankUpdate> engine(system.cluster(),
                                                  system.partition());
  auto app = MakePageRankApp(system.partition(), 1);
  app.max_supersteps = 1;
  ASSERT_TRUE(engine.Initialize(app).ok());
  ASSERT_TRUE(engine.Run(app).ok());                 // iteration 1
  ASSERT_TRUE(engine.Checkpoint("after1").ok());

  ASSERT_TRUE(engine.Run(app).ok());                 // iterations 2-3
  ASSERT_TRUE(engine.Run(app).ok());
  std::vector<PageRankAttr> first;
  ASSERT_TRUE(engine.ReadAttributes(&first).ok());

  ASSERT_TRUE(engine.Restore("after1").ok());        // roll back
  ASSERT_TRUE(engine.Run(app).ok());                 // redo 2-3
  ASSERT_TRUE(engine.Run(app).ok());
  std::vector<PageRankAttr> second;
  ASSERT_TRUE(engine.ReadAttributes(&second).ok());

  const std::vector<double> expected = ReferencePageRank(graph, 3);
  ASSERT_EQ(first.size(), second.size());
  for (VertexId v = 0; v < first.size(); ++v) {
    EXPECT_DOUBLE_EQ(first[v].pr, second[v].pr);
    EXPECT_NEAR(first[v].pr, expected[system.partition()->new_to_old[v]],
                1e-9);
  }
}

TEST(System, RestoreMissingCheckpointIsNotFound) {
  TurboGraphSystem system(SystemCluster("nockpt"));
  ASSERT_TRUE(system.LoadGraph(GenerateRmatX(12, 15)).ok());
  NwsmEngine<PageRankAttr, PageRankUpdate> engine(system.cluster(),
                                                  system.partition());
  EXPECT_TRUE(engine.Restore("never_created").IsNotFound());
}

TEST(System, AttributesMapBackToOriginalIds) {
  const EdgeList graph = GenerateRmatX(12, 16);
  TurboGraphSystem system(SystemCluster("mapping"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  auto app = MakePageRankApp(system.partition(), 1);
  std::vector<PageRankAttr> attrs;
  ASSERT_TRUE(system.RunQuery(app, &attrs).ok());
  // Degrees returned by old id must match the graph's real out-degrees.
  std::vector<uint64_t> degree(graph.num_vertices, 0);
  for (const Edge& e : graph.edges) ++degree[e.src];
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    EXPECT_EQ(attrs[v].out_degree, degree[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace tgpp
