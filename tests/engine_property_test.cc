// Property sweep: every query must match its reference implementation
// across cluster shapes (p), chunking granularities (q), partitioning
// schemes and graph seeds — including the q > 1 configurations that
// exercise the spill-to-disk global gather and multi-window scatter.

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

struct Shape {
  int machines;
  int q;
  PartitionScheme scheme;
  uint64_t seed;
};

std::string ShapeName(const ::testing::TestParamInfo<Shape>& info) {
  std::string s = PartitionSchemeName(info.param.scheme);
  for (char& c : s) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return "p" + std::to_string(info.param.machines) + "_q" +
         std::to_string(info.param.q) + "_" + s + "_s" +
         std::to_string(info.param.seed);
}

class EngineProperty : public ::testing::TestWithParam<Shape> {
 protected:
  std::unique_ptr<TurboGraphSystem> MakeSystem(const std::string& name,
                                               const EdgeList& graph) {
    const Shape& shape = GetParam();
    ClusterConfig config;
    config.num_machines = shape.machines;
    config.threads_per_machine = 2;
    config.memory_budget_bytes = 32ull << 20;
    config.buffer_pool_frames = 24;
    config.root_dir = (std::filesystem::temp_directory_path() /
                       "tgpp_prop" / (name + ShapeName({GetParam(), 0})))
                          .string();
    std::filesystem::remove_all(config.root_dir);
    auto system = std::make_unique<TurboGraphSystem>(config);
    TGPP_CHECK_OK(system->LoadGraph(graph, shape.scheme, shape.q));
    return system;
  }
};

TEST_P(EngineProperty, PageRank) {
  const EdgeList graph = GenerateRmatX(12, GetParam().seed);
  auto system = MakeSystem("pr", graph);
  auto app = MakePageRankApp(system->partition(), 4);
  std::vector<PageRankAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::vector<double> expected = ReferencePageRank(graph, 4);
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(attrs[v].pr, expected[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(EngineProperty, SsspAndWcc) {
  EdgeList graph = GenerateRmatX(11, GetParam().seed + 100);
  MakeUndirected(&graph);
  auto system = MakeSystem("sw", graph);

  auto sssp = MakeSsspApp(system->partition(), /*source_old_id=*/1);
  std::vector<SsspAttr> dists;
  auto sssp_stats = system->RunQuery(sssp, &dists);
  ASSERT_TRUE(sssp_stats.ok()) << sssp_stats.status().ToString();
  const std::vector<uint64_t> expected_dist = ReferenceSssp(graph, 1);
  for (VertexId v = 0; v < expected_dist.size(); ++v) {
    ASSERT_EQ(dists[v].dist, expected_dist[v]) << "vertex " << v;
  }

  auto wcc = MakeWccApp(system->partition());
  std::vector<WccAttr> labels;
  auto wcc_stats = system->RunQuery(wcc, &labels);
  ASSERT_TRUE(wcc_stats.ok()) << wcc_stats.status().ToString();
  const std::vector<uint64_t> expected_labels = ReferenceWcc(graph);
  for (VertexId v = 0; v < expected_labels.size(); ++v) {
    ASSERT_EQ(labels[v].label, expected_labels[v]) << "vertex " << v;
  }
}

TEST_P(EngineProperty, TriangleCountAndLcc) {
  EdgeList graph = GenerateRmatX(11, GetParam().seed + 200);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  auto system = MakeSystem("tclcc", graph);

  auto tc = MakeTriangleCountingApp();
  auto tc_stats = system->RunQuery(tc);
  ASSERT_TRUE(tc_stats.ok()) << tc_stats.status().ToString();
  EXPECT_EQ(tc_stats->aggregate_sum, ReferenceTriangleCount(graph));

  auto lcc = MakeLccApp(system->partition());
  std::vector<LccAttr> attrs;
  auto lcc_stats = system->RunQuery(lcc, &attrs);
  ASSERT_TRUE(lcc_stats.ok()) << lcc_stats.status().ToString();
  const std::vector<double> expected = ReferenceLcc(graph);
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(attrs[v].lcc, expected[v], 1e-12) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineProperty,
    ::testing::Values(Shape{1, 1, PartitionScheme::kBbp, 1},
                      Shape{2, 1, PartitionScheme::kBbp, 2},
                      Shape{4, 1, PartitionScheme::kBbp, 3},
                      Shape{4, 2, PartitionScheme::kBbp, 4},
                      Shape{3, 3, PartitionScheme::kBbp, 5},
                      Shape{2, 4, PartitionScheme::kBbp, 6},
                      Shape{4, 2, PartitionScheme::kRandom, 7},
                      Shape{3, 2, PartitionScheme::kHashPregel, 8}),
    ShapeName);

// Engine options must not change answers.
TEST(EngineOptionsProperty, AblationsPreserveResults) {
  EdgeList graph = GenerateRmatX(12, 321);
  ClusterConfig config;
  config.num_machines = 3;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_prop_opts").string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  const std::vector<double> expected = ReferencePageRank(graph, 3);
  for (EngineOptions options :
       {EngineOptions{}, EngineOptions{.in_memory_local_gather = false},
        EngineOptions{.in_memory_local_gather = true,
                      .read_ahead_pages = 1}}) {
    auto app = MakePageRankApp(system.partition(), 3);
    std::vector<PageRankAttr> attrs;
    auto stats = system.RunQuery(app, &attrs, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(attrs[v].pr, expected[v], 1e-9);
    }
  }
}

}  // namespace
}  // namespace tgpp
