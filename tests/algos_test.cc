// Algorithm-level tests on graphs with hand-checkable answers, plus the
// k=3 four-clique query (appendix A.6 generalization) against its
// reference.

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/clique4.h"
#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

EdgeList CompleteGraph(uint64_t n) {
  EdgeList g;
  g.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) g.edges.push_back({u, v});
    }
  }
  return g;
}

EdgeList CycleGraph(uint64_t n) {
  EdgeList g;
  g.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    g.edges.push_back({u, (u + 1) % n});
    g.edges.push_back({(u + 1) % n, u});
  }
  return g;
}

EdgeList StarGraph(uint64_t leaves) {
  EdgeList g;
  g.num_vertices = leaves + 1;
  for (VertexId v = 1; v <= leaves; ++v) {
    g.edges.push_back({0, v});
    g.edges.push_back({v, 0});
  }
  return g;
}

std::unique_ptr<TurboGraphSystem> MakeSystem(const std::string& name,
                                             const EdgeList& graph,
                                             int machines = 3) {
  ClusterConfig config;
  config.num_machines = machines;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_algos" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  auto system = std::make_unique<TurboGraphSystem>(config);
  TGPP_CHECK_OK(system->LoadGraph(graph));
  return system;
}

// --- reference implementations on known graphs ---

TEST(Reference, TrianglesOfCompleteGraphs) {
  EXPECT_EQ(ReferenceTriangleCount(CompleteGraph(3)), 1u);
  EXPECT_EQ(ReferenceTriangleCount(CompleteGraph(4)), 4u);   // C(4,3)
  EXPECT_EQ(ReferenceTriangleCount(CompleteGraph(6)), 20u);  // C(6,3)
  EXPECT_EQ(ReferenceTriangleCount(CycleGraph(8)), 0u);
  EXPECT_EQ(ReferenceTriangleCount(StarGraph(10)), 0u);
}

TEST(Reference, FourCliquesOfCompleteGraphs) {
  EXPECT_EQ(ReferenceFourCliqueCount(CompleteGraph(4)), 1u);
  EXPECT_EQ(ReferenceFourCliqueCount(CompleteGraph(5)), 5u);   // C(5,4)
  EXPECT_EQ(ReferenceFourCliqueCount(CompleteGraph(7)), 35u);  // C(7,4)
  EXPECT_EQ(ReferenceFourCliqueCount(CycleGraph(10)), 0u);
}

TEST(Reference, LccOfCompleteGraphIsOne) {
  const std::vector<double> lcc = ReferenceLcc(CompleteGraph(5));
  for (double v : lcc) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Reference, SsspOnCycle) {
  const std::vector<uint64_t> dist = ReferenceSssp(CycleGraph(10), 0);
  EXPECT_EQ(dist[5], 5u);   // antipode
  EXPECT_EQ(dist[9], 1u);   // neighbor the other way
}

// --- engine on known graphs ---

TEST(EngineKnownAnswers, TriangleCountOnK6) {
  auto system = MakeSystem("k6", CompleteGraph(6));
  auto app = MakeTriangleCountingApp();
  auto stats = system->RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->aggregate_sum, 20u);
}

TEST(EngineKnownAnswers, NoTrianglesOnCycle) {
  auto system = MakeSystem("cycle", CycleGraph(64));
  auto app = MakeTriangleCountingApp();
  auto stats = system->RunQuery(app);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->aggregate_sum, 0u);
}

TEST(EngineKnownAnswers, StarGraphDegreesAndPr) {
  const EdgeList star = StarGraph(20);
  auto system = MakeSystem("star", star);
  auto app = MakePageRankApp(system->partition(), 2);
  std::vector<PageRankAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok());
  // The hub must outrank every leaf.
  for (VertexId leaf = 1; leaf <= 20; ++leaf) {
    EXPECT_GT(attrs[0].pr, attrs[leaf].pr);
  }
}

TEST(EngineKnownAnswers, WccOnTwoIslands) {
  EdgeList g = CycleGraph(8);
  // Second island: vertices 8..15 in a cycle.
  g.num_vertices = 16;
  for (VertexId u = 8; u < 16; ++u) {
    const VertexId v = u + 1 == 16 ? 8 : u + 1;
    g.edges.push_back({u, v});
    g.edges.push_back({v, u});
  }
  auto system = MakeSystem("islands", g);
  auto app = MakeWccApp(system->partition());
  std::vector<WccAttr> labels;
  auto stats = system->RunQuery(app, &labels);
  ASSERT_TRUE(stats.ok());
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(labels[v].label, 0u);
  for (VertexId v = 8; v < 16; ++v) EXPECT_EQ(labels[v].label, 8u);
}

// --- the k=3 query ---

TEST(FourClique, MatchesReferenceOnK5) {
  auto system = MakeSystem("4c_k5", CompleteGraph(5));
  auto app = MakeFourCliqueApp();
  auto stats = system->RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->aggregate_sum, 5u);
}

TEST(FourClique, MatchesReferenceOnRmat) {
  EdgeList graph = GenerateRmatX(10, 404);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  const uint64_t expected = ReferenceFourCliqueCount(graph);
  ASSERT_GT(expected, 0u) << "test graph should contain 4-cliques";

  auto system = MakeSystem("4c_rmat", graph);
  auto app = MakeFourCliqueApp();
  auto stats = system->RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->aggregate_sum, expected);
}

TEST(FourClique, MatchesReferenceAcrossShapes) {
  EdgeList graph = GenerateRmatX(9, 405);
  DeduplicateEdges(&graph);
  MakeUndirected(&graph);
  const uint64_t expected = ReferenceFourCliqueCount(graph);
  for (int machines : {1, 2, 4}) {
    auto system = MakeSystem("4c_p" + std::to_string(machines), graph,
                             machines);
    auto app = MakeFourCliqueApp();
    auto stats = system->RunQuery(app);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->aggregate_sum, expected) << "p=" << machines;
  }
}

TEST(FourClique, ZeroOnTriangleFreeGraph) {
  auto system = MakeSystem("4c_cycle", CycleGraph(32));
  auto app = MakeFourCliqueApp();
  auto stats = system->RunQuery(app);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->aggregate_sum, 0u);
}

}  // namespace
}  // namespace tgpp
