// Metrics layer (obs/): instrument semantics, registry registration rules,
// concurrent updates, Prometheus/JSONL exporters, and agreement with both
// the legacy ClusterSnapshot view and the fault injector's own counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "net/fabric.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace tgpp {
namespace {

// --- instruments -----------------------------------------------------------

TEST(Instruments, CounterGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.Set(7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Instruments, LatencyHistogramQuantilesMatchSnapshot) {
  obs::LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.Record(100);     // bucket [64, 128)
  for (int i = 0; i < 100; ++i) h.Record(100000);  // bucket [2^16, 2^17)
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 900u * 100 + 100u * 100000);

  // p50 falls in the small mode's bucket, p99 in the large mode's.
  EXPECT_GE(h.Quantile(0.5), 64u);
  EXPECT_LT(h.Quantile(0.5), 128u);
  EXPECT_GE(h.Quantile(0.99), 1u << 16);
  EXPECT_LT(h.Quantile(0.99), 1u << 17);

  // The Histogram snapshot replays the same buckets, so its quantile
  // estimates agree with the lock-free histogram's (modulo the snapshot's
  // clamp to its own observed extrema, which are bucket lower bounds).
  Histogram snap = h.SnapshotHistogram();
  EXPECT_EQ(snap.count(), h.count());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(snap.Quantile(q),
              std::clamp(h.Quantile(q), snap.min(), snap.max()))
        << "q=" << q;
  }

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(Instruments, ConcurrentUpdatesFromManyThreadsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  obs::Counter counter;
  obs::Gauge gauge;
  obs::LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(2);
        gauge.Add(1);
        hist.Record(static_cast<uint64_t>(i) & 0xff);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 2ull * kThreads * kIters);
  EXPECT_EQ(gauge.value(), int64_t{kThreads} * kIters);
  EXPECT_EQ(hist.count(), uint64_t{kThreads} * kIters);
  // Every recorded value landed in exactly one bucket.
  EXPECT_EQ(hist.SnapshotHistogram().count(), uint64_t{kThreads} * kIters);
}

// --- registry --------------------------------------------------------------

TEST(Registry, RegisterVisitAndOrdering) {
  obs::Registry registry;
  obs::Counter c0, c1;
  obs::Gauge g;
  obs::LatencyHistogram h;
  c0.Add(10);
  c1.Add(20);
  g.Set(-4);

  auto r1 = registry.Register("b.counter", 1, &c1);
  auto r2 = registry.Register("b.counter", 0, &c0);
  auto r3 = registry.Register("a.gauge", -1, &g);
  auto r4 = registry.Register("c.hist", 2, &h);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok() && r4.ok());
  EXPECT_EQ(registry.size(), 4u);

  std::vector<std::pair<std::string, int>> seen;
  registry.Visit([&](const obs::InstrumentInfo& info) {
    seen.emplace_back(info.name, info.machine);
    if (info.name == "b.counter" && info.machine == 0) {
      ASSERT_EQ(info.kind, obs::Kind::kCounter);
      EXPECT_EQ(info.counter->value(), 10u);
    }
    if (info.name == "a.gauge") {
      ASSERT_EQ(info.kind, obs::Kind::kGauge);
      EXPECT_EQ(info.gauge->value(), -4);
    }
  });
  const std::vector<std::pair<std::string, int>> expected = {
      {"a.gauge", -1}, {"b.counter", 0}, {"b.counter", 1}, {"c.hist", 2}};
  EXPECT_EQ(seen, expected);
}

TEST(Registry, DuplicateNameMachineIsRejected) {
  obs::Registry registry;
  obs::Counter a, b;
  auto first = registry.Register("dup.name", 3, &a);
  ASSERT_TRUE(first.ok());

  auto second = registry.Register("dup.name", 3, &b);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);

  // Same name on a different machine is a different series.
  auto other_machine = registry.Register("dup.name", 4, &b);
  EXPECT_TRUE(other_machine.ok());

  // Destroying the first registration frees the slot.
  *first = obs::Registration();
  auto again = registry.Register("dup.name", 3, &b);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, RegistrationUnregistersOnDestruction) {
  obs::Registry registry;
  obs::Counter c;
  {
    auto reg = registry.Register("scoped.counter", 0, &c);
    ASSERT_TRUE(reg.ok());
    EXPECT_EQ(registry.size(), 1u);

    // Moving keeps exactly one live handle.
    obs::Registration moved = std::move(*reg);
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, ResetAllZeroesEveryInstrument) {
  obs::Registry registry;
  obs::Counter c;
  obs::Gauge g;
  obs::LatencyHistogram h;
  c.Add(5);
  g.Set(6);
  h.Record(7);
  auto r1 = registry.Register("x.c", 0, &c);
  auto r2 = registry.Register("x.g", 0, &g);
  auto r3 = registry.Register("x.h", 0, &h);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

// --- exporters -------------------------------------------------------------

TEST(Export, PrometheusNameMangling) {
  EXPECT_EQ(obs::PrometheusName("disk.read_bytes"), "tgpp_disk_read_bytes");
  EXPECT_EQ(obs::PrometheusName("a-b.c/d"), "tgpp_a_b_c_d");
}

TEST(Export, PrometheusGoldenOutput) {
  obs::Registry registry;
  obs::Counter reads0, reads1;
  obs::Gauge resident;
  obs::LatencyHistogram latency;
  reads0.Add(123);
  reads1.Add(456);
  resident.Set(-5);
  for (int i = 0; i < 4; ++i) latency.Record(1);  // bucket [1, 2)

  auto r1 = registry.Register("disk.read_bytes", 0, &reads0);
  auto r2 = registry.Register("disk.read_bytes", 1, &reads1);
  auto r3 = registry.Register("pool.resident", -1, &resident);
  auto r4 = registry.Register("op.latency_ns", -1, &latency);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok() && r4.ok());

  const std::string expected =
      "# TYPE tgpp_disk_read_bytes counter\n"
      "tgpp_disk_read_bytes{machine=\"0\"} 123\n"
      "tgpp_disk_read_bytes{machine=\"1\"} 456\n"
      "# TYPE tgpp_op_latency_ns summary\n"
      "tgpp_op_latency_ns{quantile=\"0.5\"} 1\n"
      "tgpp_op_latency_ns{quantile=\"0.95\"} 1\n"
      "tgpp_op_latency_ns{quantile=\"0.99\"} 1\n"
      "tgpp_op_latency_ns_sum 4\n"
      "tgpp_op_latency_ns_count 4\n"
      "# TYPE tgpp_pool_resident gauge\n"
      "tgpp_pool_resident -5\n";
  EXPECT_EQ(obs::RenderPrometheus(registry), expected);
}

TEST(Export, WritePrometheusFileIsAtomic) {
  obs::Registry registry;
  obs::Counter c;
  c.Add(9);
  auto reg = registry.Register("file.counter", 0, &c);
  ASSERT_TRUE(reg.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "tgpp_metrics_test.prom")
          .string();
  std::filesystem::remove(path);
  ASSERT_TRUE(obs::WritePrometheusFile(registry, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n),
            "# TYPE tgpp_file_counter counter\n"
            "tgpp_file_counter{machine=\"0\"} 9\n");
  std::filesystem::remove(path);
}

TEST(Export, SuperstepRowJsonAndProgressLine) {
  obs::SuperstepRow row;
  row.superstep = 2;
  row.active_vertices = 100;
  row.updates_generated = 400;
  row.updates_sent = 300;
  row.updates_spilled = 5;
  row.disk_bytes = 4096;
  row.net_bytes = 2048;
  row.buffer_hit_rate = 0.5;
  row.superstep_seconds = 0.25;
  row.elapsed_seconds = 1.5;

  const std::string json = row.ToJson();
  EXPECT_NE(json.find("\"type\":\"superstep\""), std::string::npos);
  EXPECT_NE(json.find("\"superstep\":2"), std::string::npos);
  EXPECT_NE(json.find("\"active_vertices\":100"), std::string::npos);
  EXPECT_NE(json.find("\"updates_sent\":300"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string line = row.ToProgressLine();
  EXPECT_NE(line.find("superstep   2"), std::string::npos);
  EXPECT_NE(line.find("hit  50.0%"), std::string::npos);
}

// Validates Prometheus text exposition line shape: every non-comment line
// must parse as `name{labels} value`.
void ExpectValidPrometheus(const std::string& text) {
  const std::regex type_re(
      R"(# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|summary))");
  const std::regex sample_re(
      R"([a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)");
  size_t start = 0;
  int samples = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0);
}

// --- end to end ------------------------------------------------------------

ClusterConfig SmallCluster(const std::string& name) {
  ClusterConfig config;
  config.num_machines = 2;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_metrics" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

TEST(EndToEnd, RegistryAgreesWithClusterSnapshotExactly) {
  fault::Disarm();
  const EdgeList graph = GenerateRmatX(12, 31);
  TurboGraphSystem system(SmallCluster("snapshot"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  system.cluster()->ResetCountersAndCaches();

  auto app = MakePageRankApp(system.partition(), /*iterations=*/3);
  auto stats = system.RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  uint64_t disk_bytes = 0;
  uint64_t net_bytes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  obs::Registry::Global().Visit([&](const obs::InstrumentInfo& info) {
    if (info.name == "disk.read_bytes" || info.name == "disk.write_bytes") {
      disk_bytes += info.counter->value();
    } else if (info.name == "fabric.bytes_sent") {
      net_bytes += info.counter->value();
    } else if (info.name == "bufferpool.hits") {
      pool_hits += info.counter->value();
    } else if (info.name == "bufferpool.misses") {
      pool_misses += info.counter->value();
    }
  });

  const ClusterSnapshot snap = system.cluster()->Snapshot();
  EXPECT_GT(snap.disk_bytes, 0u);
  EXPECT_GT(snap.net_bytes, 0u);
  EXPECT_EQ(disk_bytes, snap.disk_bytes);
  EXPECT_EQ(net_bytes, snap.net_bytes);
  ASSERT_GT(pool_hits + pool_misses, 0u);
  EXPECT_DOUBLE_EQ(system.cluster()->BufferPoolHitRate(),
                   static_cast<double>(pool_hits) /
                       static_cast<double>(pool_hits + pool_misses));

  // The live registry renders as valid Prometheus exposition.
  ExpectValidPrometheus(obs::RenderPrometheus(obs::Registry::Global()));
}

TEST(EndToEnd, SuperstepObserverEmitsOneRowPerSuperstep) {
  fault::Disarm();
  const EdgeList graph = GenerateRmatX(12, 32);
  TurboGraphSystem system(SmallCluster("observer"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  system.cluster()->ResetCountersAndCaches();

  std::vector<obs::SuperstepRow> rows;
  EngineOptions options;
  options.superstep_observer = [&rows](const obs::SuperstepRow& row) {
    rows.push_back(row);
  };
  auto app = MakePageRankApp(system.partition(), /*iterations=*/4);
  auto stats = system.RunQuery(app, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  ASSERT_EQ(static_cast<int>(rows.size()), stats->supersteps);
  uint64_t generated = 0;
  double prev_elapsed = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].superstep, static_cast<int>(i));
    EXPECT_GE(rows[i].elapsed_seconds, prev_elapsed);
    prev_elapsed = rows[i].elapsed_seconds;
    generated += rows[i].updates_generated;
  }

  // The per-superstep deltas add up to the engine's cumulative counters
  // (counters were zeroed right before the run).
  uint64_t total = 0;
  for (int m = 0; m < system.cluster()->num_machines(); ++m) {
    total += system.cluster()->machine(m)->metrics()->updates_generated
                 .value();
  }
  EXPECT_EQ(generated, total);
  EXPECT_GT(generated, 0u);
}

// --- chaos integration -----------------------------------------------------

class MetricsChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(MetricsChaosTest, DiskCountersMatchInjector) {
  fault::Disarm();
  ASSERT_TRUE(fault::Configure("disk.read:io_error@p=0.05", 5).ok());

  const EdgeList graph = GenerateRmatX(12, 33);
  TurboGraphSystem system(SmallCluster("disk_chaos"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  auto app = MakePageRankApp(system.partition(), /*iterations=*/3);
  auto stats = system.RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Every firing of the disk.read rule was counted by exactly one
  // device's injected_faults instrument, and surfaced as a retry.
  uint64_t injected = 0;
  uint64_t retries = 0;
  uint64_t accessor_retries = 0;
  obs::Registry::Global().Visit([&](const obs::InstrumentInfo& info) {
    if (info.name == "disk.injected_faults") {
      injected += info.counter->value();
    } else if (info.name == "disk.retries") {
      retries += info.counter->value();
    }
  });
  for (int m = 0; m < system.cluster()->num_machines(); ++m) {
    accessor_retries += system.cluster()->machine(m)->disk()->io_retries();
  }
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(injected, fault::InjectedCount());
  EXPECT_GT(retries, 0u);
  EXPECT_EQ(retries, accessor_retries);
}

TEST_F(MetricsChaosTest, FabricDropCounterMatchesInjector) {
  fault::Disarm();
  ASSERT_TRUE(fault::Configure("fabric.send:drop@p=0.5", 6).ok());

  Fabric fabric(2, kInfinibandQdr);
  std::vector<obs::Registration> regs;
  fabric.RegisterMetrics(&obs::Registry::Global(), &regs);

  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    fabric.Send(0, 1, /*tag=*/0, std::vector<uint8_t>(8, 0x5a));
  }
  int received = 0;
  Message msg;
  while (fabric.TryRecv(1, 0, &msg)) ++received;

  EXPECT_GT(fabric.messages_dropped(), 0u);
  EXPECT_EQ(fabric.messages_dropped(), fault::InjectedCount());
  EXPECT_EQ(received + static_cast<int>(fabric.messages_dropped()),
            kMessages);

  // The registry sees the same drop count as the object accessor.
  uint64_t registry_drops = 0;
  obs::Registry::Global().Visit([&](const obs::InstrumentInfo& info) {
    if (info.name == "fabric.drops") registry_drops += info.counter->value();
  });
  EXPECT_EQ(registry_drops, fabric.messages_dropped());
}

}  // namespace
}  // namespace tgpp
