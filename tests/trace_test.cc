// Tests for the execution tracer (util/trace.h): disabled-mode inertness,
// span nesting, lock-free concurrent recording, ring overflow accounting,
// and Chrome-trace JSON export.

#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tgpp::trace {
namespace {

// Each test owns the process-global tracer state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

// --- a minimal JSON validity checker (no third-party parser available) ---

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- tests ------------------------------------------------------------------

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Enabled());
  {
    TraceSpan span("outer", "test");
    span.AddArg("k", 1);
    Instant("ping", "test");
  }
  Complete("late", "test", 0);
  EXPECT_EQ(Stats().recorded, 0u);
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(TraceTest, SpanDisabledAtConstructionStaysInert) {
  {
    TraceSpan span("outer", "test");
    SetEnabled(true);  // mid-scope enable must not produce a torn span
  }
  EXPECT_EQ(Stats().recorded, 0u);
}

TEST_F(TraceTest, SpansNestCorrectly) {
  SetEnabled(true);
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
      Instant("tick", "test");
    }
  }
  const std::vector<TraceEvent> events = Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by begin time with the enclosing span first.
  EXPECT_STREQ(events[0].name, "outer");
  ASSERT_TRUE(events[0].is_span());
  const TraceEvent* inner = nullptr;
  const TraceEvent* tick = nullptr;
  for (const TraceEvent& ev : events) {
    if (std::string(ev.name) == "inner") inner = &ev;
    if (std::string(ev.name) == "tick") tick = &ev;
  }
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  ASSERT_TRUE(inner->is_span());
  EXPECT_FALSE(tick->is_span());
  // inner ⊆ outer, tick ∈ inner.
  EXPECT_GE(inner->ts_nanos, events[0].ts_nanos);
  EXPECT_LE(inner->ts_nanos + inner->dur_nanos,
            events[0].ts_nanos + events[0].dur_nanos);
  EXPECT_GE(tick->ts_nanos, inner->ts_nanos);
  EXPECT_LE(tick->ts_nanos, inner->ts_nanos + inner->dur_nanos);
}

TEST_F(TraceTest, ConcurrentThreadsProduceUncorruptedRecords) {
  SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  static const char* kNames[kThreads] = {"t0", "t1", "t2", "t3",
                                         "t4", "t5", "t6", "t7"};
  // Hold all threads at a start line so they are alive simultaneously and
  // therefore own distinct rings (the free list only recycles rings of
  // exited threads).
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ready, &go] {
      SetCurrentMachine(t);
      // Record one event before the start line: rings are acquired at
      // first record, and holding one here (while every thread is still
      // alive) guarantees the 8 threads own 8 distinct rings.
      Instant(kNames[t], "test", "thread", static_cast<uint64_t>(t), "seq",
              0);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 1; i < kEventsPerThread; ++i) {
        Instant(kNames[t], "test", "thread", static_cast<uint64_t>(t), "seq",
                static_cast<uint64_t>(i));
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& t : threads) t.join();

  const std::vector<TraceEvent> events = Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kEventsPerThread);
  // Per machine id: every record internally consistent, sequence complete.
  std::vector<std::vector<uint64_t>> seqs(kThreads);
  std::vector<int> tid_of_machine(kThreads, -1);
  for (const TraceEvent& ev : events) {
    ASSERT_GE(ev.machine, 0);
    ASSERT_LT(ev.machine, kThreads);
    EXPECT_STREQ(ev.name, kNames[ev.machine]);
    EXPECT_EQ(ev.arg_value0, static_cast<uint64_t>(ev.machine));
    if (tid_of_machine[ev.machine] < 0) {
      tid_of_machine[ev.machine] = ev.tid;
    } else {
      EXPECT_EQ(tid_of_machine[ev.machine], ev.tid);
    }
    seqs[ev.machine].push_back(ev.arg_value1);
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(seqs[t].size(), static_cast<size_t>(kEventsPerThread));
    std::sort(seqs[t].begin(), seqs[t].end());
    for (int i = 0; i < kEventsPerThread; ++i) {
      ASSERT_EQ(seqs[t][i], static_cast<uint64_t>(i));
    }
    // Distinct threads must not share a ring.
    for (int u = 0; u < t; ++u) {
      EXPECT_NE(tid_of_machine[t], tid_of_machine[u]);
    }
  }
  EXPECT_EQ(Stats().dropped, 0u);
}

TEST_F(TraceTest, RingOverflowDropsOldestOnly) {
  SetEnabled(true);
  constexpr uint64_t kTotal = 40000;  // > per-thread ring capacity
  std::thread writer([] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      Instant("ov", "test", "seq", i);
    }
  });
  writer.join();
  const TraceStats stats = Stats();
  EXPECT_EQ(stats.recorded, kTotal);
  ASSERT_GT(stats.dropped, 0u);
  ASSERT_LT(stats.dropped, kTotal);
  const std::vector<TraceEvent> events = Snapshot();
  ASSERT_EQ(events.size(), kTotal - stats.dropped);
  // The survivors are exactly the newest `kept` events.
  uint64_t min_seq = kTotal, max_seq = 0;
  for (const TraceEvent& ev : events) {
    min_seq = std::min(min_seq, ev.arg_value0);
    max_seq = std::max(max_seq, ev.arg_value0);
  }
  EXPECT_EQ(max_seq, kTotal - 1);
  EXPECT_EQ(min_seq, stats.dropped);
}

TEST_F(TraceTest, ExportedJsonParsesAndRoundTripsEventCounts) {
  SetEnabled(true);
  SetCurrentMachine(2);
  SetCurrentThreadName("test.exporter");
  {
    TraceSpan a("alpha", "test");
    a.AddArg("bytes", 123);
    { TraceSpan b("beta", "test"); }
    { TraceSpan c("gamma", "test"); }
  }
  Instant("one", "test", "v", 7);
  Instant("two", "test");
  SetEnabled(false);

  const std::string json = ToChromeTraceJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 2u);
  // Machine tagging: everything recorded above renders under pid 2.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"machine 2\""), 1u);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("test.exporter"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":123"), std::string::npos);

  // Round-trip through a file.
  const std::string path = ::testing::TempDir() + "/tgpp_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string from_disk;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    from_disk.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(from_disk, json);
}

TEST_F(TraceTest, ResetClearsEvents) {
  SetEnabled(true);
  Instant("gone", "test");
  ASSERT_EQ(Stats().recorded, 1u);
  Reset();
  EXPECT_EQ(Stats().recorded, 0u);
  EXPECT_TRUE(Snapshot().empty());
}

}  // namespace
}  // namespace tgpp::trace
