// Fabric (simulated interconnect) and Cluster runtime behaviour.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault_injector.h"
#include "net/fabric.h"
#include "util/trace.h"

namespace tgpp {
namespace {

// --- Fabric ---

TEST(Fabric, DeliversFifoPerTag) {
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, /*tag=*/0, {1});
  fabric.Send(0, 1, /*tag=*/0, {2});
  fabric.Send(0, 1, /*tag=*/1, {9});
  Message msg;
  ASSERT_TRUE(fabric.Recv(1, 0, &msg));
  EXPECT_EQ(msg.payload[0], 1);
  EXPECT_EQ(msg.src, 0);
  ASSERT_TRUE(fabric.Recv(1, 0, &msg));
  EXPECT_EQ(msg.payload[0], 2);
  ASSERT_TRUE(fabric.Recv(1, 1, &msg));
  EXPECT_EQ(msg.payload[0], 9);
}

TEST(Fabric, TryRecvDoesNotBlock) {
  Fabric fabric(2, kInfinibandQdr);
  Message msg;
  EXPECT_FALSE(fabric.TryRecv(0, 0, &msg));
  fabric.Send(1, 0, 0, {7});
  EXPECT_TRUE(fabric.TryRecv(0, 0, &msg));
  EXPECT_EQ(msg.payload[0], 7);
}

TEST(Fabric, TryRecvRecordsDeliveryTrace) {
  // All three receive paths share DeliverLocked, so the non-blocking one
  // must record the same `fabric.recv` instant the blocking ones do.
  trace::Reset();
  trace::SetEnabled(true);
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {5});
  Message msg;
  ASSERT_TRUE(fabric.TryRecv(1, 0, &msg));
  trace::SetEnabled(false);
  int recv_instants = 0;
  for (const auto& ev : trace::Snapshot()) {
    if (std::string_view(ev.name) == "fabric.recv") ++recv_instants;
  }
  EXPECT_EQ(recv_instants, 1);
  trace::Reset();
}

TEST(Fabric, CountsRemoteBytesOnly) {
  Fabric fabric(3, kInfinibandQdr);
  fabric.Send(0, 0, 0, std::vector<uint8_t>(100));  // loopback: free
  EXPECT_EQ(fabric.bytes_sent(), 0u);
  fabric.Send(0, 1, 0, std::vector<uint8_t>(100));
  EXPECT_EQ(fabric.bytes_sent(), 100 + Fabric::kHeaderBytes);
  EXPECT_EQ(fabric.messages_sent(), 1u);
  EXPECT_GT(fabric.ModeledIoSeconds(), 0.0);
}

TEST(Fabric, BlockingRecvWakesOnSend) {
  Fabric fabric(2, kInfinibandQdr);
  Message msg;
  std::thread sender([&fabric] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.Send(0, 1, 0, {42});
  });
  ASSERT_TRUE(fabric.Recv(1, 0, &msg));
  EXPECT_EQ(msg.payload[0], 42);
  sender.join();
}

TEST(Fabric, ShutdownDrainsThenFails) {
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {5});
  fabric.Shutdown();
  Message msg;
  EXPECT_TRUE(fabric.Recv(1, 0, &msg));   // drains the queued message
  EXPECT_FALSE(fabric.Recv(1, 0, &msg));  // then reports shutdown
  fabric.Reset();
  fabric.Send(0, 1, 0, {6});
  EXPECT_TRUE(fabric.Recv(1, 0, &msg));
}

TEST(Fabric, ConcurrentSendersAllDeliver) {
  Fabric fabric(4, kInfinibandQdr);
  std::vector<std::thread> senders;
  for (int s = 0; s < 3; ++s) {
    senders.emplace_back([&fabric, s] {
      for (int i = 0; i < 50; ++i) {
        fabric.Send(s, 3, 0, {static_cast<uint8_t>(s)});
      }
    });
  }
  for (auto& t : senders) t.join();
  int received = 0;
  Message msg;
  while (fabric.TryRecv(3, 0, &msg)) ++received;
  EXPECT_EQ(received, 150);
}

// --- Fabric::RecvFor (deadline-based receive) ---

TEST(FabricRecvFor, ReturnsQueuedMessageImmediately) {
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {3});
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 3);
}

TEST(FabricRecvFor, TimesOutAndLateMessageIsNotLost) {
  Fabric fabric(2, kInfinibandQdr);
  Message msg;
  Status s = fabric.RecvFor(1, 0, &msg, 50);
  EXPECT_TRUE(s.IsTimeout()) << s.ToString();
  // The timed-out receiver consumed nothing: a message that arrives
  // after the deadline is delivered to the next receive.
  fabric.Send(0, 1, 0, {9});
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 9);
}

TEST(FabricRecvFor, WakesOnSendBeforeDeadline) {
  Fabric fabric(2, kInfinibandQdr);
  std::thread sender([&fabric] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.Send(0, 1, 0, {42});
  });
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 10000).ok());
  EXPECT_EQ(msg.payload[0], 42);
  sender.join();
}

TEST(FabricRecvFor, NonPositiveTimeoutWaitsForever) {
  Fabric fabric(2, kInfinibandQdr);
  std::thread sender([&fabric] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.Send(0, 1, 0, {1});
  });
  Message msg;
  EXPECT_TRUE(fabric.RecvFor(1, 0, &msg, 0).ok());
  sender.join();
}

TEST(FabricRecvFor, ShutdownDrainsThenAborts) {
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {5});
  fabric.Shutdown();
  Message msg;
  EXPECT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());  // drains
  Status s = fabric.RecvFor(1, 0, &msg, 1000);
  EXPECT_EQ(s.code(), StatusCode::kAborted) << s.ToString();
}

TEST(FabricRecvFor, ShutdownWakesBlockedReceiversPromptly) {
  Fabric fabric(4, kInfinibandQdr);
  // Receivers parked well inside their deadline must be released by a
  // concurrent Shutdown() with kAborted, and Reset() re-arms the fabric.
  std::vector<std::thread> receivers;
  std::atomic<int> aborted{0};
  for (int m = 1; m < 4; ++m) {
    receivers.emplace_back([&fabric, &aborted, m] {
      Message msg;
      Status s = fabric.RecvFor(m, 0, &msg, 60000);
      if (s.code() == StatusCode::kAborted) aborted.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fabric.Shutdown();
  for (auto& t : receivers) t.join();
  EXPECT_EQ(aborted.load(), 3);

  fabric.Reset();
  fabric.Send(0, 1, 0, {8});
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 8);
}

// --- Heartbeat failure detection ---

TEST(FabricHeartbeat, LostMachineDetectedWithinTimeout) {
  Fabric fabric(2, kInfinibandQdr);
  HeartbeatOptions hb;
  hb.interval_ms = 5;
  hb.timeout_ms = 50;
  fabric.StartHeartbeats(hb);
  EXPECT_TRUE(fabric.HeartbeatsRunning());
  EXPECT_EQ(fabric.FirstLostMachine(), -1);

  fabric.SetMachineDown(1);
  const auto t0 = std::chrono::steady_clock::now();
  while (fabric.FirstLostMachine() < 0 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(fabric.FirstLostMachine(), 1);
  // Verdict no earlier than the timeout, no later than timeout + one
  // monitor interval (plus scheduling slack).
  EXPECT_GE(elapsed, 0.04);
  EXPECT_LE(elapsed, 2.0);
  EXPECT_GT(fabric.heartbeat_misses(), 0u);

  // A receive with nothing deliverable fails fast with MachineLost
  // instead of burning its whole deadline.
  Message msg;
  Status s = fabric.RecvFor(0, 0, &msg, 10000);
  EXPECT_TRUE(s.IsMachineLost()) << s.ToString();
  EXPECT_EQ(s.machine_id(), 1);

  fabric.SetMachineUp(1);
  EXPECT_EQ(fabric.FirstLostMachine(), -1);
  fabric.StopHeartbeats();
  EXPECT_FALSE(fabric.HeartbeatsRunning());
}

TEST(FabricHeartbeat, SendsToDownMachineCountSeparatelyFromDrops) {
  Fabric fabric(2, kInfinibandQdr);
  fabric.SetMachineDown(1);
  fabric.Send(0, 1, 0, {1});
  EXPECT_EQ(fabric.down_drops(), 1u);
  EXPECT_EQ(fabric.messages_dropped(), 0u);  // injected-drop counter pure
  EXPECT_EQ(fabric.bytes_sent(), 0u);        // never reached the wire
  // Reset restores every machine: the send goes through again.
  fabric.Reset();
  EXPECT_TRUE(fabric.MachineUp(1));
  fabric.Send(0, 1, 0, {2});
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 2);
}

// --- Fabric fault injection ---

class FabricFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(FabricFaultTest, RecvForDeadlineHonoredDuringInjectedDelay) {
  // Regression: an injected send delay used to sleep the *sender*; now it
  // stamps the message's delivery time, so Send returns immediately and a
  // receiver whose deadline expires mid-delay times out promptly instead
  // of waiting out the whole delay.
  ASSERT_TRUE(fault::Configure("fabric.send:delay@ms=500").ok());
  Fabric fabric(2, kInfinibandQdr);
  const auto t0 = std::chrono::steady_clock::now();
  fabric.Send(0, 1, 0, {6});
  const double send_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(send_seconds, 0.25) << "sender slept through the delay";

  Message msg;
  Status s = fabric.RecvFor(1, 0, &msg, 50);
  const double recv_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(s.IsTimeout()) << s.ToString();
  EXPECT_LT(recv_seconds, 0.45) << "deadline ignored during the delay";

  // The delayed message is not lost: a patient receive delivers it once
  // its delivery time arrives.
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 10000).ok());
  EXPECT_EQ(msg.payload[0], 6);
  EXPECT_GE(std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count(),
            0.45);
}

TEST_F(FabricFaultTest, DropLosesTheMessageAndCounts) {
  ASSERT_TRUE(fault::Configure("fabric.send:drop@n=1").ok());
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {1});  // dropped
  fabric.Send(0, 1, 0, {2});
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 2);
  EXPECT_EQ(fabric.messages_dropped(), 1u);
}

TEST_F(FabricFaultTest, DuplicateDeliversTwiceAndCounts) {
  ASSERT_TRUE(fault::Configure("fabric.send:dup@n=1").ok());
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(0, 1, 0, {7});
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 7);
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 7);
  EXPECT_EQ(fabric.messages_duplicated(), 1u);
}

TEST_F(FabricFaultTest, LoopbackIsExemptFromSendFaults) {
  ASSERT_TRUE(fault::Configure("fabric.send:drop").ok());
  Fabric fabric(2, kInfinibandQdr);
  fabric.Send(1, 1, 0, {4});  // src == dst: never dropped
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(1, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 4);
  EXPECT_EQ(fabric.messages_dropped(), 0u);
}

TEST_F(FabricFaultTest, ScopedDropAttributesToSender) {
  ASSERT_TRUE(fault::Configure("machine0:fabric.send:drop").ok());
  Fabric fabric(3, kInfinibandQdr);
  fabric.Send(0, 2, 0, {1});  // machine 0 sending: dropped
  fabric.Send(1, 2, 0, {2});  // machine 1 sending: delivered
  Message msg;
  ASSERT_TRUE(fabric.RecvFor(2, 0, &msg, 1000).ok());
  EXPECT_EQ(msg.payload[0], 2);
  EXPECT_EQ(fabric.messages_dropped(), 1u);
}

// --- Cluster ---

ClusterConfig TestCluster(const std::string& name, int p = 3) {
  ClusterConfig config;
  config.num_machines = p;
  config.threads_per_machine = 2;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_cluster" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

TEST(Cluster, RunOnAllRunsEveryMachine) {
  Cluster cluster(TestCluster("runall"));
  std::atomic<int> mask{0};
  ASSERT_TRUE(cluster
                  .RunOnAll([&](int m) -> Status {
                    mask.fetch_or(1 << m);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(mask.load(), 0b111);
}

TEST(Cluster, RunOnAllPropagatesFirstError) {
  Cluster cluster(TestCluster("runall_err"));
  Status s = cluster.RunOnAll([&](int m) -> Status {
    return m == 1 ? Status::Aborted("machine 1 died") : Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(Cluster, BarrierSynchronizes) {
  Cluster cluster(TestCluster("barrier"));
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  ASSERT_TRUE(cluster
                  .RunOnAll([&](int) -> Status {
                    phase1.fetch_add(1);
                    cluster.Barrier();
                    if (phase1.load() != 3) violated.store(true);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_FALSE(violated.load());
}

TEST(Cluster, SnapshotAggregatesDiskBytes) {
  Cluster cluster(TestCluster("snapshot"));
  ASSERT_TRUE(cluster
                  .RunOnAll([&](int m) -> Status {
                    char buf[256] = {0};
                    return cluster.machine(m)->disk()->Write("x", 0, buf,
                                                             256);
                  })
                  .ok());
  const ClusterSnapshot snap = cluster.Snapshot();
  EXPECT_EQ(snap.disk_bytes, 3 * 256u);
  EXPECT_GT(snap.max_machine_disk_seconds, 0.0);
  cluster.ResetCounters();
  EXPECT_EQ(cluster.Snapshot().disk_bytes, 0u);
}

TEST(Cluster, MachinesHaveIsolatedStorageAndBudgets) {
  Cluster cluster(TestCluster("isolated"));
  ASSERT_TRUE(cluster.machine(0)
                  ->disk()
                  ->Write("only0", 0, "a", 1)
                  .ok());
  EXPECT_TRUE(cluster.machine(0)->disk()->Exists("only0"));
  EXPECT_FALSE(cluster.machine(1)->disk()->Exists("only0"));

  ASSERT_TRUE(cluster.machine(0)->budget()->TryCharge(1000).ok());
  EXPECT_EQ(cluster.machine(1)->budget()->used_bytes(), 0u);
}

TEST(Cluster, WindowMemorySubtractsEdgeBuffer) {
  ClusterConfig config = TestCluster("window");
  config.memory_budget_bytes = 10ull << 20;
  config.buffer_pool_frames = 32;  // 2 MB of 64 KB frames
  Cluster cluster(config);
  EXPECT_EQ(cluster.machine(0)->WindowMemoryBytes(),
            (10ull << 20) - (32ull * kPageSize));
}

}  // namespace
}  // namespace tgpp
