// Storage engine: disk device, slotted pages, page files, buffer pool,
// async I/O.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/fault_injector.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"
#include "graph/types.h"
#include "util/rng.h"

namespace tgpp {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tgpp_storage" / name)
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// --- DiskDevice ---

TEST(DiskDevice, WriteReadRoundtrip) {
  DiskDevice disk(TestDir("rw"), kPcieSsdProfile);
  const std::string data = "hello turbo graph";
  ASSERT_TRUE(disk.Write("f.bin", 10, data.data(), data.size()).ok());
  std::string out(data.size(), '\0');
  ASSERT_TRUE(disk.Read("f.bin", 10, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST(DiskDevice, CountsBytes) {
  DiskDevice disk(TestDir("count"), kPcieSsdProfile);
  char buf[100] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 100).ok());
  ASSERT_TRUE(disk.Read("f.bin", 0, buf, 40).ok());
  EXPECT_EQ(disk.bytes_written(), 100u);
  EXPECT_EQ(disk.bytes_read(), 40u);
  EXPECT_GT(disk.ModeledIoSeconds(), 0.0);
  disk.ResetCounters();
  EXPECT_EQ(disk.bytes_written(), 0u);
}

TEST(DiskDevice, AppendReportsOffsets) {
  DiskDevice disk(TestDir("append"), kPcieSsdProfile);
  uint64_t off = 99;
  ASSERT_TRUE(disk.Append("log.bin", "aaaa", 4, &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(disk.Append("log.bin", "bb", 2, &off).ok());
  EXPECT_EQ(off, 4u);
  auto size = disk.FileSize("log.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
}

TEST(DiskDevice, TruncateAndRemove) {
  DiskDevice disk(TestDir("trunc"), kPcieSsdProfile);
  char buf[64] = {1};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 64).ok());
  ASSERT_TRUE(disk.Truncate("f.bin", 16).ok());
  EXPECT_EQ(*disk.FileSize("f.bin"), 16u);
  EXPECT_TRUE(disk.Exists("f.bin"));
  ASSERT_TRUE(disk.Remove("f.bin").ok());
  ASSERT_TRUE(disk.Remove("f.bin").ok());  // idempotent
}

TEST(DiskDevice, ShortReadIsError) {
  DiskDevice disk(TestDir("short"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  char big[64];
  EXPECT_TRUE(disk.Read("f.bin", 0, big, 64).IsIOError());
}

TEST(DiskDevice, StableFileIdsSurviveAndDiffer) {
  DiskDevice disk(TestDir("ids"), kPcieSsdProfile);
  const uint32_t a1 = disk.StableFileId("a.bin");
  const uint32_t b = disk.StableFileId("b.bin");
  const uint32_t a2 = disk.StableFileId("a.bin");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(DiskDevice, ReadUpToEofSucceedsPastEofFails) {
  DiskDevice disk(TestDir("eof"), kPcieSsdProfile);
  char buf[32];
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<char>(i);
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 32).ok());
  char out[32] = {0};
  ASSERT_TRUE(disk.Read("f.bin", 28, out, 4).ok());  // ends exactly at EOF
  EXPECT_EQ(out[3], 31);
  // One byte past EOF is a permanent error (never retried).
  EXPECT_TRUE(disk.Read("f.bin", 29, out, 4).IsIOError());
  EXPECT_TRUE(disk.Read("f.bin", 64, out, 1).IsIOError());
  EXPECT_EQ(disk.io_retries(), 0u);
}

TEST(DiskDevice, LargeTransfersRoundtripThroughTheLoop) {
  // pread/pwrite may legally return short counts; the multi-megabyte
  // transfer exercises the completion loops in Read/Write.
  DiskDevice disk(TestDir("large"), kPcieSsdProfile);
  std::vector<uint8_t> data(6 << 20);
  uint64_t state = 99;
  for (auto& b : data) b = static_cast<uint8_t>(SplitMix64(state));
  ASSERT_TRUE(disk.Write("big.bin", 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(disk.Read("big.bin", 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.bytes_read(), data.size());
}

// --- DiskDevice fault injection + retry (docs/FAULTS.md) ---

class DiskFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(DiskFaultTest, TransientReadErrorIsRetriedAway) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error@n=1").ok());
  DiskDevice disk(TestDir("retry_read"), kPcieSsdProfile);
  char buf[16] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 16).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 16).ok());
  EXPECT_EQ(disk.io_retries(), 1u);
  EXPECT_EQ(disk.injected_faults(), 1u);
}

TEST_F(DiskFaultTest, WriteAppendSyncAreRetriedToo) {
  ASSERT_TRUE(fault::Configure("disk.write:io_error@n=1;"
                               "disk.append:io_error@n=1;"
                               "disk.sync:io_error@n=1")
                  .ok());
  DiskDevice disk(TestDir("retry_waz"), kPcieSsdProfile);
  char buf[8] = {1};
  EXPECT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  uint64_t off = 99;
  EXPECT_TRUE(disk.Append("f.bin", buf, 8, &off).ok());
  EXPECT_EQ(off, 8u);  // retried append lands once, at the probed offset
  EXPECT_EQ(*disk.FileSize("f.bin"), 16u);
  EXPECT_TRUE(disk.Sync("f.bin").ok());
  EXPECT_EQ(disk.io_retries(), 3u);
}

TEST_F(DiskFaultTest, PersistentErrorSurfacesAfterMaxAttempts) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error").ok());
  DiskDevice disk(TestDir("exhaust"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  IoRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 1;
  disk.set_retry_policy(policy);
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).IsIOError());
  EXPECT_EQ(disk.io_retries(), 2u);  // attempts - 1
  EXPECT_EQ(disk.injected_faults(), 3u);
}

TEST_F(DiskFaultTest, InjectedTimeoutIsNotRetried) {
  ASSERT_TRUE(fault::Configure("disk.read:timeout@once").ok());
  DiskDevice disk(TestDir("timeout"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).IsTimeout());
  EXPECT_EQ(disk.io_retries(), 0u);
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());  // once: gone now
}

TEST_F(DiskFaultTest, DelayActionOnlyStalls) {
  ASSERT_TRUE(fault::Configure("disk.read:delay@ms=1,once").ok());
  DiskDevice disk(TestDir("delay"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());
  EXPECT_EQ(disk.io_retries(), 0u);
  EXPECT_EQ(disk.injected_faults(), 1u);
}

TEST_F(DiskFaultTest, MachineScopedRulesSpareOtherDevices) {
  ASSERT_TRUE(fault::Configure("machine1:disk.read:io_error").ok());
  DiskDevice disk(TestDir("scoped"), kPcieSsdProfile);
  disk.set_fault_machine(2);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());
  EXPECT_EQ(disk.injected_faults(), 0u);
}

// --- SlottedPage ---

TEST(SlottedPage, BuildAndReadBack) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  const std::vector<VertexId> list1 = {5, 9, 13};
  const std::vector<VertexId> list2 = {2};
  ASSERT_TRUE(builder.AddRecord(100, list1));
  ASSERT_TRUE(builder.AddRecord(200, list2));

  SlottedPageReader reader(buffer.data());
  ASSERT_EQ(reader.num_slots(), 2u);
  EXPECT_EQ(reader.SrcAt(0), 100u);
  EXPECT_EQ(std::vector<VertexId>(reader.DstsAt(0).begin(),
                                  reader.DstsAt(0).end()),
            list1);
  EXPECT_EQ(reader.SrcAt(1), 200u);
  EXPECT_EQ(reader.DstsAt(1).size(), 1u);
  EXPECT_TRUE(reader.Validate().ok());
}

TEST(SlottedPage, RejectsWhenFull) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  std::vector<VertexId> list(100, 7);
  uint32_t added = 0;
  while (builder.AddRecord(added, list)) ++added;
  EXPECT_GT(added, 0u);
  // Everything that was accepted must still be readable.
  SlottedPageReader reader(buffer.data());
  EXPECT_EQ(reader.num_slots(), added);
  EXPECT_TRUE(reader.Validate().ok());
}

TEST(SlottedPage, RemainingCapacityIsHonest) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  const size_t cap = builder.RemainingCapacity();
  EXPECT_GT(cap, 8000u);  // ~64KB / 8B minus headers
  std::vector<VertexId> list(cap, 1);
  EXPECT_TRUE(builder.AddRecord(1, list));
  EXPECT_FALSE(builder.AddRecord(2, std::vector<VertexId>(
                                        builder.RemainingCapacity() + 1, 2)));
}

TEST(SlottedPage, EmptyRecordAllowed) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  EXPECT_TRUE(builder.AddRecord(42, {}));
  SlottedPageReader reader(buffer.data());
  EXPECT_EQ(reader.num_slots(), 1u);
  EXPECT_TRUE(reader.DstsAt(0).empty());
}

TEST(SlottedPage, ValidateCatchesCorruption) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  ASSERT_TRUE(builder.AddRecord(1, std::vector<VertexId>{1, 2, 3}));
  // Smash the slot count.
  reinterpret_cast<PageHeader*>(buffer.data())->num_slots = 60000;
  SlottedPageReader reader(buffer.data());
  EXPECT_FALSE(reader.Validate().ok());
}

// --- PageFile ---

TEST(PageFile, AppendReadClear) {
  DiskDevice disk(TestDir("pagefile"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "edges.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize, 0x11);
  auto p0 = file->AppendPage(page.data());
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  page.assign(kPageSize, 0x22);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  EXPECT_EQ(file->num_pages(), 2u);

  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(file->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out[100], 0x11);
  ASSERT_TRUE(file->ReadPage(1, out.data()).ok());
  EXPECT_EQ(out[100], 0x22);
  EXPECT_FALSE(file->ReadPage(2, out.data()).ok());

  ASSERT_TRUE(file->Clear().ok());
  EXPECT_EQ(file->num_pages(), 0u);
}

TEST(PageFile, ReopenSeesExistingPages) {
  DiskDevice disk(TestDir("reopen"), kPcieSsdProfile);
  std::vector<uint8_t> page(kPageSize, 0x33);
  {
    auto file = PageFile::Open(&disk, "x.pf");
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  auto file = PageFile::Open(&disk, "x.pf");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_pages(), 1u);
}

// --- BufferPool ---

TEST(BufferPool, HitsAndMisses) {
  DiskDevice disk(TestDir("pool"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 4; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  {
    auto h = pool.Fetch(&*file, 2);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 2);
  }
  auto h2 = pool.Fetch(&*file, 2);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, CacheSurvivesReopeningTheFile) {
  DiskDevice disk(TestDir("pool_reopen"), kPcieSsdProfile);
  std::vector<uint8_t> page(kPageSize, 0x7);
  {
    auto file = PageFile::Open(&disk, "p.pf");
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(4);
  {
    auto file = PageFile::Open(&disk, "p.pf");
    ASSERT_TRUE(pool.Fetch(&*file, 0).ok());
  }
  auto file2 = PageFile::Open(&disk, "p.pf");  // a different handle object
  ASSERT_TRUE(pool.Fetch(&*file2, 0).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, EvictsUnpinnedUnderPressure) {
  DiskDevice disk(TestDir("pool_evict"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  const int kPages = 10;
  for (int i = 0; i < kPages; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(3);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kPages; ++i) {
      auto h = pool.Fetch(&*file, i);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h->data()[0], i);  // data always correct despite eviction
    }
  }
  EXPECT_GT(pool.misses(), static_cast<uint64_t>(kPages));
}

TEST(BufferPool, PinnedPagesAreNotEvicted) {
  DiskDevice disk(TestDir("pool_pin"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 6; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(4);
  auto pinned = pool.Fetch(&*file, 0);
  ASSERT_TRUE(pinned.ok());
  const uint8_t* data_before = pinned->data();
  // Cycle everything else through the remaining 3 frames.
  for (int round = 0; round < 4; ++round) {
    for (int i = 1; i < 6; ++i) {
      ASSERT_TRUE(pool.Fetch(&*file, i).ok());
    }
  }
  EXPECT_EQ(pinned->data(), data_before);
  EXPECT_EQ(pinned->data()[0], 0);
}

TEST(BufferPool, PrefetchMarksFramesAndCountsReuse) {
  DiskDevice disk(TestDir("pool_prefetch"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize, 0x5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  { auto h = pool.Prefetch(&*file, 1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.prefetch_hits(), 0u);  // not a hit until someone reuses it
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.prefetch_hits(), 1u);
  // The prefetched flag is consumed by the first reuse.
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.prefetch_hits(), 1u);
}

// --- PageHandle ---

TEST(PageHandle, SelfMoveAssignIsSafe) {
  DiskDevice disk(TestDir("handle_selfmove"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  page[0] = 0x42;
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  // Through an alias so -Wself-move can't see the self-assignment; the
  // guard in operator= must keep the handle (and its pin) intact.
  PageHandle& alias = *h;
  *h = std::move(alias);
  ASSERT_TRUE(h->valid());
  EXPECT_EQ(h->data()[0], 0x42);
  h->Release();
  EXPECT_FALSE(h->valid());
  // The pin count was not corrupted: the page is evictable again.
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(PageHandle, DoubleReleaseIsSafe) {
  DiskDevice disk(TestDir("handle_release"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  h->Release();
  h->Release();  // second release is a no-op, not a double-unpin
  EXPECT_FALSE(h->valid());
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(PageHandle, MoveTransfersThePin) {
  DiskDevice disk(TestDir("handle_move"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  page[0] = 0x7;
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(*h);
  EXPECT_FALSE(h->valid());
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.data()[0], 0x7);
  moved.Release();
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(BufferPool, ResidentSubsetAndDropAll) {
  DiskDevice disk(TestDir("pool_resident"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  ASSERT_TRUE(pool.Fetch(&*file, 3).ok());
  const std::vector<uint64_t> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(pool.ResidentSubset(&*file, all),
            (std::vector<uint64_t>{1, 3}));
  pool.DropAll();
  EXPECT_TRUE(pool.ResidentSubset(&*file, all).empty());
}

// --- AsyncIoService ---

TEST(AsyncIo, DeliversAllPages) {
  DiskDevice disk(TestDir("async"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 12; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(16);
  AsyncIoService io(2);
  std::mutex mu;
  std::set<uint64_t> seen;
  std::vector<uint64_t> pages = {0, 3, 5, 7, 11};
  auto ticket = io.SubmitReads(&pool, &*file, pages,
                               [&](uint64_t no, PageHandle handle) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 EXPECT_EQ(handle.data()[0], no);
                                 seen.insert(no);
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen, std::set<uint64_t>(pages.begin(), pages.end()));
}

TEST(AsyncIo, ReportsErrors) {
  DiskDevice disk(TestDir("async_err"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  AsyncIoService io(1);
  auto ticket = io.SubmitReads(&pool, &*file, {0, 99},
                               [](uint64_t, PageHandle) {});
  EXPECT_FALSE(ticket.Wait().ok());
}

TEST(AsyncIo, EmptyBatchCompletesImmediately) {
  DiskDevice disk(TestDir("async_empty"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  BufferPool pool(4);
  AsyncIoService io(1);
  auto ticket =
      io.SubmitReads(&pool, &*file, {}, [](uint64_t, PageHandle) {});
  EXPECT_TRUE(ticket.Wait().ok());
}

}  // namespace
}  // namespace tgpp
