// Storage engine: disk device, slotted pages, page files, buffer pool,
// async I/O.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"
#include "graph/types.h"
#include "util/rng.h"

namespace tgpp {
namespace {

std::string TestDir(const std::string& name) {
  // Per-process root: overlapping runs of this binary (e.g. a plain and a
  // sanitizer CI stage racing) must not share — and remove_all — scratch.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("tgpp_storage." + std::to_string(::getpid())) /
                           name)
                              .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// --- DiskDevice ---

TEST(DiskDevice, WriteReadRoundtrip) {
  DiskDevice disk(TestDir("rw"), kPcieSsdProfile);
  const std::string data = "hello turbo graph";
  ASSERT_TRUE(disk.Write("f.bin", 10, data.data(), data.size()).ok());
  std::string out(data.size(), '\0');
  ASSERT_TRUE(disk.Read("f.bin", 10, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST(DiskDevice, CountsBytes) {
  DiskDevice disk(TestDir("count"), kPcieSsdProfile);
  char buf[100] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 100).ok());
  ASSERT_TRUE(disk.Read("f.bin", 0, buf, 40).ok());
  EXPECT_EQ(disk.bytes_written(), 100u);
  EXPECT_EQ(disk.bytes_read(), 40u);
  EXPECT_GT(disk.ModeledIoSeconds(), 0.0);
  disk.ResetCounters();
  EXPECT_EQ(disk.bytes_written(), 0u);
}

TEST(DiskDevice, AppendReportsOffsets) {
  DiskDevice disk(TestDir("append"), kPcieSsdProfile);
  uint64_t off = 99;
  ASSERT_TRUE(disk.Append("log.bin", "aaaa", 4, &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(disk.Append("log.bin", "bb", 2, &off).ok());
  EXPECT_EQ(off, 4u);
  auto size = disk.FileSize("log.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
}

TEST(DiskDevice, TruncateAndRemove) {
  DiskDevice disk(TestDir("trunc"), kPcieSsdProfile);
  char buf[64] = {1};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 64).ok());
  ASSERT_TRUE(disk.Truncate("f.bin", 16).ok());
  EXPECT_EQ(*disk.FileSize("f.bin"), 16u);
  EXPECT_TRUE(disk.Exists("f.bin"));
  ASSERT_TRUE(disk.Remove("f.bin").ok());
  ASSERT_TRUE(disk.Remove("f.bin").ok());  // idempotent
}

TEST(DiskDevice, ShortReadIsError) {
  DiskDevice disk(TestDir("short"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  char big[64];
  EXPECT_TRUE(disk.Read("f.bin", 0, big, 64).IsIOError());
}

TEST(DiskDevice, StableFileIdsSurviveAndDiffer) {
  DiskDevice disk(TestDir("ids"), kPcieSsdProfile);
  const uint32_t a1 = disk.StableFileId("a.bin");
  const uint32_t b = disk.StableFileId("b.bin");
  const uint32_t a2 = disk.StableFileId("a.bin");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(DiskDevice, ReadUpToEofSucceedsPastEofFails) {
  DiskDevice disk(TestDir("eof"), kPcieSsdProfile);
  char buf[32];
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<char>(i);
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 32).ok());
  char out[32] = {0};
  ASSERT_TRUE(disk.Read("f.bin", 28, out, 4).ok());  // ends exactly at EOF
  EXPECT_EQ(out[3], 31);
  // One byte past EOF is a permanent error (never retried).
  EXPECT_TRUE(disk.Read("f.bin", 29, out, 4).IsIOError());
  EXPECT_TRUE(disk.Read("f.bin", 64, out, 1).IsIOError());
  EXPECT_EQ(disk.io_retries(), 0u);
}

TEST(DiskDevice, LargeTransfersRoundtripThroughTheLoop) {
  // pread/pwrite may legally return short counts; the multi-megabyte
  // transfer exercises the completion loops in Read/Write.
  DiskDevice disk(TestDir("large"), kPcieSsdProfile);
  std::vector<uint8_t> data(6 << 20);
  uint64_t state = 99;
  for (auto& b : data) b = static_cast<uint8_t>(SplitMix64(state));
  ASSERT_TRUE(disk.Write("big.bin", 0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(disk.Read("big.bin", 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.bytes_read(), data.size());
}

// --- DiskDevice fault injection + retry (docs/FAULTS.md) ---

class DiskFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(DiskFaultTest, TransientReadErrorIsRetriedAway) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error@n=1").ok());
  DiskDevice disk(TestDir("retry_read"), kPcieSsdProfile);
  char buf[16] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 16).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 16).ok());
  EXPECT_EQ(disk.io_retries(), 1u);
  EXPECT_EQ(disk.injected_faults(), 1u);
}

TEST_F(DiskFaultTest, WriteAppendSyncAreRetriedToo) {
  ASSERT_TRUE(fault::Configure("disk.write:io_error@n=1;"
                               "disk.append:io_error@n=1;"
                               "disk.sync:io_error@n=1")
                  .ok());
  DiskDevice disk(TestDir("retry_waz"), kPcieSsdProfile);
  char buf[8] = {1};
  EXPECT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  uint64_t off = 99;
  EXPECT_TRUE(disk.Append("f.bin", buf, 8, &off).ok());
  EXPECT_EQ(off, 8u);  // retried append lands once, at the probed offset
  EXPECT_EQ(*disk.FileSize("f.bin"), 16u);
  EXPECT_TRUE(disk.Sync("f.bin").ok());
  EXPECT_EQ(disk.io_retries(), 3u);
}

TEST_F(DiskFaultTest, PersistentErrorSurfacesAfterMaxAttempts) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error").ok());
  DiskDevice disk(TestDir("exhaust"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  IoRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 1;
  disk.set_retry_policy(policy);
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).IsIOError());
  EXPECT_EQ(disk.io_retries(), 2u);  // attempts - 1
  EXPECT_EQ(disk.injected_faults(), 3u);
}

TEST_F(DiskFaultTest, InjectedTimeoutIsNotRetried) {
  ASSERT_TRUE(fault::Configure("disk.read:timeout@once").ok());
  DiskDevice disk(TestDir("timeout"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).IsTimeout());
  EXPECT_EQ(disk.io_retries(), 0u);
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());  // once: gone now
}

TEST_F(DiskFaultTest, DelayActionOnlyStalls) {
  ASSERT_TRUE(fault::Configure("disk.read:delay@ms=1,once").ok());
  DiskDevice disk(TestDir("delay"), kPcieSsdProfile);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());
  EXPECT_EQ(disk.io_retries(), 0u);
  EXPECT_EQ(disk.injected_faults(), 1u);
}

TEST_F(DiskFaultTest, MachineScopedRulesSpareOtherDevices) {
  ASSERT_TRUE(fault::Configure("machine1:disk.read:io_error").ok());
  DiskDevice disk(TestDir("scoped"), kPcieSsdProfile);
  disk.set_fault_machine(2);
  char buf[8] = {0};
  ASSERT_TRUE(disk.Write("f.bin", 0, buf, 8).ok());
  EXPECT_TRUE(disk.Read("f.bin", 0, buf, 8).ok());
  EXPECT_EQ(disk.injected_faults(), 0u);
}

// --- SlottedPage ---

TEST(SlottedPage, BuildAndReadBack) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  const std::vector<VertexId> list1 = {5, 9, 13};
  const std::vector<VertexId> list2 = {2};
  ASSERT_TRUE(builder.AddRecord(100, list1));
  ASSERT_TRUE(builder.AddRecord(200, list2));

  SlottedPageReader reader(buffer.data());
  ASSERT_EQ(reader.num_slots(), 2u);
  EXPECT_EQ(reader.SrcAt(0), 100u);
  EXPECT_EQ(std::vector<VertexId>(reader.DstsAt(0).begin(),
                                  reader.DstsAt(0).end()),
            list1);
  EXPECT_EQ(reader.SrcAt(1), 200u);
  EXPECT_EQ(reader.DstsAt(1).size(), 1u);
  EXPECT_TRUE(reader.Validate().ok());
}

TEST(SlottedPage, RejectsWhenFull) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  std::vector<VertexId> list(100, 7);
  uint32_t added = 0;
  while (builder.AddRecord(added, list)) ++added;
  EXPECT_GT(added, 0u);
  // Everything that was accepted must still be readable.
  SlottedPageReader reader(buffer.data());
  EXPECT_EQ(reader.num_slots(), added);
  EXPECT_TRUE(reader.Validate().ok());
}

TEST(SlottedPage, RemainingCapacityIsHonest) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  const size_t cap = builder.RemainingCapacity();
  EXPECT_GT(cap, 8000u);  // ~64KB / 8B minus headers
  std::vector<VertexId> list(cap, 1);
  EXPECT_TRUE(builder.AddRecord(1, list));
  EXPECT_FALSE(builder.AddRecord(2, std::vector<VertexId>(
                                        builder.RemainingCapacity() + 1, 2)));
}

TEST(SlottedPage, EmptyRecordAllowed) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  EXPECT_TRUE(builder.AddRecord(42, {}));
  SlottedPageReader reader(buffer.data());
  EXPECT_EQ(reader.num_slots(), 1u);
  EXPECT_TRUE(reader.DstsAt(0).empty());
}

TEST(SlottedPage, ValidateCatchesCorruption) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  ASSERT_TRUE(builder.AddRecord(1, std::vector<VertexId>{1, 2, 3}));
  // Smash the slot count.
  reinterpret_cast<PageHeader*>(buffer.data())->num_slots = 60000;
  SlottedPageReader reader(buffer.data());
  EXPECT_FALSE(reader.Validate().ok());
}

// --- PageFile ---

TEST(PageFile, AppendReadClear) {
  DiskDevice disk(TestDir("pagefile"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "edges.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize, 0x11);
  auto p0 = file->AppendPage(page.data());
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  page.assign(kPageSize, 0x22);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  EXPECT_EQ(file->num_pages(), 2u);

  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(file->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out[100], 0x11);
  ASSERT_TRUE(file->ReadPage(1, out.data()).ok());
  EXPECT_EQ(out[100], 0x22);
  EXPECT_FALSE(file->ReadPage(2, out.data()).ok());

  ASSERT_TRUE(file->Clear().ok());
  EXPECT_EQ(file->num_pages(), 0u);
}

TEST(PageFile, ReopenSeesExistingPages) {
  DiskDevice disk(TestDir("reopen"), kPcieSsdProfile);
  std::vector<uint8_t> page(kPageSize, 0x33);
  {
    auto file = PageFile::Open(&disk, "x.pf");
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  auto file = PageFile::Open(&disk, "x.pf");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_pages(), 1u);
}

// --- BufferPool ---

TEST(BufferPool, HitsAndMisses) {
  DiskDevice disk(TestDir("pool"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 4; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  {
    auto h = pool.Fetch(&*file, 2);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 2);
  }
  auto h2 = pool.Fetch(&*file, 2);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, CacheSurvivesReopeningTheFile) {
  DiskDevice disk(TestDir("pool_reopen"), kPcieSsdProfile);
  std::vector<uint8_t> page(kPageSize, 0x7);
  {
    auto file = PageFile::Open(&disk, "p.pf");
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(4);
  {
    auto file = PageFile::Open(&disk, "p.pf");
    ASSERT_TRUE(pool.Fetch(&*file, 0).ok());
  }
  auto file2 = PageFile::Open(&disk, "p.pf");  // a different handle object
  ASSERT_TRUE(pool.Fetch(&*file2, 0).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, EvictsUnpinnedUnderPressure) {
  DiskDevice disk(TestDir("pool_evict"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  const int kPages = 10;
  for (int i = 0; i < kPages; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(3);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kPages; ++i) {
      auto h = pool.Fetch(&*file, i);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h->data()[0], i);  // data always correct despite eviction
    }
  }
  EXPECT_GT(pool.misses(), static_cast<uint64_t>(kPages));
}

TEST(BufferPool, PinnedPagesAreNotEvicted) {
  DiskDevice disk(TestDir("pool_pin"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 6; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(4);
  auto pinned = pool.Fetch(&*file, 0);
  ASSERT_TRUE(pinned.ok());
  const uint8_t* data_before = pinned->data();
  // Cycle everything else through the remaining 3 frames.
  for (int round = 0; round < 4; ++round) {
    for (int i = 1; i < 6; ++i) {
      ASSERT_TRUE(pool.Fetch(&*file, i).ok());
    }
  }
  EXPECT_EQ(pinned->data(), data_before);
  EXPECT_EQ(pinned->data()[0], 0);
}

TEST(BufferPool, PrefetchMarksFramesAndCountsReuse) {
  DiskDevice disk(TestDir("pool_prefetch"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize, 0x5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  { auto h = pool.Prefetch(&*file, 1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.prefetch_hits(), 0u);  // not a hit until someone reuses it
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.prefetch_hits(), 1u);
  // The prefetched flag is consumed by the first reuse.
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.prefetch_hits(), 1u);
}

// --- PageHandle ---

TEST(PageHandle, SelfMoveAssignIsSafe) {
  DiskDevice disk(TestDir("handle_selfmove"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  page[0] = 0x42;
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  // Through an alias so -Wself-move can't see the self-assignment; the
  // guard in operator= must keep the handle (and its pin) intact.
  PageHandle& alias = *h;
  *h = std::move(alias);
  ASSERT_TRUE(h->valid());
  EXPECT_EQ(h->data()[0], 0x42);
  h->Release();
  EXPECT_FALSE(h->valid());
  // The pin count was not corrupted: the page is evictable again.
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(PageHandle, DoubleReleaseIsSafe) {
  DiskDevice disk(TestDir("handle_release"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  h->Release();
  h->Release();  // second release is a no-op, not a double-unpin
  EXPECT_FALSE(h->valid());
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(PageHandle, MoveTransfersThePin) {
  DiskDevice disk(TestDir("handle_move"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  page[0] = 0x7;
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  auto h = pool.Fetch(&*file, 0);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(*h);
  EXPECT_FALSE(h->valid());
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.data()[0], 0x7);
  moved.Release();
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

TEST(BufferPool, ResidentSubsetAndDropAll) {
  DiskDevice disk(TestDir("pool_resident"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  ASSERT_TRUE(pool.Fetch(&*file, 1).ok());
  ASSERT_TRUE(pool.Fetch(&*file, 3).ok());
  const std::vector<uint64_t> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(pool.ResidentSubset(&*file, all),
            (std::vector<uint64_t>{1, 3}));
  pool.DropAll();
  EXPECT_TRUE(pool.ResidentSubset(&*file, all).empty());
}

// --- AsyncIoService ---

TEST(AsyncIo, DeliversAllPages) {
  DiskDevice disk(TestDir("async"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 12; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(16);
  AsyncIoService io(2);
  std::mutex mu;
  std::set<uint64_t> seen;
  std::vector<uint64_t> pages = {0, 3, 5, 7, 11};
  auto ticket = io.SubmitReads(&pool, &*file, pages,
                               [&](uint64_t no, PageHandle handle) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 EXPECT_EQ(handle.data()[0], no);
                                 seen.insert(no);
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen, std::set<uint64_t>(pages.begin(), pages.end()));
}

TEST(AsyncIo, ReportsErrors) {
  DiskDevice disk(TestDir("async_err"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  std::vector<uint8_t> page(kPageSize);
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(4);
  AsyncIoService io(1);
  auto ticket = io.SubmitReads(&pool, &*file, {0, 99},
                               [](uint64_t, PageHandle) {});
  EXPECT_FALSE(ticket.Wait().ok());
}

TEST(AsyncIo, EmptyBatchCompletesImmediately) {
  DiskDevice disk(TestDir("async_empty"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  BufferPool pool(4);
  AsyncIoService io(1);
  auto ticket =
      io.SubmitReads(&pool, &*file, {}, [](uint64_t, PageHandle) {});
  EXPECT_TRUE(ticket.Wait().ok());
}

// --- Missing files and fd lifetime ---

// Read paths must never materialize files: a read of a file nobody wrote
// is a clean IOError and leaves no empty file behind (the old code opened
// with O_CREAT on every path, so a misspelled name silently produced a
// zero-length file and a confusing EOF error downstream).
TEST(DiskDevice, ReadMissingFileFailsCleanly) {
  const std::string dir = TestDir("missing");
  DiskDevice disk(dir, kPcieSsdProfile);
  char buf[8];
  const Status read = disk.Read("ghost.bin", 0, buf, sizeof(buf));
  EXPECT_TRUE(read.IsIOError()) << read.ToString();
  EXPECT_FALSE(disk.FileSize("ghost.bin").ok());
  EXPECT_FALSE(disk.Exists("ghost.bin"));
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) /
                                       "ghost.bin"));
  // A missing file is permanent: no retries were burned on it.
  EXPECT_EQ(disk.io_retries(), 0u);
  // Touch is the explicit way to create an empty file.
  ASSERT_TRUE(disk.Touch("ghost.bin").ok());
  EXPECT_TRUE(disk.Exists("ghost.bin"));
  auto size = disk.FileSize("ghost.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

// Remove() of a file with a read in flight revokes the *name*, not the
// descriptor: the reader holds an FdRef, so the pread completes with the
// old contents instead of dying with EBADF (which the old code then
// burned as a spurious transient retry).
TEST_F(DiskFaultTest, RemoveDuringReadKeepsFdAlive) {
  DiskDevice disk(TestDir("rm_race"), kPcieSsdProfile);
  const std::string data(1 << 20, 'x');
  ASSERT_TRUE(disk.Write("f.bin", 0, data.data(), data.size()).ok());
  // Stall the read inside the device, after it has resolved its fd
  // (GetFdRef happens before the op scope that bumps queue_depth).
  ASSERT_TRUE(fault::Configure("disk.read:delay@ms=100,once").ok());
  std::string out(data.size(), '\0');
  Status read_status = Status::IOError("never ran");
  std::thread reader([&] {
    read_status = disk.Read("f.bin", 0, out.data(), out.size());
  });
  for (int i = 0; i < 5000 && disk.queue_depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(disk.queue_depth(), 1);
  ASSERT_TRUE(disk.Remove("f.bin").ok());
  reader.join();
  EXPECT_TRUE(read_status.ok()) << read_status.ToString();
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.io_retries(), 0u);  // no EBADF absorbed as a retry
  EXPECT_FALSE(disk.Exists("f.bin"));
}

// Appenders queued on the append lock are waiting, not "in the device":
// disk.queue_depth must not count their lock wait (the old code opened
// the op scope before taking the lock, so one slow append made the
// device look four-deep busy).
TEST_F(DiskFaultTest, AppendQueueDepthExcludesLockWait) {
  DiskDevice disk(TestDir("append_depth"), kPcieSsdProfile);
  ASSERT_TRUE(fault::Configure("disk.append:delay@ms=80,once").ok());

  std::atomic<bool> done{false};
  std::atomic<int64_t> max_depth{0};
  std::thread watcher([&] {
    while (!done.load()) {
      const int64_t d = disk.queue_depth();
      int64_t prev = max_depth.load();
      while (d > prev && !max_depth.compare_exchange_weak(prev, d)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kAppenders = 4;
  std::mutex mu;
  std::vector<uint64_t> offsets;
  std::atomic<int> failed{0};
  std::vector<std::thread> appenders;
  for (int t = 0; t < kAppenders; ++t) {
    appenders.emplace_back([&] {
      uint64_t off = 0;
      if (!disk.Append("log.bin", "abcd", 4, &off).ok()) {
        failed.fetch_add(1);
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      offsets.push_back(off);
    });
  }
  for (auto& th : appenders) th.join();
  done.store(true);
  watcher.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_LE(max_depth.load(), 1);
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(offsets, (std::vector<uint64_t>{0, 4, 8, 12}));
  auto size = disk.FileSize("log.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 16u);
}

// --- Striped devices ---

TEST(DiskDevice, StripedRoundtripSpansAllParts) {
  const DiskProfile profile{"stripe4", 75e6, 4, 8};  // 8-byte units
  const std::string dir = TestDir("stripe_rw");
  DiskDevice disk(dir, profile);
  EXPECT_EQ(disk.stripe(), 4);
  EXPECT_DOUBLE_EQ(profile.aggregate_bandwidth_bytes_per_sec(), 300e6);

  std::string data(50, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(disk.Write("f.bin", 0, data.data(), data.size()).ok());

  // Physical layout: four .s<d> part files, no plain "f.bin".
  namespace fs = std::filesystem;
  EXPECT_FALSE(fs::exists(fs::path(dir) / "f.bin"));
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(
        fs::exists(fs::path(dir) / ("f.bin.s" + std::to_string(d))));
  }

  auto size = disk.FileSize("f.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 50u);

  std::string out(50, '\0');
  ASSERT_TRUE(disk.Read("f.bin", 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  // Unaligned read crossing several stripe units.
  std::string mid(29, '\0');
  ASSERT_TRUE(disk.Read("f.bin", 13, mid.data(), mid.size()).ok());
  EXPECT_EQ(mid, data.substr(13, 29));

  ASSERT_TRUE(disk.Truncate("f.bin", 21).ok());
  auto cut = disk.FileSize("f.bin");
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(*cut, 21u);
  std::string head(21, '\0');
  ASSERT_TRUE(disk.Read("f.bin", 0, head.data(), head.size()).ok());
  EXPECT_EQ(head, data.substr(0, 21));
  EXPECT_FALSE(disk.Read("f.bin", 0, out.data(), 22).ok());  // past EOF

  ASSERT_TRUE(disk.Remove("f.bin").ok());
  EXPECT_FALSE(disk.Exists("f.bin"));
  for (int d = 0; d < 4; ++d) {
    EXPECT_FALSE(
        fs::exists(fs::path(dir) / ("f.bin.s" + std::to_string(d))));
  }
}

TEST(DiskDevice, StripedAppendCrossesUnitBoundaries) {
  const DiskProfile profile{"stripe3", 75e6, 3, 8};
  DiskDevice disk(TestDir("stripe_append"), profile);
  uint64_t off = 123;
  ASSERT_TRUE(disk.Append("log.bin", "0123456789", 10, &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(disk.Append("log.bin", "abcdefghij", 10, &off).ok());
  EXPECT_EQ(off, 10u);
  auto size = disk.FileSize("log.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 20u);
  std::string out(20, '\0');
  ASSERT_TRUE(disk.Read("log.bin", 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, "0123456789abcdefghij");
}

// --- Async read merging ---

// Eight adjacent cold pages submitted in one batch coalesce into a single
// vectored request: 7 of the 8 pages rode along merged.
TEST(AsyncIo, MergesAdjacentPageReads) {
  DiskDevice disk(TestDir("merge"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 8; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(16);
  AsyncIoService io(2, -1, IoBackendKind::kThreads);
  std::mutex mu;
  std::set<uint64_t> seen;
  auto ticket = io.SubmitReads(&pool, &*file, {0, 1, 2, 3, 4, 5, 6, 7},
                               [&](uint64_t no, PageHandle h) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 if (h.valid() && h.data()[0] == no) {
                                   seen.insert(no);
                                 }
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(disk.merged_reads(), 7u);
  EXPECT_EQ(disk.bytes_read(), 8u * kPageSize);
}

// On a striped device with page-sized units, pages p and p+stripe are
// physically adjacent on the same backing file: a batch of 8 logical
// pages becomes one merged run per stripe, never a request that spans
// two backing files.
TEST(AsyncIo, MergedReadsRespectStripeBoundaries) {
  const DiskProfile profile{"stripe2", 75e6, 2, kPageSize};
  DiskDevice disk(TestDir("merge_stripe"), profile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 8; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(16);
  AsyncIoService io(2, -1, IoBackendKind::kThreads);
  std::mutex mu;
  std::set<uint64_t> seen;
  auto ticket = io.SubmitReads(&pool, &*file, {0, 1, 2, 3, 4, 5, 6, 7},
                               [&](uint64_t no, PageHandle h) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 if (h.valid() && h.data()[0] == no) {
                                   seen.insert(no);
                                 }
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen.size(), 8u);
  // Two merged runs of 4 pages each (one per stripe): 2 * (4-1) merged.
  EXPECT_EQ(disk.merged_reads(), 6u);
  EXPECT_EQ(disk.bytes_read(), 8u * kPageSize);
  EXPECT_EQ(disk.stripe_queue_depth(0), 0);
  EXPECT_EQ(disk.stripe_queue_depth(1), 0);
}

// The callback contract on failures: every submitted page gets its
// callback exactly once; pages that cannot be read deliver an invalid
// handle, and the claim is withdrawn so the pool stays healthy.
TEST(AsyncIo, FailedReadsStillDeliverCallbacks) {
  DiskDevice disk(TestDir("async_cb_fail"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 2; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(8);
  AsyncIoService io(1, -1, IoBackendKind::kThreads);
  std::atomic<int> calls{0};
  std::atomic<int> invalid{0};
  auto ticket = io.SubmitReads(&pool, &*file, {0, 1, 7},
                               [&](uint64_t, PageHandle h) {
                                 calls.fetch_add(1);
                                 if (!h.valid()) invalid.fetch_add(1);
                               });
  const Status s = ticket.Wait();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(invalid.load(), 1);  // page 7 is past EOF
  EXPECT_EQ(pool.io_in_flight(), 0);
  // The failed claim was withdrawn, not left as a poisoned frame.
  EXPECT_FALSE(pool.Fetch(&*file, 7).ok());
  EXPECT_TRUE(pool.Fetch(&*file, 0).ok());
}

// An injected transient fault fails the whole merged request as one
// attempt; with retries left, each page falls back to a synchronous read
// that succeeds, so the batch as a whole still completes.
TEST_F(DiskFaultTest, TransientFaultOnMergedReadFallsBackPerPage) {
  DiskDevice disk(TestDir("merge_fault"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 4; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  ASSERT_TRUE(fault::Configure("disk.read:io_error@n=1").ok());
  BufferPool pool(8);
  AsyncIoService io(2, -1, IoBackendKind::kThreads);
  std::mutex mu;
  std::set<uint64_t> seen;
  auto ticket = io.SubmitReads(&pool, &*file, {0, 1, 2, 3},
                               [&](uint64_t no, PageHandle h) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 if (h.valid() && h.data()[0] == no) {
                                   seen.insert(no);
                                 }
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(disk.injected_faults(), 1u);  // one roll per merged request
  EXPECT_EQ(disk.io_retries(), 1u);       // the group counted as one retry
  // Only the per-page fallback reads were accounted (the poisoned
  // vectored read does not count as delivered bytes).
  EXPECT_EQ(disk.bytes_read(), 4u * kPageSize);
}

// --- Backend parity ---

// Swapping the submission backend cannot change results: the same pages
// read through the thread-pool and io_uring backends are bit-identical.
TEST(AsyncIo, BackendParityBitIdentical) {
  DiskDevice disk(TestDir("parity"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 16;
  std::vector<std::vector<uint8_t>> want(kPages);
  uint64_t rng = 0xfeedbeefu;
  for (int i = 0; i < kPages; ++i) {
    want[i].resize(kPageSize);
    for (size_t b = 0; b < kPageSize; ++b) {
      want[i][b] = static_cast<uint8_t>(SplitMix64(rng));
    }
    ASSERT_TRUE(file->AppendPage(want[i].data()).ok());
  }

  auto read_all = [&](IoBackendKind kind) {
    BufferPool pool(kPages * 2);
    AsyncIoService io(2, -1, kind);
    std::vector<std::vector<uint8_t>> out(kPages);
    std::mutex mu;
    std::vector<uint64_t> pages(kPages);
    for (int i = 0; i < kPages; ++i) pages[i] = static_cast<uint64_t>(i);
    auto ticket = io.SubmitReads(
        &pool, &*file, pages, [&](uint64_t no, PageHandle h) {
          std::lock_guard<std::mutex> lock(mu);
          if (h.valid()) {
            out[no].assign(h.data(), h.data() + kPageSize);
          }
        });
    EXPECT_TRUE(ticket.Wait().ok()) << IoBackendKindName(kind);
    return out;
  };

  const auto via_threads = read_all(IoBackendKind::kThreads);
  EXPECT_EQ(via_threads, want);
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable in this kernel/container";
  }
  const auto via_uring = read_all(IoBackendKind::kUring);
  EXPECT_EQ(via_uring, want);
  EXPECT_EQ(via_uring, via_threads);
}

// The uring backend end to end: explicit selection, a queue depth smaller
// than the batch (exercising submit backpressure), and the
// disk.uring_submits instrument counting every SQE.
TEST(AsyncIo, UringBackendSubmitsThroughTheRing) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable in this kernel/container";
  }
  DiskDevice disk(TestDir("uring"), kPcieSsdProfile);
  auto file = PageFile::Open(&disk, "p.pf");
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 24;
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < kPages; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(kPages * 2);
  AsyncIoService io(1, -1, IoBackendKind::kUring, /*queue_depth=*/4);
  EXPECT_STREQ(io.backend_name(), "uring");
  obs::Registry registry;
  std::vector<obs::Registration> regs;
  io.RegisterMetrics(&registry, 0, &regs);

  // Every other page: 12 non-adjacent requests through a depth-4 ring.
  std::vector<uint64_t> pages;
  for (int i = 0; i < kPages; i += 2) pages.push_back(i);
  std::mutex mu;
  std::set<uint64_t> seen;
  auto ticket = io.SubmitReads(&pool, &*file, pages,
                               [&](uint64_t no, PageHandle h) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 if (h.valid() && h.data()[0] == no) {
                                   seen.insert(no);
                                 }
                               });
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(seen.size(), pages.size());
  EXPECT_EQ(disk.merged_reads(), 0u);  // nothing adjacent to merge
  uint64_t submits = 0;
  registry.Visit([&](const obs::InstrumentInfo& info) {
    if (info.name == "disk.uring_submits" && info.counter != nullptr) {
      submits = info.counter->value();
    }
  });
  EXPECT_EQ(submits, pages.size());
}

}  // namespace
}  // namespace tgpp
