// Dynamic-graph subsystem tests (docs/DYNAMIC.md):
//  - SlottedPageMutator keeps the layout invariants Validate() checks.
//  - The WAL round-trips batches and applies the ARIES torn-tail rule.
//  - ApplyBatch converges the on-disk graph to the same bytes as an
//    offline rebuild of the mutated edge list (degrees, edge counts, and
//    query digests all agree), including when inserts overflow into
//    delta pages, and replay is idempotent.
//  - A machine killed mid-batch loses its un-flushed pages; revive + WAL
//    replay converges to the bit-identical digest of the no-fault run.
//  - Update jobs in the service run exclusively: concurrent queries each
//    see exactly one epoch (snapshot consistency), under ASan and TSan.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "core/system.h"
#include "dyn/dynamic_graph.h"
#include "dyn/incremental.h"
#include "dyn/wal.h"
#include "graph/edge_list.h"
#include "graph/rmat.h"
#include "service/job_manager.h"
#include "storage/disk_device.h"
#include "storage/slotted_page.h"
#include "util/crc32.h"

namespace tgpp {
namespace {

ClusterConfig DynCluster(const std::string& name, int machines = 4) {
  ClusterConfig config;
  config.num_machines = machines;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_dyn" / name).string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

EdgeList TestGraph(int x, uint64_t seed = 21) {
  EdgeList graph = GenerateRmatX(x, seed);
  RemoveSelfLoops(&graph);
  DeduplicateEdges(&graph);  // set-model semantics for the offline rebuild
  return graph;
}

// The ground truth ApplyBatch must converge to: the batch applied to the
// edge list as a set (inserts of present edges and deletes of absent ones
// are no-ops, matching the subsystem's idempotence rule).
EdgeList ApplyOffline(const EdgeList& graph, const dyn::UpdateBatch& batch) {
  std::set<Edge> edges(graph.edges.begin(), graph.edges.end());
  for (const dyn::EdgeMutation& m : batch.mutations) {
    if (m.op == dyn::EdgeOp::kInsert) {
      edges.insert({m.src, m.dst});
    } else {
      edges.erase({m.src, m.dst});
    }
  }
  EdgeList out;
  out.num_vertices = graph.num_vertices;
  out.edges.assign(edges.begin(), edges.end());
  return out;
}

std::vector<uint64_t> DegreesByOldId(const PartitionedGraph* pg) {
  std::vector<uint64_t> degrees(pg->num_vertices);
  for (VertexId new_id = 0; new_id < pg->num_vertices; ++new_id) {
    degrees[pg->new_to_old[new_id]] = pg->out_degree[new_id];
  }
  return degrees;
}

// Digest of a converged integer-PageRank run — partition-independent
// (integer gathers are order-free), so it compares a mutated-in-place
// system against a freshly rebuilt one.
uint32_t PrDigest(TurboGraphSystem* system) {
  auto app = dyn::MakePageRankIncApp(system->partition());
  std::vector<dyn::PrIncAttr> attrs;
  EngineOptions options;
  options.deterministic = true;
  auto stats = system->RunQuery(app, &attrs, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  std::vector<int64_t> ranks(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) ranks[i] = attrs[i].rank;
  return Crc32(ranks.data(), ranks.size() * sizeof(int64_t));
}

class DynamicGraphTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(DynamicGraphTest, MutatorKeepsPageInvariants) {
  std::vector<uint8_t> page(kPageSize);
  SlottedPageBuilder builder(page.data());
  const uint64_t dsts[3] = {10, 20, 30};
  ASSERT_TRUE(builder.AddRecord(5, dsts));
  SlottedPageMutator mut(page.data());
  SlottedPageReader reader(page.data());
  ASSERT_TRUE(reader.Validate().ok());

  EXPECT_TRUE(mut.Contains(5, 20));
  EXPECT_FALSE(mut.Contains(5, 40));
  EXPECT_FALSE(mut.Contains(6, 20));

  // Extend the tail record in place.
  ASSERT_TRUE(mut.TryExtendRecord(0, 40));
  EXPECT_TRUE(reader.Validate().ok());
  EXPECT_EQ(reader.DstsAt(0).size(), 4u);
  EXPECT_TRUE(mut.Contains(5, 40));

  // Append a fresh record; slot 0 no longer abuts free space.
  ASSERT_TRUE(mut.TryAppendRecord(7, 100));
  EXPECT_TRUE(reader.Validate().ok());
  EXPECT_EQ(reader.num_slots(), 2u);
  EXPECT_FALSE(mut.TryExtendRecord(0, 50));

  // Delete from the middle: compacts, never corrupts.
  ASSERT_TRUE(mut.RemoveDst(5, 20));
  EXPECT_TRUE(reader.Validate().ok());
  EXPECT_FALSE(mut.Contains(5, 20));
  EXPECT_TRUE(mut.Contains(5, 40));
  EXPECT_FALSE(mut.RemoveDst(5, 20));  // absent: no-op

  // Fill the page to capacity; every append keeps it valid and the
  // mutator refuses cleanly once record + slot no longer fit.
  uint64_t src = 1000;
  while (mut.TryAppendRecord(src, src + 1)) ++src;
  EXPECT_TRUE(reader.Validate().ok());
  EXPECT_LT(mut.FreeBytes(), sizeof(PageSlot) + 2 * sizeof(uint64_t));
}

TEST_F(DynamicGraphTest, WalRoundTripAndTornTail) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tgpp_dyn" / "wal").string();
  std::filesystem::remove_all(dir);
  DiskDevice disk(dir, kPcieSsdProfile);
  dyn::Wal wal(&disk);

  std::vector<dyn::EdgeMutation> batch1 = {{dyn::EdgeOp::kInsert, 1, 2},
                                           {dyn::EdgeOp::kDelete, 3, 4}};
  std::vector<dyn::EdgeMutation> batch2 = {{dyn::EdgeOp::kInsert, 5, 6}};
  uint64_t bytes = 0;
  ASSERT_TRUE(wal.AppendBatch(1, batch1, &bytes).ok());
  ASSERT_TRUE(wal.AppendDeltaPage(1, {2, 7}, &bytes).ok());
  ASSERT_TRUE(wal.AppendCommit(1, &bytes).ok());
  ASSERT_TRUE(wal.AppendBatch(2, batch2, &bytes).ok());
  EXPECT_GT(bytes, 0u);

  auto contents = wal.Read();
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->committed_epoch, 1u);
  EXPECT_EQ(contents->max_epoch, 2u);
  EXPECT_FALSE(contents->torn_tail);
  ASSERT_EQ(contents->uncommitted.size(), 1u);  // committed batch dropped
  EXPECT_EQ(contents->uncommitted[0].first, 2u);
  EXPECT_EQ(contents->uncommitted[0].second, batch2);
  ASSERT_EQ(contents->delta_pages.size(), 1u);
  EXPECT_EQ(contents->delta_pages[0].chunk_ordinal, 2u);
  EXPECT_EQ(contents->delta_pages[0].page_no, 7u);

  // Tear the tail mid-record: the scan stops there, trusting everything
  // before it — the epoch-2 batch vanishes, epoch 1 survives.
  auto size = disk.FileSize(dyn::kWalFileName);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(disk.Truncate(dyn::kWalFileName, *size - 5).ok());
  auto torn = wal.Read();
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_TRUE(torn->torn_tail);
  EXPECT_EQ(torn->committed_epoch, 1u);
  EXPECT_EQ(torn->max_epoch, 1u);
  EXPECT_TRUE(torn->uncommitted.empty());
  EXPECT_EQ(torn->delta_pages.size(), 1u);
}

TEST_F(DynamicGraphTest, ApplyBatchMatchesOfflineRebuild) {
  const EdgeList graph = TestGraph(12);

  TurboGraphSystem mutated(DynCluster("apply_mut"));
  ASSERT_TRUE(mutated.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(mutated.cluster(), mutated.mutable_partition());

  dyn::UpdateBatch batch;
  // Inserts not present in the deduplicated graph (src, src+9 mod V) and
  // deletes of existing edges, plus one dup insert and one absent delete
  // to exercise the idempotent-skip path.
  std::set<Edge> existing(graph.edges.begin(), graph.edges.end());
  const uint64_t n = graph.num_vertices;
  uint64_t added = 0;
  for (uint64_t s = 0; s < n && added < 20; ++s) {
    const Edge e{s, (s + 9) % n};
    if (e.src != e.dst && existing.count(e) == 0) {
      batch.Insert(e.src, e.dst);
      ++added;
    }
  }
  ASSERT_EQ(added, 20u);
  for (size_t i = 1; i <= 10; ++i) {  // skip edges[0]: it's the dup below
    const Edge& e = graph.edges[i * 37 % graph.edges.size()];
    batch.Delete(e.src, e.dst);
  }
  batch.Insert(graph.edges[0].src, graph.edges[0].dst);  // dup: skip
  // Absent delete: pick a dst that is neither a base edge nor one of the
  // (s, s+9) inserts above, so the delete is a guaranteed skip.
  const VertexId abs_src = batch.mutations[0].src;
  VertexId abs_dst = (abs_src + 3) % n;
  while (abs_dst == abs_src || abs_dst == (abs_src + 9) % n ||
         existing.count({abs_src, abs_dst}) != 0) {
    abs_dst = (abs_dst + 1) % n;
  }
  batch.Delete(abs_src, abs_dst);

  dyn::ApplyStats stats;
  const Status apply_status = dynamic.ApplyBatch(batch, &stats);
  ASSERT_TRUE(apply_status.ok()) << apply_status.ToString();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(dynamic.epoch(), 1u);
  EXPECT_EQ(stats.inserted, 20u);
  EXPECT_GE(stats.deleted, 9u);  // the x37 stride may repeat an edge
  EXPECT_GE(stats.skipped, 2u);
  EXPECT_EQ(stats.applied.size(), stats.inserted + stats.deleted);
  EXPECT_FALSE(stats.affected.empty());
  EXPECT_TRUE(std::is_sorted(stats.affected.begin(), stats.affected.end()));
  EXPECT_TRUE(mutated.partition()->mutated());

  const EdgeList rebuilt = ApplyOffline(graph, batch);
  EXPECT_EQ(mutated.partition()->num_edges, rebuilt.num_edges());

  TurboGraphSystem fresh(DynCluster("apply_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(rebuilt).ok());
  EXPECT_EQ(DegreesByOldId(mutated.partition()),
            DegreesByOldId(fresh.partition()));
  EXPECT_EQ(PrDigest(&mutated), PrDigest(&fresh));
}

TEST_F(DynamicGraphTest, ReapplyingABatchIsIdempotent) {
  const EdgeList graph = TestGraph(12, 23);
  TurboGraphSystem system(DynCluster("idem"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  dyn::UpdateBatch batch;
  batch.Insert(graph.edges[0].src, (graph.edges[0].src + 5) % graph.num_vertices);
  batch.Delete(graph.edges[1].src, graph.edges[1].dst);

  dyn::ApplyStats first;
  ASSERT_TRUE(dynamic.ApplyBatch(batch, &first).ok());
  const uint64_t edges_after = system.partition()->num_edges;
  const uint32_t digest = PrDigest(&system);

  dyn::ApplyStats second;
  ASSERT_TRUE(dynamic.ApplyBatch(batch, &second).ok());
  EXPECT_EQ(second.inserted, 0u);
  EXPECT_EQ(second.deleted, 0u);
  EXPECT_EQ(second.skipped, batch.size());
  EXPECT_EQ(second.epoch, 2u);  // epochs count apply attempts
  EXPECT_EQ(system.partition()->num_edges, edges_after);
  EXPECT_EQ(PrDigest(&system), digest);
}

TEST_F(DynamicGraphTest, InsertOverflowAllocatesDeltaPages) {
  // p=2 keeps chunks coarse (p*q per machine), so one chunk's share of
  // the complete graph exceeds a 64 KB page and inserts must overflow.
  const EdgeList graph = TestGraph(12, 29);
  TurboGraphSystem system(DynCluster("delta", /*machines=*/2));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  std::set<Edge> edges(graph.edges.begin(), graph.edges.end());
  const uint64_t n = graph.num_vertices;
  uint64_t delta_pages = 0;
  dyn::UpdateBatch all;
  dyn::UpdateBatch batch;
  for (uint64_t s = 0; s < n && delta_pages == 0; ++s) {
    for (uint64_t d = 0; d < n && delta_pages == 0; ++d) {
      if (s == d || edges.count({s, d}) != 0) continue;
      batch.Insert(s, d);
      if (batch.size() == 4096) {
        dyn::ApplyStats stats;
        const Status st = dynamic.ApplyBatch(batch, &stats);
        ASSERT_TRUE(st.ok()) << st.ToString();
        delta_pages += stats.delta_pages;
        all.mutations.insert(all.mutations.end(), batch.mutations.begin(),
                             batch.mutations.end());
        batch.mutations.clear();
      }
    }
  }
  ASSERT_GT(delta_pages, 0u) << "no chunk overflowed its base pages";

  // The overflowed graph still reads back exactly: digest equals a fresh
  // build of the same edge set (delta pages included in every scan).
  const EdgeList rebuilt = ApplyOffline(graph, all);
  TurboGraphSystem fresh(DynCluster("delta_fresh", /*machines=*/2));
  ASSERT_TRUE(fresh.LoadGraph(rebuilt).ok());
  EXPECT_EQ(system.partition()->num_edges, rebuilt.num_edges());
  EXPECT_EQ(DegreesByOldId(system.partition()),
            DegreesByOldId(fresh.partition()));
  EXPECT_EQ(PrDigest(&system), PrDigest(&fresh));
}

TEST_F(DynamicGraphTest, KillMidBatchThenRecoveryConvergesBitIdentical) {
  const EdgeList graph = TestGraph(12, 31);
  dyn::UpdateBatch batch;
  std::set<Edge> existing(graph.edges.begin(), graph.edges.end());
  const uint64_t n = graph.num_vertices;
  uint64_t added = 0;
  for (uint64_t s = 0; s < n && added < 30; ++s) {
    const Edge e{s, (s + 11) % n};
    if (e.src != e.dst && existing.count(e) == 0) {
      batch.Insert(e.src, e.dst);
      ++added;
    }
  }
  for (size_t i = 0; i < 10; ++i) {
    const Edge& e = graph.edges[i * 53 % graph.edges.size()];
    batch.Delete(e.src, e.dst);
  }

  // Fault-free reference apply.
  fault::Disarm();
  TurboGraphSystem clean(DynCluster("kill_clean"));
  ASSERT_TRUE(clean.LoadGraph(graph).ok());
  dyn::DynamicGraph clean_dyn(clean.cluster(), clean.mutable_partition());
  dyn::ApplyStats clean_stats;
  const Status clean_apply = clean_dyn.ApplyBatch(batch, &clean_stats);
  ASSERT_TRUE(clean_apply.ok()) << clean_apply.ToString();
  const uint32_t clean_digest = PrDigest(&clean);

  // Chaos apply: machine 1 fail-stops at its 2nd mutation — after the
  // batch is WAL-durable, before any of its pages are flushed.
  ASSERT_TRUE(
      fault::Configure("machine1:machine.kill@n=2", /*seed=*/11).ok());
  TurboGraphSystem chaos(DynCluster("kill_chaos"));
  ASSERT_TRUE(chaos.LoadGraph(graph).ok());
  dyn::DynamicGraph chaos_dyn(chaos.cluster(), chaos.mutable_partition());
  dyn::ApplyStats chaos_stats;
  const Status apply = chaos_dyn.ApplyBatch(batch, &chaos_stats);
  ASSERT_TRUE(apply.IsMachineLost()) << apply.ToString();
  EXPECT_EQ(chaos_dyn.epoch(), 0u);  // never committed

  // The batch is durable on the dead machine even though it never
  // applied: WAL-first is the whole point.
  dyn::Wal wal1(chaos.cluster()->machine(1)->disk());
  auto logged = wal1.Read();
  ASSERT_TRUE(logged.ok());
  EXPECT_EQ(logged->committed_epoch, 0u);
  ASSERT_FALSE(logged->uncommitted.empty());

  fault::Disarm();
  chaos.cluster()->ReviveAllMachines();
  dyn::ApplyStats recovery;
  ASSERT_TRUE(chaos_dyn.Recover(&recovery).ok());
  EXPECT_EQ(chaos_dyn.epoch(), 1u);

  EXPECT_EQ(chaos.partition()->num_edges, clean.partition()->num_edges);
  EXPECT_EQ(DegreesByOldId(chaos.partition()),
            DegreesByOldId(clean.partition()));
  EXPECT_EQ(PrDigest(&chaos), clean_digest);

  // The replayed epoch is committed now; a second recovery is a no-op.
  auto replayed = wal1.Read();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->committed_epoch, 1u);
  EXPECT_TRUE(replayed->uncommitted.empty());
  ASSERT_TRUE(chaos_dyn.Recover().ok());
  EXPECT_EQ(PrDigest(&chaos), clean_digest);
}

TEST_F(DynamicGraphTest, UpdateJobsRejectedWithoutDynamicGraph) {
  const EdgeList graph = TestGraph(12, 37);
  TurboGraphSystem system(DynCluster("svc_nodyn"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  service::JobManager manager(system.cluster(), system.partition());
  service::JobSpec spec;
  spec.query = "update";
  spec.mutations = {"+1:2"};
  auto id = manager.Submit(spec);
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(id.status().IsInvalidArgument());
  manager.Shutdown();
}

TEST_F(DynamicGraphTest, UpdateJobValidatesMutationText) {
  const EdgeList graph = TestGraph(12, 37);
  TurboGraphSystem system(DynCluster("svc_badmut"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());
  service::JobManager manager(system.cluster(), system.partition(), {},
                              &dynamic);
  service::JobSpec spec;
  spec.query = "update";
  spec.mutations = {"nonsense"};
  EXPECT_FALSE(manager.Submit(spec).ok());
  spec.mutations = {"+1:999999999"};  // out of range
  EXPECT_FALSE(manager.Submit(spec).ok());
  manager.Shutdown();
}

TEST_F(DynamicGraphTest, ConcurrentQueriesSeeExactlyOneEpoch) {
  const EdgeList graph = TestGraph(12, 41);
  TurboGraphSystem system(DynCluster("svc_iso"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());
  service::JobServiceOptions options;
  options.max_running = 2;
  service::JobManager manager(system.cluster(), system.partition(), options,
                              &dynamic);

  auto run_pr = [&]() -> uint32_t {
    service::JobSpec spec;
    spec.query = "pr";
    spec.iterations = 5;
    auto id = manager.Submit(spec);
    EXPECT_TRUE(id.ok());
    auto record = manager.Wait(*id);
    EXPECT_TRUE(record.ok());
    EXPECT_EQ(record->state, service::JobState::kDone);
    return record->result_crc;
  };
  auto make_update = [&](uint64_t salt) {
    service::JobSpec spec;
    spec.query = "update";
    std::set<Edge> existing(graph.edges.begin(), graph.edges.end());
    uint64_t added = 0;
    for (uint64_t s = 0; s < graph.num_vertices && added < 8; ++s) {
      const Edge e{s, (s + salt) % graph.num_vertices};
      if (e.src != e.dst && existing.count(e) == 0) {
        spec.mutations.push_back("+" + std::to_string(e.src) + ":" +
                                 std::to_string(e.dst));
        ++added;
      }
    }
    EXPECT_EQ(added, 8u);
    return spec;
  };

  const uint32_t crc_epoch0 = run_pr();

  // First update through the service: terminal record carries the epoch
  // and applied counts.
  auto update1 = manager.Submit(make_update(13));
  ASSERT_TRUE(update1.ok());
  auto record1 = manager.Wait(*update1);
  ASSERT_TRUE(record1.ok());
  EXPECT_EQ(record1->state, service::JobState::kDone);
  EXPECT_EQ(record1->epoch, 1u);
  EXPECT_EQ(record1->edges_inserted, 8u);
  const uint32_t crc_epoch1 = run_pr();
  EXPECT_NE(crc_epoch1, crc_epoch0);

  // Now race queries against a second update from several threads. The
  // update reserves the whole ledger, so admission serializes it against
  // every query: each query digest must equal exactly the epoch-1 or the
  // epoch-2 graph — never a half-applied hybrid.
  std::vector<uint32_t> crcs(4);
  std::vector<std::thread> workers;
  for (size_t i = 0; i < crcs.size(); ++i) {
    workers.emplace_back([&, i] { crcs[i] = run_pr(); });
  }
  auto update2 = manager.Submit(make_update(17));
  ASSERT_TRUE(update2.ok());
  for (std::thread& t : workers) t.join();
  auto record2 = manager.Wait(*update2);
  ASSERT_TRUE(record2.ok());
  EXPECT_EQ(record2->state, service::JobState::kDone);
  EXPECT_EQ(record2->epoch, 2u);

  const uint32_t crc_epoch2 = run_pr();
  EXPECT_NE(crc_epoch2, crc_epoch1);
  for (size_t i = 0; i < crcs.size(); ++i) {
    EXPECT_TRUE(crcs[i] == crc_epoch1 || crcs[i] == crc_epoch2)
        << "query " << i << " saw a mixed-epoch graph (crc " << crcs[i]
        << ")";
  }
  manager.Shutdown();
}

}  // namespace
}  // namespace tgpp
