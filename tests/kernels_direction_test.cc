// Equivalence tests for the direction-optimizing / work-efficient
// kernels: every kernel must match its single-threaded reference
// (algos/reference.h) exactly — bit-determinism is the contract
// documented in docs/ALGORITHMS.md — across machine counts, scatter
// directions (push / pull / auto) and window modes (dense / sparse).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/kcore.h"
#include "algos/label_propagation.h"
#include "algos/mis.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

EdgeList CompleteGraph(uint64_t n) {
  EdgeList g;
  g.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) g.edges.push_back({u, v});
    }
  }
  return g;
}

EdgeList CycleGraph(uint64_t n) {
  EdgeList g;
  g.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    g.edges.push_back({u, (u + 1) % n});
    g.edges.push_back({(u + 1) % n, u});
  }
  return g;
}

EdgeList StarGraph(uint64_t leaves) {
  EdgeList g;
  g.num_vertices = leaves + 1;
  for (VertexId v = 1; v <= leaves; ++v) {
    g.edges.push_back({0, v});
    g.edges.push_back({v, 0});
  }
  return g;
}

// Symmetric, deduplicated RMAT graph — the common precondition of the
// pull direction and of the kcore / mis kernels.
EdgeList UndirectedRmat(int scale, uint64_t seed) {
  EdgeList g = GenerateRmatX(scale, seed);
  DeduplicateEdges(&g);
  MakeUndirected(&g);
  return g;
}

std::unique_ptr<TurboGraphSystem> MakeSystem(const std::string& name,
                                             const EdgeList& graph,
                                             int machines = 3) {
  ClusterConfig config;
  config.num_machines = machines;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_kernels_dir" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  auto system = std::make_unique<TurboGraphSystem>(config);
  TGPP_CHECK_OK(system->LoadGraph(graph));
  return system;
}

EngineOptions WithDirection(DirectionMode mode, bool sparse = false) {
  EngineOptions options;
  options.deterministic = true;
  options.frontier.direction = mode;
  options.frontier.sparse_windows = sparse;
  return options;
}

// --- BFS: push == pull == auto == reference -------------------------------

TEST(BfsDirection, AllDirectionsMatchReferenceOnRmat) {
  const EdgeList graph = UndirectedRmat(10, 404);
  const std::vector<uint64_t> expected = ReferenceBfs(graph, 0);
  for (int machines : {1, 3}) {
    for (DirectionMode mode :
         {DirectionMode::kPush, DirectionMode::kPull, DirectionMode::kAuto}) {
      auto system = MakeSystem(
          "bfs_m" + std::to_string(machines) + "_d" +
              std::to_string(static_cast<int>(mode)),
          graph, machines);
      auto app = MakeBfsApp(system->partition(), 0);
      std::vector<BfsAttr> attrs;
      auto stats = system->RunQuery(app, &attrs, WithDirection(mode));
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ASSERT_EQ(attrs.size(), expected.size());
      for (VertexId v = 0; v < expected.size(); ++v) {
        ASSERT_EQ(attrs[v].dist, expected[v])
            << "v=" << v << " machines=" << machines
            << " mode=" << static_cast<int>(mode);
      }
      if (mode == DirectionMode::kPull) {
        EXPECT_GT(stats->pull_supersteps, 0);
        EXPECT_EQ(stats->push_supersteps, 0);
      }
    }
  }
}

TEST(BfsDirection, AutoUsesPullOnDenseFrontier) {
  // K64: after superstep 0 the frontier is 63/64 of the graph, far past
  // the Ligra threshold, so auto must switch to pull at least once.
  const EdgeList graph = CompleteGraph(64);
  const std::vector<uint64_t> expected = ReferenceBfs(graph, 0);
  auto system = MakeSystem("bfs_auto_k64", graph);
  auto app = MakeBfsApp(system->partition(), 0);
  std::vector<BfsAttr> attrs;
  auto stats =
      system->RunQuery(app, &attrs, WithDirection(DirectionMode::kAuto));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->pull_supersteps, 0);
  EXPECT_GT(stats->push_supersteps, 0);  // superstep 0 is tiny -> push
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(attrs[v].dist, expected[v]) << "v=" << v;
  }
}

TEST(BfsDirection, SparseWindowsMatchReferenceOnHighDiameterGraph) {
  // A long cycle keeps every frontier at 2 vertices: every window
  // decision should pick the sparse path.
  const EdgeList graph = CycleGraph(256);
  const std::vector<uint64_t> expected = ReferenceBfs(graph, 0);
  auto system = MakeSystem("bfs_sparse_cycle", graph);
  auto app = MakeBfsApp(system->partition(), 0);
  std::vector<BfsAttr> attrs;
  auto stats = system->RunQuery(
      app, &attrs, WithDirection(DirectionMode::kPush, /*sparse=*/true));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(attrs[v].dist, expected[v]) << "v=" << v;
  }
  uint64_t sparse_windows = 0;
  for (int m = 0; m < system->cluster()->num_machines(); ++m) {
    sparse_windows +=
        system->cluster()->machine(m)->metrics()->frontier_sparse_windows
            .value();
  }
  EXPECT_GT(sparse_windows, 0u);
}

// --- delta-stepping SSSP vs. Dijkstra -------------------------------------

TEST(DeltaSssp, MatchesDijkstraAcrossDeltas) {
  const EdgeList graph = UndirectedRmat(10, 405);
  constexpr uint64_t kMaxWeight = 8;
  const std::vector<uint64_t> expected =
      ReferenceSsspWeighted(graph, 0, kMaxWeight);
  for (uint64_t delta : {1ull, 4ull, 16ull}) {
    auto system =
        MakeSystem("delta_sssp_d" + std::to_string(delta), graph);
    auto app = MakeSsspDeltaApp(system->partition(), 0, delta, kMaxWeight);
    std::vector<SsspDeltaAttr> attrs;
    EngineOptions options;
    options.deterministic = true;
    auto stats = system->RunQuery(app, &attrs, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(attrs[v].dist, expected[v])
          << "v=" << v << " delta=" << delta;
    }
  }
}

TEST(DeltaSssp, DisconnectedVerticesStayInfinite) {
  EdgeList g = CycleGraph(8);
  g.num_vertices = 12;  // 4 isolated vertices
  auto system = MakeSystem("delta_sssp_iso", g);
  auto app = MakeSsspDeltaApp(system->partition(), 0, 4, 8);
  std::vector<SsspDeltaAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (VertexId v = 8; v < 12; ++v) {
    EXPECT_EQ(attrs[v].dist, kInfiniteDistance);
  }
}

// --- sampled WCC vs. full propagation -------------------------------------

TEST(SampledWcc, MatchesReferenceOnRmatAndIslands) {
  for (int machines : {1, 3}) {
    const EdgeList graph = UndirectedRmat(10, 406);
    const std::vector<uint64_t> expected = ReferenceWcc(graph);
    auto system =
        MakeSystem("wcc_sampled_m" + std::to_string(machines), graph,
                   machines);
    auto app = MakeWccSampledApp(system->partition(), /*sample_rounds=*/2);
    std::vector<WccSampledAttr> attrs;
    auto stats = system->RunQuery(app, &attrs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(attrs[v].label, expected[v])
          << "v=" << v << " machines=" << machines;
    }
  }
}

TEST(SampledWcc, StarGraphOneComponent) {
  auto system = MakeSystem("wcc_sampled_star", StarGraph(32));
  auto app = MakeWccSampledApp(system->partition(), 3);
  std::vector<WccSampledAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const WccSampledAttr& a : attrs) EXPECT_EQ(a.label, 0u);
}

// --- k-core ---------------------------------------------------------------

TEST(KCore, CompleteGraphCorenessIsNMinusOne) {
  auto system = MakeSystem("kcore_k8", CompleteGraph(8));
  auto app = MakeKcoreApp(system->partition());
  std::vector<KcoreAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const KcoreAttr& a : attrs) {
    EXPECT_EQ(a.core, 7u);
    EXPECT_EQ(a.state, kKcoreGone);
  }
}

TEST(KCore, MatchesReferenceOnRmat) {
  const EdgeList graph = UndirectedRmat(10, 407);
  const std::vector<uint64_t> expected = ReferenceKCore(graph);
  for (int machines : {1, 3}) {
    auto system =
        MakeSystem("kcore_m" + std::to_string(machines), graph, machines);
    auto app = MakeKcoreApp(system->partition());
    std::vector<KcoreAttr> attrs;
    auto stats = system->RunQuery(app, &attrs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(attrs[v].core, expected[v])
          << "v=" << v << " machines=" << machines;
    }
  }
}

// --- label propagation ----------------------------------------------------

TEST(LabelProp, MatchesReferenceOnRmat) {
  const EdgeList graph = UndirectedRmat(10, 408);
  constexpr int kRounds = 5;
  const std::vector<uint64_t> expected =
      ReferenceLabelProp(graph, kRounds);
  for (int machines : {1, 3}) {
    auto system =
        MakeSystem("lp_m" + std::to_string(machines), graph, machines);
    auto app = MakeLabelPropagationApp(system->partition(), kRounds);
    std::vector<LpAttr> attrs;
    auto stats = system->RunQuery(app, &attrs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(attrs[v].label, expected[v])
          << "v=" << v << " machines=" << machines;
    }
  }
}

TEST(LabelProp, CompleteGraphConvergesToOneLabel) {
  // On K16 every vertex hears every label each round; after a few rounds
  // the hash-selected draws collapse the graph to few communities, and
  // the result must still match the reference exactly.
  const EdgeList graph = CompleteGraph(16);
  const std::vector<uint64_t> expected = ReferenceLabelProp(graph, 8);
  auto system = MakeSystem("lp_k16", graph);
  auto app = MakeLabelPropagationApp(system->partition(), 8);
  std::vector<LpAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(attrs[v].label, expected[v]) << "v=" << v;
  }
}

// --- maximal independent set ----------------------------------------------

TEST(Mis, MatchesReferenceAndIsValidOnRmat) {
  const EdgeList graph = UndirectedRmat(10, 409);
  const std::vector<uint8_t> expected = ReferenceMis(graph);
  for (int machines : {1, 3}) {
    auto system =
        MakeSystem("mis_m" + std::to_string(machines), graph, machines);
    auto app = MakeMisApp(system->partition());
    std::vector<MisAttr> attrs;
    auto stats = system->RunQuery(app, &attrs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    std::vector<uint8_t> in_set(attrs.size());
    for (VertexId v = 0; v < attrs.size(); ++v) {
      ASSERT_TRUE(attrs[v].state == kMisIn || attrs[v].state == kMisOut)
          << "undecided vertex " << v;
      in_set[v] = attrs[v].state == kMisIn ? 1 : 0;
      ASSERT_EQ(in_set[v], expected[v])
          << "v=" << v << " machines=" << machines;
    }
    // Structural validity: independent (no edge inside the set) and
    // maximal (every outside vertex has a neighbor inside).
    std::vector<uint8_t> dominated = in_set;
    for (const auto& e : graph.edges) {
      EXPECT_FALSE(in_set[e.src] && in_set[e.dst])
          << "edge " << e.src << "-" << e.dst << " inside the set";
      if (in_set[e.src]) dominated[e.dst] = 1;
    }
    for (VertexId v = 0; v < dominated.size(); ++v) {
      EXPECT_TRUE(dominated[v]) << "vertex " << v << " not dominated";
    }
  }
}

TEST(Mis, StarGraphPicksLeavesOrHub) {
  auto system = MakeSystem("mis_star", StarGraph(16));
  auto app = MakeMisApp(system->partition());
  std::vector<MisAttr> attrs;
  auto stats = system->RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::vector<uint8_t> expected = ReferenceMis(StarGraph(16));
  uint64_t size = 0;
  for (VertexId v = 0; v < attrs.size(); ++v) {
    EXPECT_EQ(attrs[v].state == kMisIn ? 1 : 0, expected[v]) << "v=" << v;
    if (attrs[v].state == kMisIn) ++size;
  }
  // Either {hub} or all 16 leaves — both are maximal.
  EXPECT_TRUE(size == 1 || size == 16) << "size=" << size;
}

}  // namespace
}  // namespace tgpp
