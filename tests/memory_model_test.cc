// Theorem 4.1 memory model: exact values, monotonicity, failure modes.

#include <gtest/gtest.h>

#include "core/memory_model.h"
#include "storage/slotted_page.h"

namespace tgpp {
namespace {

MemoryModelInput BaseInput() {
  MemoryModelInput in;
  in.k = 1;
  in.p = 4;
  in.num_vertices = 1 << 16;
  in.vertex_attr_bytes = 16;
  in.page_size = kPageSize;
  in.total_budget_bytes = 8ull << 20;
  return in;
}

TEST(MemoryModel, MatchesHandComputedFormula) {
  MemoryModelInput in = BaseInput();
  // |VA| = 2^16 * 16 = 1 MiB; voi = |V|/8 = 8 KiB;
  // fixed = k*(2*64KiB + 8KiB) = 136 KiB;
  // q_min = ceil( (4k+1)*|VA| / (p * (M - fixed)) )
  //       = ceil( 5 MiB / (4 * (8 MiB - 136 KiB)) ) = 1.
  auto q = ComputeQMin(in);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 1);

  in.total_budget_bytes = 400 << 10;  // 400 KiB
  // denom = 4 * (400 - 136) KiB = 1056 KiB; numer = 5120 KiB -> q = 5.
  q = ComputeQMin(in);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 5);
}

TEST(MemoryModel, QMinIsMonotonicInK) {
  MemoryModelInput in = BaseInput();
  in.total_budget_bytes = 1 << 20;
  int prev = 0;
  for (int k = 1; k <= 3; ++k) {
    in.k = k;
    auto q = ComputeQMin(in);
    ASSERT_TRUE(q.ok());
    EXPECT_GE(*q, prev);
    prev = *q;
  }
}

TEST(MemoryModel, QMinShrinksWithBudget) {
  MemoryModelInput in = BaseInput();
  in.k = 2;
  int prev = 1 << 30;
  for (uint64_t mb : {1, 2, 4, 8, 32}) {
    in.total_budget_bytes = mb << 20;
    auto q = ComputeQMin(in);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(*q, prev);
    prev = *q;
  }
  EXPECT_EQ(prev, 1);  // ample memory -> single chunk
}

TEST(MemoryModel, QMinShrinksWithMachines) {
  MemoryModelInput in = BaseInput();
  in.total_budget_bytes = 512 << 10;
  in.p = 2;
  auto q2 = ComputeQMin(in);
  in.p = 8;
  auto q8 = ComputeQMin(in);
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(q8.ok());
  EXPECT_GE(*q2, *q8);
}

TEST(MemoryModel, HopelessBudgetIsOutOfMemory) {
  MemoryModelInput in = BaseInput();
  in.total_budget_bytes = 100 << 10;  // below the fixed window costs
  auto q = ComputeQMin(in);
  EXPECT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsOutOfMemory());
}

TEST(MemoryModel, MinimumRequirementFitsWithinBudgetAtQMin) {
  // The defining property: M_min(q_min) <= budget < M_min(q_min - 1)
  // (when q_min > 1).
  MemoryModelInput in = BaseInput();
  in.k = 2;
  for (uint64_t budget_kb : {500, 800, 1500, 4000}) {
    in.total_budget_bytes = budget_kb << 10;
    auto q = ComputeQMin(in);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(MinimumRequiredBytes(in, *q), in.total_budget_bytes)
        << "budget " << budget_kb << "KB q=" << *q;
    if (*q > 1) {
      EXPECT_GT(MinimumRequiredBytes(in, *q - 1), in.total_budget_bytes);
    }
  }
}

TEST(MemoryModel, WindowSizesFollowEquation3) {
  MemoryModelInput in = BaseInput();
  const WindowSizes sizes = ComputeWindowSizes(in, /*q=*/2);
  const uint64_t va = TotalVertexAttrBytes(in);
  EXPECT_EQ(sizes.vertex_window_bytes, 2 * va / (4 * 2));
  EXPECT_EQ(sizes.lgb_bytes, 2 * va / (4 * 2));
  EXPECT_EQ(sizes.ggb_bytes, va / (4 * 2));
  EXPECT_EQ(sizes.voi_bytes, in.num_vertices / 8);
  EXPECT_GE(sizes.adj_window_bytes, 2 * in.page_size);
}

TEST(MemoryModel, AdjWindowGetsTheRemainder) {
  MemoryModelInput in = BaseInput();
  in.total_budget_bytes = 64ull << 20;
  const WindowSizes sizes = ComputeWindowSizes(in, 1);
  // With a large budget nearly everything should go to the adjacency
  // windows.
  EXPECT_GT(sizes.adj_window_bytes, (32ull << 20));
}

}  // namespace
}  // namespace tgpp
