// Graph toolkit: RMAT generator, edge lists, CSR, degrees, intersections,
// dataset stand-ins.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "graph/csr.h"
#include "graph/datasets.h"
#include "graph/degree.h"
#include "graph/edge_list.h"
#include "graph/rmat.h"
#include "util/rng.h"

namespace tgpp {
namespace {

TEST(Rmat, DeterministicForSeed) {
  const EdgeList a = GenerateRmatX(12, 5);
  const EdgeList b = GenerateRmatX(12, 5);
  const EdgeList c = GenerateRmatX(12, 6);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Rmat, RespectsSizeConvention) {
  const EdgeList g = GenerateRmatX(13, 1);
  EXPECT_EQ(g.num_vertices, 1u << 9);   // 2^(13-4)
  EXPECT_EQ(g.num_edges(), 1u << 13);
  for (const Edge& e : g.edges) {
    EXPECT_LT(e.src, g.num_vertices);
    EXPECT_LT(e.dst, g.num_vertices);
  }
}

TEST(Rmat, NoSelfLoopsWhenRequested) {
  const EdgeList g = GenerateRmatX(14, 2);
  for (const Edge& e : g.edges) EXPECT_NE(e.src, e.dst);
}

TEST(Rmat, IsSkewed) {
  const EdgeList g = GenerateRmatX(16, 3);
  const DegreeStats stats = ComputeDegreeStats(g);
  // Power-law-ish: the top 1% of vertices should hold far more than 1%
  // of the edges.
  EXPECT_GT(stats.top1pct_edge_share, 0.10);
  EXPECT_GT(stats.max_degree, 50 * static_cast<uint64_t>(stats.mean_degree));
}

TEST(EdgeList, SaveLoadRoundtrip) {
  const EdgeList g = GenerateRmatX(10, 4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tgpp_el.bin").string();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices, g.num_vertices);
  EXPECT_EQ(loaded->edges, g.edges);
  std::filesystem::remove(path);
}

TEST(EdgeList, LoadRejectsTruncatedFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tgpp_trunc.bin").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("xx", 2, 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::filesystem::remove(path);
}

TEST(EdgeList, MakeUndirectedSymmetrizesAndDedupes) {
  EdgeList g;
  g.num_vertices = 4;
  g.edges = {{0, 1}, {1, 0}, {2, 3}, {2, 3}};
  MakeUndirected(&g);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.edges) edges.insert({e.src, e.dst});
  EXPECT_EQ(edges, (std::set<std::pair<VertexId, VertexId>>{
                       {0, 1}, {1, 0}, {2, 3}, {3, 2}}));
  EXPECT_EQ(g.edges.size(), 4u);  // duplicates removed
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 0}, {0, 1}, {1, 1}, {2, 1}};
  RemoveSelfLoops(&g);
  EXPECT_EQ(g.edges.size(), 2u);
}

TEST(Csr, MatchesEdgeList) {
  const EdgeList g = GenerateRmatX(11, 8);
  const Csr csr = Csr::Build(g);
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  std::vector<std::multiset<VertexId>> expected(g.num_vertices);
  for (const Edge& e : g.edges) expected[e.src].insert(e.dst);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const auto adj = csr.Neighbors(v);
    EXPECT_EQ(std::multiset<VertexId>(adj.begin(), adj.end()), expected[v]);
    EXPECT_EQ(csr.Degree(v), expected[v].size());
  }
}

TEST(Csr, TransposedReversesEdges) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 1}, {0, 2}, {1, 2}};
  const Csr t = Csr::BuildTransposed(g);
  EXPECT_EQ(t.Degree(0), 0u);
  EXPECT_EQ(t.Degree(1), 1u);
  EXPECT_EQ(t.Degree(2), 2u);
  EXPECT_EQ(t.Neighbors(1)[0], 0u);
}

TEST(Csr, SortNeighborsSorts) {
  const EdgeList g = GenerateRmatX(11, 9);
  const Csr csr = Csr::Build(g, /*sort_neighbors=*/true);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const auto adj = csr.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
  }
}

// Property test: intersection helpers vs std::set_intersection across
// random sorted lists of varying skew.
class IntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntersectionProperty, MatchesStdSetIntersection) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t na = 1 + rng.NextBounded(200);
    const size_t nb = 1 + rng.NextBounded(1500);  // skewed sizes
    std::set<VertexId> sa, sb;
    // Universe (0..1999) comfortably exceeds both set sizes.
    while (sa.size() < na) sa.insert(rng.NextBounded(2000));
    while (sb.size() < nb) sb.insert(rng.NextBounded(2000));
    const std::vector<VertexId> a(sa.begin(), sa.end());
    const std::vector<VertexId> b(sb.begin(), sb.end());

    std::vector<VertexId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));

    EXPECT_EQ(SortedIntersectionCount(a, b), expected.size());
    std::vector<VertexId> got;
    SortedIntersection(a, b, &got);
    EXPECT_EQ(got, expected);

    const VertexId pivot = rng.NextBounded(2000);
    std::vector<VertexId> expected_above;
    for (VertexId v : expected) {
      if (v > pivot) expected_above.push_back(v);
    }
    EXPECT_EQ(SortedIntersectionCountAbove(a, b, pivot),
              expected_above.size());
    std::vector<VertexId> got_above;
    ForEachCommonAbove(a, b, pivot,
                       [&](VertexId v) { got_above.push_back(v); });
    EXPECT_EQ(got_above, expected_above);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Intersection, EmptyAndDisjoint) {
  const std::vector<VertexId> a = {1, 3, 5};
  const std::vector<VertexId> b = {2, 4, 6};
  EXPECT_EQ(SortedIntersectionCount(a, b), 0u);
  EXPECT_EQ(SortedIntersectionCount(a, {}), 0u);
  EXPECT_EQ(SortedIntersectionCount({}, {}), 0u);
}

TEST(Datasets, StandInsAscendInSize) {
  const auto& specs = RealGraphStandIns();
  ASSERT_EQ(specs.size(), 4u);
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GE(specs[i].num_edges, specs[i - 1].num_edges);
  }
  EXPECT_NE(FindDataset("TWT-S"), nullptr);
  EXPECT_EQ(FindDataset("nope"), nullptr);
  EXPECT_GT(HyperlinkStandIn().num_edges, specs.back().num_edges - 1);
}

TEST(Datasets, GenerationIsDeterministic) {
  const DatasetSpec* spec = FindDataset("TWT-S");
  ASSERT_NE(spec, nullptr);
  const EdgeList a = GenerateDataset(*spec);
  const EdgeList b = GenerateDataset(*spec);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.num_edges(), spec->num_edges);
}

TEST(Degree, InOutTotalConsistent) {
  const EdgeList g = GenerateRmatX(11, 10);
  const auto out = ComputeOutDegrees(g);
  const auto in = ComputeInDegrees(g);
  const auto total = ComputeTotalDegrees(g);
  uint64_t sum_out = 0, sum_in = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    sum_out += out[v];
    sum_in += in[v];
    EXPECT_EQ(total[v], out[v] + in[v]);
  }
  EXPECT_EQ(sum_out, g.num_edges());
  EXPECT_EQ(sum_in, g.num_edges());
}

}  // namespace
}  // namespace tgpp
