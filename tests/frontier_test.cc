// Unit tests for the frontier subsystem (algos/frontier.h): the owning
// Frontier's sparse<->dense conversions, the FrontierView range queries
// in both representations, and the pure ChooseDirection /
// ChooseWindowMode decision functions (thresholds and hysteresis).

#include <gtest/gtest.h>

#include <vector>

#include "algos/frontier.h"
#include "util/bitmap.h"

namespace tgpp {
namespace {

TEST(Frontier, AddIsIdempotentAndCounts) {
  Frontier f(128, 16);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.rep(), FrontierRep::kSparse);
  f.Add(7);
  f.Add(7);
  f.Add(3);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.Test(7));
  EXPECT_TRUE(f.Test(3));
  EXPECT_FALSE(f.Test(4));
}

TEST(Frontier, ForEachIsAscendingEvenWithUnorderedAdds) {
  Frontier f(64, 32);
  for (uint64_t v : {40u, 2u, 17u, 9u, 63u}) f.Add(v);
  std::vector<uint64_t> seen;
  f.ForEach([&](uint64_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 9, 17, 40, 63}));
}

TEST(Frontier, SparseToDenseSwitchAtCapacity) {
  Frontier f(256, 4);
  for (uint64_t v = 0; v < 4; ++v) f.Add(2 * v);
  EXPECT_EQ(f.rep(), FrontierRep::kSparse);
  f.Add(100);  // 5th distinct element exceeds capacity 4
  EXPECT_EQ(f.rep(), FrontierRep::kDense);
  EXPECT_EQ(f.size(), 5u);
  // Dense iteration still works and stays ascending.
  std::vector<uint64_t> seen;
  f.ForEach([&](uint64_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 2, 4, 6, 100}));
}

TEST(Frontier, RebuildSparseAfterReset) {
  Frontier f(256, 4);
  for (uint64_t v = 0; v < 10; ++v) f.Add(v);
  EXPECT_EQ(f.rep(), FrontierRep::kDense);
  // Still too populated: rebuild refuses.
  EXPECT_EQ(f.RebuildSparse(), FrontierRep::kDense);
  f.Reset(256, 4);
  f.Add(200);
  f.Add(100);
  EXPECT_EQ(f.RebuildSparse(), FrontierRep::kSparse);
  std::vector<uint64_t> seen;
  f.ForEach([&](uint64_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{100, 200}));
}

TEST(FrontierView, SparseAndDenseAgreeOnRangeQueries) {
  AtomicBitmap bits;
  bits.Resize(512);
  bits.ClearAll();
  const std::vector<uint64_t> members = {1, 63, 64, 100, 255, 256, 400};
  for (uint64_t v : members) bits.Set(v);

  FrontierView sparse;
  sparse.Build(bits, /*sparse_capacity=*/64);
  ASSERT_EQ(sparse.rep(), FrontierRep::kSparse);

  FrontierView dense;
  dense.Build(bits, /*sparse_capacity=*/2);  // population 7 > 2
  ASSERT_EQ(dense.rep(), FrontierRep::kDense);

  for (const FrontierView* view : {&sparse, &dense}) {
    EXPECT_EQ(view->count(), members.size());
    EXPECT_EQ(view->CountInRange(0, 512), members.size());
    EXPECT_EQ(view->CountInRange(64, 256), 3u);  // 64, 100, 255
    EXPECT_EQ(view->CountInRange(256, 512), 2u);  // 256, 400
    EXPECT_EQ(view->CountInRange(2, 63), 0u);

    std::vector<uint64_t> seen;
    view->ForEachIn(63, 257, [&](uint64_t v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<uint64_t>{63, 64, 100, 255, 256}));

    // Degree sum with degree(v) = v makes mistakes obvious.
    EXPECT_EQ(view->DegreeInRange(0, 512, [](uint64_t v) { return v; }),
              1u + 63 + 64 + 100 + 255 + 256 + 400);
  }
}

TEST(ChooseWindowModeTest, SkipsEmptyAndRespectsThreshold) {
  FrontierOptions opt;
  opt.sparse_windows = true;
  opt.sparse_den = 8;
  EXPECT_EQ(ChooseWindowMode(0, 0, 1000, opt), WindowMode::kSkip);
  // work = 10 + 50 = 60; 60 * 8 = 480 < 1000 -> sparse.
  EXPECT_EQ(ChooseWindowMode(10, 50, 1000, opt), WindowMode::kSparse);
  // 60 * 8 = 480 >= 480 -> dense (strict inequality required).
  EXPECT_EQ(ChooseWindowMode(10, 50, 480, opt), WindowMode::kDense);
  // Feature off -> always dense for non-empty windows.
  opt.sparse_windows = false;
  EXPECT_EQ(ChooseWindowMode(10, 50, 1000000, opt), WindowMode::kDense);
  EXPECT_EQ(ChooseWindowMode(0, 0, 1000000, opt), WindowMode::kSkip);
}

TEST(ChooseDirectionTest, LigraRuleFromPush) {
  FrontierOptions opt;
  opt.pull_den = 20;
  const uint64_t n = 1000, m = 19000;  // (n + m) / 20 = 1000
  // Small frontier stays push.
  EXPECT_EQ(ChooseDirection(Direction::kPush, 10, 100, n, m, opt),
            Direction::kPush);
  // work = 200 + 900 = 1100 > 1000 -> pull.
  EXPECT_EQ(ChooseDirection(Direction::kPush, 200, 900, n, m, opt),
            Direction::kPull);
  // Exactly at the threshold stays push (strict inequality).
  EXPECT_EQ(ChooseDirection(Direction::kPush, 200, 800, n, m, opt),
            Direction::kPush);
}

TEST(ChooseDirectionTest, HysteresisFromPull) {
  FrontierOptions opt;
  opt.push_den = 20;
  const uint64_t n = 1000, m = 19000;  // n / 20 = 50
  // Once pulling, a moderate frontier keeps pulling even though the
  // Ligra work rule alone would say push...
  EXPECT_EQ(ChooseDirection(Direction::kPull, 100, 100, n, m, opt),
            Direction::kPull);
  // ...until the frontier collapses below n / push_den.
  EXPECT_EQ(ChooseDirection(Direction::kPull, 49, 100, n, m, opt),
            Direction::kPush);
}

TEST(ChooseDirectionTest, EmptyFrontierAlwaysPush) {
  FrontierOptions opt;
  EXPECT_EQ(ChooseDirection(Direction::kPull, 0, 0, 1000, 19000, opt),
            Direction::kPush);
}

}  // namespace
}  // namespace tgpp
