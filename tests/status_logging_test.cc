// Status / Result / logging macro behaviour.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"

namespace tgpp {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(Status, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::Internal("x").IsOutOfMemory());
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kMachineLost); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Status, MachineLostCarriesMachineAndSuperstep) {
  Status s = Status::MachineLost(2, 5);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsMachineLost());
  EXPECT_EQ(s.code(), StatusCode::kMachineLost);
  EXPECT_EQ(s.machine_id(), 2);
  EXPECT_EQ(s.ToString(), "MachineLost: machine 2 lost at superstep 5");
  // Unknown superstep omits the clause but keeps the machine id.
  Status early = Status::MachineLost(1, -1);
  EXPECT_EQ(early.machine_id(), 1);
  EXPECT_EQ(early.message(), "machine 1 lost");
  // Statuses without a machine payload answer -1.
  EXPECT_EQ(Status::Timeout("x").machine_id(), -1);
  EXPECT_EQ(Status::OK().machine_id(), -1);
}

TEST(Status, MachineIdSurvivesCopyAndResult) {
  Status s = Status::MachineLost(3, 1);
  Status copy = s;
  EXPECT_EQ(copy.machine_id(), 3);
  Result<int> r(s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsMachineLost());
  EXPECT_EQ(r.status().machine_id(), 3);
}

TEST(Status, RetryablePredicateSeparatesTransientFromPermanent) {
  EXPECT_TRUE(Status::Timeout("x").IsRetryable());
  EXPECT_TRUE(Status::IOError("x").IsRetryable());
  EXPECT_TRUE(Status::Aborted("x").IsRetryable());
  EXPECT_TRUE(Status::MachineLost(0, 0).IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::OutOfMemory("x").IsRetryable());
  EXPECT_FALSE(Status::Cancelled("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(Status, ExitCodeTableIncludesMachineLost) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::Timeout("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::MachineLost(0, 0)), 6);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 5);
}

Status FailsAtDepth(int depth) {
  if (depth == 0) return Status::Aborted("bottom");
  TGPP_RETURN_IF_ERROR(FailsAtDepth(depth - 1));
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsAtDepth(5).code(), StatusCode::kAborted);
  EXPECT_TRUE(FailsAtDepth(0).message() == "bottom");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chain(int x) {
  TGPP_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnMacro) {
  ASSERT_TRUE(Chain(10).ok());
  EXPECT_EQ(*Chain(10), 21);
  EXPECT_FALSE(Chain(0).ok());
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Logging, LevelsAreAdjustable) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TGPP_LOG(Info) << "suppressed";  // must not crash
  SetLogLevel(before);
}

TEST(Logging, CheckPassesOnTrue) {
  TGPP_CHECK(1 + 1 == 2) << "never shown";
  TGPP_CHECK_OK(Status::OK());
}

TEST(Logging, CheckAbortsOnFalse) {
  EXPECT_DEATH(TGPP_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(TGPP_CHECK_OK(Status::Internal("bad")), "Internal");
}

// Debug builds assert that Result accessors are only used after checking
// ok() (the assert compiles away under NDEBUG, so this test is
// meaningful in Debug / sanitizer builds only).
#ifndef NDEBUG
TEST(Result, AccessorsAssertOkInDebugBuilds) {
  Result<int> bad(Status::IOError("nope"));
  EXPECT_DEATH((void)bad.value(), "Result");
  EXPECT_DEATH((void)*bad, "Result");
}
#endif

}  // namespace
}  // namespace tgpp
