// Chaos tests: the engine under injected faults (docs/FAULTS.md).
//
// The headline guarantee: with superstep-boundary checkpointing and
// deterministic execution, a run that loses a machine mid-query and eats
// random transient disk errors produces *bit-identical* results to a
// fault-free run.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "service/job_manager.h"

namespace tgpp {
namespace {

ClusterConfig ChaosCluster(const std::string& name) {
  ClusterConfig config;
  config.num_machines = 4;
  config.memory_budget_bytes = 32ull << 20;  // roomy: keep q=1
  config.buffer_pool_frames = 4;  // small pool: supersteps re-read pages
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_chaos" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

// Runs deterministic PageRank and returns the final attributes.
Result<QueryStats> RunPr(const std::string& name, const EdgeList& graph,
                         int checkpoint_every,
                         std::vector<PageRankAttr>* ranks) {
  TurboGraphSystem system(ChaosCluster(name));
  Status s = system.LoadGraph(graph);
  if (!s.ok()) return s;
  EngineOptions options;
  options.deterministic = true;
  options.checkpoint_every = checkpoint_every;
  options.recv_timeout_ms = 10000;
  auto app = MakePageRankApp(system.partition(), /*iterations=*/6);
  return system.RunQuery(app, ranks, options);
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(ChaosTest, CrashPlusDiskErrorsMatchFaultFreeBitForBit) {
  const EdgeList graph = GenerateRmatX(13, 21);

  fault::Disarm();
  std::vector<PageRankAttr> clean;
  auto clean_stats = RunPr("clean", graph, /*checkpoint_every=*/0, &clean);
  ASSERT_TRUE(clean_stats.ok()) << clean_stats.status().ToString();

  // Machine 2 dies at superstep 3 and every disk read fails with 5%
  // probability; checkpoints every 2 supersteps let the crash roll back
  // to epoch 2 and replay.
  ASSERT_TRUE(fault::Configure(
                  "machine2:crash@superstep=3; disk.read:io_error@p=0.05",
                  /*seed=*/7)
                  .ok());
  std::vector<PageRankAttr> chaotic;
  auto stats = RunPr("chaos", graph, /*checkpoint_every=*/2, &chaotic);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_GE(stats->recoveries, 1);
  EXPECT_GE(stats->checkpoints, 2);
  EXPECT_GE(fault::InjectedCount(), 2u);  // the crash plus disk errors
  EXPECT_EQ(stats->supersteps, clean_stats->supersteps);

  // Bit-identical, not approximately equal: deterministic mode pins the
  // floating-point accumulation order, and recovery replays it.
  ASSERT_EQ(chaotic.size(), clean.size());
  for (size_t v = 0; v < clean.size(); ++v) {
    ASSERT_EQ(std::memcmp(&chaotic[v].pr, &clean[v].pr, sizeof(double)), 0)
        << "rank diverged at vertex " << v;
  }
}

TEST_F(ChaosTest, TransientDiskErrorsAbsorbedByRetriesAlone) {
  const EdgeList graph = GenerateRmatX(12, 22);

  ASSERT_TRUE(fault::Configure("disk.read:io_error@p=0.02", 3).ok());
  TurboGraphSystem system(ChaosCluster("retries"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  EngineOptions options;
  options.deterministic = true;  // no checkpoints: retries must carry it
  auto app = MakePageRankApp(system.partition(), 4);
  std::vector<PageRankAttr> ranks;
  auto stats = system.RunQuery(app, &ranks, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->recoveries, 0);

  uint64_t retries = 0;
  uint64_t injected = 0;
  for (int m = 0; m < system.cluster()->num_machines(); ++m) {
    retries += system.cluster()->machine(m)->disk()->io_retries();
    injected += system.cluster()->machine(m)->disk()->injected_faults();
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(retries, 0u);
}

TEST_F(ChaosTest, PersistentMessageLossFailsWithTimeoutNotHang) {
  const EdgeList graph = GenerateRmatX(12, 23);

  // Machine 1 drops every message it sends: its done markers never reach
  // the peers' gather loops, so each attempt times out, and after
  // max_recovery_attempts rollbacks the run must fail cleanly (rather
  // than hanging a barrier or aborting the process).
  ASSERT_TRUE(fault::Configure("machine1:fabric.send:drop").ok());
  TurboGraphSystem system(ChaosCluster("msgloss"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  EngineOptions options;
  options.checkpoint_every = 1;
  options.recv_timeout_ms = 300;
  options.max_recovery_attempts = 2;
  auto app = MakePageRankApp(system.partition(), 4);
  auto stats = system.RunQuery(app, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsTimeout()) << stats.status().ToString();
}

TEST_F(ChaosTest, ServiceDeadlineUnderFabricDelayTimesOutCleanly) {
  const EdgeList graph = GenerateRmatX(12, 25);

  // Every fabric send stalls 50 ms, so supersteps crawl and the job's
  // 300 ms deadline fires mid-run. The service must surface Timeout at
  // the next superstep boundary — no hung barrier, no leaked reservation.
  ASSERT_TRUE(fault::Configure("fabric.send:delay@ms=50", /*seed=*/9).ok());
  TurboGraphSystem system(ChaosCluster("svc_deadline"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  service::JobManager manager(system.cluster(), system.partition());
  service::JobSpec spec;
  spec.query = "pr";
  spec.iterations = 1000;
  spec.deadline_ms = 300;
  auto id = manager.Submit(spec);
  ASSERT_TRUE(id.ok());

  auto record = manager.Wait(*id, /*timeout_ms=*/60000);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->state, service::JobState::kFailed);
  EXPECT_EQ(record->status_code, "Timeout");
  EXPECT_EQ(record->reserved_bytes, 0u);
  EXPECT_EQ(manager.ledger().reserved(), 0u);
  EXPECT_GT(fault::InjectedCount(), 0u);
}

TEST_F(ChaosTest, CrashWithoutCheckpointsFailsCleanly) {
  const EdgeList graph = GenerateRmatX(12, 24);

  ASSERT_TRUE(fault::Configure("machine0:crash@superstep=1").ok());
  TurboGraphSystem system(ChaosCluster("nockpt"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  auto app = MakePageRankApp(system.partition(), 4);
  auto stats = system.RunQuery(app, EngineOptions{});  // no checkpoints
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsAborted()) << stats.status().ToString();
}

}  // namespace
}  // namespace tgpp
