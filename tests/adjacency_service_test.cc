// AdjacencyService: full-list materialization from chunk pages, local and
// remote, validated against an in-memory CSR ground truth.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/adjacency_service.h"
#include "graph/csr.h"
#include "graph/rmat.h"
#include "util/rng.h"

namespace tgpp {
namespace {

class AdjacencyServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_machines = 3;
    config.root_dir =
        (std::filesystem::temp_directory_path() / "tgpp_adj").string();
    std::filesystem::remove_all(config.root_dir);
    cluster_ = std::make_unique<Cluster>(config);

    graph_ = GenerateRmatX(12, 55);
    DeduplicateEdges(&graph_);
    MakeUndirected(&graph_);

    PartitionOptions options;
    options.q = 2;
    auto pg = PartitionGraph(cluster_.get(), graph_, options);
    ASSERT_TRUE(pg.ok());
    pg_ = std::move(pg).value();

    // Ground truth in the NEW id space, sorted.
    EdgeList renumbered;
    renumbered.num_vertices = graph_.num_vertices;
    for (const Edge& e : graph_.edges) {
      renumbered.edges.push_back(
          Edge{pg_.old_to_new[e.src], pg_.old_to_new[e.dst]});
    }
    truth_ = Csr::Build(renumbered, /*sort_neighbors=*/true);
  }

  std::unique_ptr<Cluster> cluster_;
  EdgeList graph_;
  PartitionedGraph pg_;
  Csr truth_;
};

TEST_F(AdjacencyServiceTest, MaterializesSortedFullLists) {
  for (int m = 0; m < pg_.p; ++m) {
    AdjacencyService service(cluster_.get(), &pg_, m);
    const VertexRange range = pg_.MachineRange(m);
    // All vertices of the machine in one batch.
    std::vector<VertexId> vids;
    for (VertexId v = range.begin; v < range.end; ++v) vids.push_back(v);
    AdjBatch batch;
    ASSERT_TRUE(service.MaterializeLocal(vids, &batch).ok());
    ASSERT_EQ(batch.size(), vids.size());
    for (size_t i = 0; i < vids.size(); ++i) {
      const auto got = batch.Neighbors(i);
      const auto expected = truth_.Neighbors(vids[i]);
      ASSERT_EQ(got.size(), expected.size()) << "vertex " << vids[i];
      EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
          << "vertex " << vids[i];
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    }
  }
}

TEST_F(AdjacencyServiceTest, MaterializesSparseSubsets) {
  AdjacencyService service(cluster_.get(), &pg_, 0);
  const VertexRange range = pg_.MachineRange(0);
  Xoshiro256 rng(3);
  std::set<VertexId> pick;
  for (int i = 0; i < 20; ++i) {
    pick.insert(range.begin + rng.NextBounded(range.size()));
  }
  const std::vector<VertexId> vids(pick.begin(), pick.end());
  AdjBatch batch;
  ASSERT_TRUE(service.MaterializeLocal(vids, &batch).ok());
  for (size_t i = 0; i < vids.size(); ++i) {
    const auto expected = truth_.Neighbors(vids[i]);
    EXPECT_TRUE(std::equal(batch.Neighbors(i).begin(),
                           batch.Neighbors(i).end(), expected.begin(),
                           expected.end()));
  }
}

TEST_F(AdjacencyServiceTest, NeighborsOfLookup) {
  AdjacencyService service(cluster_.get(), &pg_, 0);
  const VertexRange range = pg_.MachineRange(0);
  std::vector<VertexId> vids = {range.begin, range.begin + 2};
  AdjBatch batch;
  ASSERT_TRUE(service.MaterializeLocal(vids, &batch).ok());
  EXPECT_EQ(batch.NeighborsOf(range.begin).size(),
            truth_.Neighbors(range.begin).size());
  EXPECT_TRUE(batch.NeighborsOf(range.begin + 1).empty());  // not in batch
}

TEST_F(AdjacencyServiceTest, RemoteFetchMatchesLocal) {
  // Machine 1 fetches lists owned by machine 2 through the fabric while
  // machine 2's service thread answers.
  AdjacencyService server(cluster_.get(), &pg_, 2);
  server.Start();

  AdjacencyService client(cluster_.get(), &pg_, 1);
  const VertexRange range = pg_.MachineRange(2);
  std::vector<VertexId> vids;
  for (VertexId v = range.begin; v < range.end; v += 3) vids.push_back(v);

  AdjBatch batch;
  ASSERT_TRUE(client.Fetch(2, vids, &batch).ok());
  server.Stop();

  ASSERT_EQ(batch.size(), vids.size());
  for (size_t i = 0; i < vids.size(); ++i) {
    const auto expected = truth_.Neighbors(vids[i]);
    EXPECT_TRUE(std::equal(batch.Neighbors(i).begin(),
                           batch.Neighbors(i).end(), expected.begin(),
                           expected.end()))
        << "vertex " << vids[i];
  }
  // Remote reads cost network bytes (request + response) and remote disk.
  EXPECT_GT(cluster_->fabric()->bytes_sent(), 0u);
}

TEST_F(AdjacencyServiceTest, EmptyRequest) {
  AdjacencyService service(cluster_.get(), &pg_, 0);
  AdjBatch batch;
  ASSERT_TRUE(service.MaterializeLocal({}, &batch).ok());
  EXPECT_EQ(batch.size(), 0u);
}

}  // namespace
}  // namespace tgpp
