// Concurrent buffer-pool behaviour: the miss path reads pages outside the
// pool latch (frame state machine free -> io_in_progress -> valid), so
// these tests race fetchers against each other, the CLOCK evictor, and a
// full pool. They run under both ASan and TSan in tools/ci.sh.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "storage/page_file.h"
#include "util/rng.h"

namespace tgpp {
namespace {

std::string TestDir(const std::string& name) {
  // Per-process root: overlapping runs of this binary (e.g. a plain and a
  // sanitizer CI stage racing) must not share — and remove_all — scratch.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("tgpp_pool_mt." + std::to_string(::getpid())) /
                           name)
                              .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Appends `n` pages whose first byte is the page number.
Result<PageFile> MakeFile(DiskDevice* disk, int n) {
  auto file = PageFile::Open(disk, "p.pf");
  if (!file.ok()) return file;
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < n; ++i) {
    page[0] = static_cast<uint8_t>(i);
    auto appended = file->AppendPage(page.data());
    if (!appended.ok()) return appended.status();
  }
  return file;
}

// The single-read guarantee: many threads missing the same page on a cold
// pool must issue exactly one ReadPage; everyone else joins the in-flight
// read and counts as a hit.
TEST(BufferPoolConcurrency, SamePageMissReadsOnce) {
  DiskDevice disk(TestDir("same_page"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 4);
  ASSERT_TRUE(file.ok());
  // Stretch the first read so every thread arrives while it is in flight.
  ASSERT_TRUE(fault::Configure("disk.read:delay@ms=30,once").ok());
  BufferPool pool(8);
  const uint64_t before = disk.bytes_read();

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Fetch(&*file, 2);
      if (h.ok() && h->data()[0] == 2) ok.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  fault::Disarm();

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(pool.misses(), 1u);  // exactly one ReadPage for the page
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(disk.bytes_read() - before, kPageSize);
  EXPECT_EQ(pool.io_in_flight(), 0);
}

// Misses on distinct pages must not read any page twice when the pool is
// large enough: misses_ == unique pages even with every fetch racing.
TEST(BufferPoolConcurrency, UniquePagesReadExactlyOnce) {
  DiskDevice disk(TestDir("unique"), kPcieSsdProfile);
  constexpr int kPages = 24;
  auto file = MakeFile(&disk, kPages);
  ASSERT_TRUE(file.ok());
  BufferPool pool(32);  // no eviction pressure

  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng_state = 1234u + t;
      for (int i = 0; i < kItersPerThread; ++i) {
        const uint64_t page = SplitMix64(rng_state) % kPages;
        auto h = pool.Fetch(&*file, page);
        if (!h.ok() || h->data()[0] != static_cast<uint8_t>(page)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.misses(), static_cast<uint64_t>(kPages));
  EXPECT_EQ(disk.bytes_read(), static_cast<uint64_t>(kPages) * kPageSize);
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(pool.io_in_flight(), 0);
}

// Hit/miss/evict stress: more pages than frames, all threads hammering the
// pool with overlapping ranges while the CLOCK hand recycles frames under
// them. Every handle must see the right page contents.
TEST(BufferPoolConcurrency, HitMissEvictStress) {
  DiskDevice disk(TestDir("stress"), kPcieSsdProfile);
  constexpr int kPages = 64;
  auto file = MakeFile(&disk, kPages);
  ASSERT_TRUE(file.ok());
  BufferPool pool(8);  // heavy eviction pressure

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng_state = 99u * (t + 1);
      for (int i = 0; i < kItersPerThread; ++i) {
        const uint64_t page = SplitMix64(rng_state) % kPages;
        auto h = pool.Fetch(&*file, page);
        if (!h.ok() || h->data()[0] != static_cast<uint8_t>(page)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_LE(pool.resident_pages(), 8);
  EXPECT_EQ(pool.io_in_flight(), 0);
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0);
}

// Regression test for the pin-stall miss path: two fetchers of the same
// page race against a pool whose only frame is pinned. When the pin drops,
// exactly one of them may read the page; the other must re-probe the table
// after its stall wake and join (the old code read blindly after the wait
// and its duplicate table insert silently no-op'd, leaving a frame whose
// eviction erased the other frame's live mapping).
TEST(BufferPoolConcurrency, SamePageFetchersRaceAgainstFullPool) {
  DiskDevice disk(TestDir("stall_race"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 3);
  ASSERT_TRUE(file.ok());
  BufferPool pool(1);
  pool.set_stall_timeout(std::chrono::milliseconds(5000));

  auto pinned = pool.Fetch(&*file, 0);  // fills and pins the only frame
  ASSERT_TRUE(pinned.ok());

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Fetch(&*file, 1);  // stalls until the pin drops
      if (h.ok() && h->data()[0] == 1) ok.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pinned->Release();  // un-pins the frame; the stalled fetchers proceed
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), 2);
  // Page 0 and page 1 were read once each — the racing fetchers shared
  // one ReadPage of page 1 instead of double-inserting the key.
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(disk.bytes_read(), 2u * kPageSize);
  // The surviving mapping must be intact: fetching page 1 again (still
  // the resident page) is a hit, not a fresh read.
  const uint64_t hits_before = pool.hits();
  auto again = pool.Fetch(&*file, 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.hits(), hits_before + 1);
  EXPECT_EQ(pool.misses(), 2u);
}

// The pin-stall timeout must still fire when every frame stays pinned.
TEST(BufferPoolConcurrency, PinStallTimesOutWhenAllFramesStayPinned) {
  DiskDevice disk(TestDir("stall_timeout"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 4);
  ASSERT_TRUE(file.ok());
  BufferPool pool(2);
  pool.set_stall_timeout(std::chrono::milliseconds(200));

  auto h0 = pool.Fetch(&*file, 0);
  auto h1 = pool.Fetch(&*file, 1);
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h1.ok());

  auto blocked = pool.Fetch(&*file, 2);
  EXPECT_TRUE(blocked.status().IsTimeout());
}

// A failed read must not strand waiters of the same page: the in-flight
// entry is withdrawn, waiters re-probe and retry the read themselves, and
// each surfaces the error (or succeeds once the fault clears).
TEST(BufferPoolConcurrency, FailedReadWakesWaitersWhoRetry) {
  DiskDevice disk(TestDir("fail_wake"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 2);
  ASSERT_TRUE(file.ok());
  // First attempt stalls then fails; retries succeed. max_attempts = 1 so
  // the device surfaces the injected error instead of absorbing it.
  IoRetryPolicy policy;
  policy.max_attempts = 1;
  disk.set_retry_policy(policy);
  ASSERT_TRUE(fault::Configure("disk.read:io_error@n=1").ok());
  BufferPool pool(4);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Fetch(&*file, 1);
      if (h.ok() && h->data()[0] == 1) {
        ok.fetch_add(1);
      } else if (!h.ok()) {
        failed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  fault::Disarm();

  // Exactly one fetcher ate the injected error; everyone else recovered.
  EXPECT_EQ(failed.load(), 1);
  EXPECT_EQ(ok.load(), kThreads - 1);
  EXPECT_EQ(pool.io_in_flight(), 0);
  auto h = pool.Fetch(&*file, 1);  // the pool is healthy afterwards
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->data()[0], 1);
}

// Prefetched pages land in shared pool frames, pinned on arrival: they are
// visible to ResidentSubset while held, and their first reuse counts as a
// prefetch hit with no second read.
TEST(BufferPoolConcurrency, PrefetchLandsInPoolFramesPinnedOnArrival) {
  DiskDevice disk(TestDir("prefetch"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 8);
  ASSERT_TRUE(file.ok());
  BufferPool pool(16);
  AsyncIoService io(2);

  std::mutex mu;
  std::vector<PageHandle> held;
  const std::vector<uint64_t> pages = {1, 3, 5};
  auto ticket = io.SubmitReads(
      &pool, &*file, pages,
      [&](uint64_t, PageHandle h) {
        std::lock_guard<std::mutex> lock(mu);
        held.push_back(std::move(h));
      },
      /*prefetch=*/true);
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(pool.io_in_flight(), 0);
  EXPECT_EQ(pool.misses(), 3u);

  // Pinned on arrival: the pages are resident while the handles are held.
  const std::vector<uint64_t> all = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(pool.ResidentSubset(&*file, all),
            (std::vector<uint64_t>{1, 3, 5}));
  held.clear();

  // First reuse of each prefetched frame is a prefetch hit, served with
  // no further disk read.
  const uint64_t read_bytes = disk.bytes_read();
  for (uint64_t p : pages) {
    auto h = pool.Fetch(&*file, p);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], static_cast<uint8_t>(p));
  }
  EXPECT_EQ(pool.prefetch_hits(), 3u);
  EXPECT_EQ(disk.bytes_read(), read_bytes);
  // The flag is consumed: a second round of fetches are plain hits.
  for (uint64_t p : pages) ASSERT_TRUE(pool.Fetch(&*file, p).ok());
  EXPECT_EQ(pool.prefetch_hits(), 3u);
}

// An externally claimed frame (TryStartRead → kClaimed, the async path's
// claim) participates in the single-read guarantee: blocking fetchers of
// the same page wait on the in-flight frame and join it the moment
// FinishRead publishes — nobody issues a second read.
TEST(BufferPoolConcurrency, ExternalClaimJoinsBlockingFetchers) {
  DiskDevice disk(TestDir("claim_join"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 2);
  ASSERT_TRUE(file.ok());
  BufferPool pool(4);

  BufferPool::StartRead sr = pool.TryStartRead(&*file, 1, false);
  ASSERT_EQ(sr.kind, BufferPool::StartRead::kClaimed);
  ASSERT_NE(sr.data, nullptr);
  EXPECT_EQ(pool.io_in_flight(), 1);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Fetch(&*file, 1);
      if (h.ok() && h->data()[0] == 1) ok.fetch_add(1);
    });
  }
  // The fetchers are parked on the in-flight frame, not reading.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ok.load(), 0);
  EXPECT_EQ(disk.bytes_read(), 0u);

  // Complete the read ourselves and publish the frame.
  ASSERT_TRUE(disk.Read("p.pf", 1 * kPageSize, sr.data, kPageSize).ok());
  auto h = pool.FinishRead(sr.frame, false, Status::OK());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->data()[0], 1);
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(pool.io_in_flight(), 0);
  EXPECT_EQ(disk.bytes_read(), static_cast<uint64_t>(kPageSize));
}

// A withdrawn claim (FinishRead with a failed status) must wake blocked
// fetchers instead of stranding them: they re-probe, exactly one re-reads
// the page itself, and all of them succeed (the file is healthy).
TEST(BufferPoolConcurrency, WithdrawnClaimWakesBlockedFetchers) {
  DiskDevice disk(TestDir("claim_fail"), kPcieSsdProfile);
  auto file = MakeFile(&disk, 2);
  ASSERT_TRUE(file.ok());
  BufferPool pool(4);

  BufferPool::StartRead sr = pool.TryStartRead(&*file, 1, false);
  ASSERT_EQ(sr.kind, BufferPool::StartRead::kClaimed);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Fetch(&*file, 1);
      if (h.ok() && h->data()[0] == 1) ok.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ok.load(), 0);

  auto failed =
      pool.FinishRead(sr.frame, false, Status::IOError("injected"));
  EXPECT_FALSE(failed.ok());
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads);
  // One waiter claimed the withdrawn page and read it; the rest joined.
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(disk.bytes_read(), static_cast<uint64_t>(kPageSize));
  EXPECT_EQ(pool.io_in_flight(), 0);
}

// Async batches under eviction pressure, on every available backend: the
// claim/fallback split, the device's merged vectored reads, and the
// backend completion threads must deliver correct bytes while the CLOCK
// hand recycles frames underneath them. (Exercises the uring reaper
// thread under TSan when the kernel allows io_uring.)
TEST(BufferPoolConcurrency, AsyncSubmitStressOnEveryBackend) {
  std::vector<IoBackendKind> kinds = {IoBackendKind::kThreads};
  if (UringAvailable()) kinds.push_back(IoBackendKind::kUring);
  for (IoBackendKind kind : kinds) {
    SCOPED_TRACE(IoBackendKindName(kind));
    DiskDevice disk(TestDir(std::string("submit_stress_") +
                            IoBackendKindName(kind)),
                    kPcieSsdProfile);
    constexpr int kPages = 32;
    auto file = MakeFile(&disk, kPages);
    ASSERT_TRUE(file.ok());
    BufferPool pool(16);  // fewer frames than pages: fallbacks + eviction
    AsyncIoService io(2, -1, kind, /*queue_depth=*/8);

    constexpr int kThreads = 4;
    constexpr int kIters = 50;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        uint64_t rng_state = 7u * (t + 1);
        for (int i = 0; i < kIters; ++i) {
          const uint64_t base = SplitMix64(rng_state) % (kPages - 4);
          std::vector<uint64_t> pages = {base, base + 1, base + 2,
                                         base + 3};
          auto ticket = io.SubmitReads(
              &pool, &*file, pages, [&](uint64_t no, PageHandle h) {
                if (!h.valid() ||
                    h.data()[0] != static_cast<uint8_t>(no)) {
                  failures.fetch_add(1);
                }
                // handle drops here: unpinned immediately
              });
          if (!ticket.Wait().ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(pool.io_in_flight(), 0);
    EXPECT_LE(pool.resident_pages(), 16);
  }
}

}  // namespace
}  // namespace tgpp
