// Incremental recompute kernels (src/dyn/incremental.h, docs/DYNAMIC.md).
//
// The acceptance property per kernel: after an update batch, a WARM run
// (previous converged state + per-batch corrections, sparse affected
// frontier) must match a COLD run of the same kernel on the mutated
// graph — BIT-IDENTICAL for wcc-inc/sssp-inc (unique min-combine fixed
// point, insert-only), exact quiescence within a bounded rank gap for
// pr-inc (floor division makes the integer fixed point non-unique; see
// src/dyn/incremental.h). The cold run on the in-place mutated system
// must in turn match a cold run on a freshly partitioned rebuild of the
// mutated edge list bit-for-bit (partition independence).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/system.h"
#include "dyn/dynamic_graph.h"
#include "dyn/incremental.h"
#include "graph/edge_list.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

ClusterConfig IncCluster(const std::string& name) {
  ClusterConfig config;
  config.num_machines = 4;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_inc" / name).string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

EdgeList TestGraph(int x, uint64_t seed, bool undirected) {
  EdgeList graph = GenerateRmatX(x, seed);
  RemoveSelfLoops(&graph);
  if (undirected) {
    MakeUndirected(&graph);
  } else {
    DeduplicateEdges(&graph);
  }
  return graph;
}

EdgeList ApplyOffline(const EdgeList& graph, const dyn::UpdateBatch& batch) {
  std::set<Edge> edges(graph.edges.begin(), graph.edges.end());
  for (const dyn::EdgeMutation& m : batch.mutations) {
    if (m.op == dyn::EdgeOp::kInsert) {
      edges.insert({m.src, m.dst});
    } else {
      edges.erase({m.src, m.dst});
    }
  }
  EdgeList out;
  out.num_vertices = graph.num_vertices;
  out.edges.assign(edges.begin(), edges.end());
  return out;
}

EngineOptions Deterministic() {
  EngineOptions options;
  options.deterministic = true;
  return options;
}

// Inserts `count` not-present edges (src, src+stride) into the batch; for
// undirected graphs the caller adds the reverse edges too.
void AddInserts(const EdgeList& graph, uint64_t stride, uint64_t count,
                bool undirected, dyn::UpdateBatch* batch) {
  std::set<Edge> existing(graph.edges.begin(), graph.edges.end());
  const uint64_t n = graph.num_vertices;
  uint64_t added = 0;
  for (uint64_t s = 0; s < n && added < count; ++s) {
    const Edge e{s, (s + stride) % n};
    if (e.src == e.dst || existing.count(e) != 0) continue;
    if (undirected && existing.count({e.dst, e.src}) != 0) continue;
    batch->Insert(e.src, e.dst);
    if (undirected) batch->Insert(e.dst, e.src);
    ++added;
  }
  ASSERT_EQ(added, count);
}

TEST(IncrementalTest, PageRankWarmIsQuiescentAndBoundedNearCold) {
  const EdgeList graph = TestGraph(12, 51, /*undirected=*/false);

  TurboGraphSystem system(IncCluster("pr"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  // Converge the pre-mutation state (this is also the cold baseline of
  // the un-mutated graph — the state an online service would be holding).
  std::vector<dyn::PrIncAttr> warm;
  auto cold0 = dyn::MakePageRankIncApp(system.partition());
  auto stats0 = system.RunQuery(cold0, &warm, Deterministic());
  ASSERT_TRUE(stats0.ok()) << stats0.status().ToString();

  // pr-inc handles inserts AND deletes (quantization-bounded): mix both.
  dyn::UpdateBatch batch;
  AddInserts(graph, 13, 12, /*undirected=*/false, &batch);
  for (size_t i = 1; i <= 6; ++i) {  // skip edges[0]: it's the dup below
    const Edge& e = graph.edges[i * 41 % graph.edges.size()];
    batch.Delete(e.src, e.dst);
  }
  batch.Insert(graph.edges[0].src, graph.edges[0].dst);  // no-op dup
  dyn::ApplyStats applied;
  const Status apply_status = dynamic.ApplyBatch(batch, &applied);
  ASSERT_TRUE(apply_status.ok()) << apply_status.ToString();
  ASSERT_LT(applied.applied.size(), batch.size());  // the dup was skipped

  // Cold full recompute on a fresh partitioning of the mutated edges.
  TurboGraphSystem fresh(IncCluster("pr_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(ApplyOffline(graph, batch)).ok());
  std::vector<dyn::PrIncAttr> cold_attrs;
  auto cold1 = dyn::MakePageRankIncApp(fresh.partition());
  auto cold_stats = fresh.RunQuery(cold1, &cold_attrs, Deterministic());
  ASSERT_TRUE(cold_stats.ok()) << cold_stats.status().ToString();

  // Warm incremental run on the mutated-in-place system: previous state
  // plus the ±announced corrections for mutations that actually applied.
  auto inject =
      dyn::BuildPrInjections(system.partition(), applied.applied, warm);
  EXPECT_FALSE(inject.empty());
  std::vector<dyn::PrIncAttr> warm_attrs;
  auto warm_app =
      dyn::MakePageRankIncApp(system.partition(), &warm, std::move(inject));
  auto warm_stats = system.RunQuery(warm_app, &warm_attrs, Deterministic());
  ASSERT_TRUE(warm_stats.ok()) << warm_stats.status().ToString();

  // The contract (src/dyn/incremental.h): the warm result is a TRUE
  // quiescent state of the integer PageRank equations — checked exactly,
  // per vertex — and floor-division hysteresis keeps it a few truncation
  // units from the cold fixed point (ranks within kPrIncScale/1000; the
  // announced gap then follows from announced being a floor function of
  // rank/deg). And it is cheaper: the warm run starts from the sparse
  // affected frontier instead of every vertex.
  ASSERT_EQ(warm_attrs.size(), cold_attrs.size());
  for (size_t v = 0; v < cold_attrs.size(); ++v) {
    const dyn::PrIncAttr& w = warm_attrs[v];
    const dyn::PrIncAttr& c = cold_attrs[v];
    ASSERT_EQ(w.deg, c.deg) << "vertex " << v;
    ASSERT_EQ(w.rank, dyn::kPrIncBase + w.sum) << "vertex " << v;
    ASSERT_EQ(w.announced, dyn::PrIncContrib(w.rank, w.deg))
        << "vertex " << v;  // exact quiescence: no residual activity
    const int64_t dr = std::abs(w.rank - c.rank);
    ASSERT_LE(dr, dyn::kPrIncScale / 1000) << "vertex " << v;
    const int64_t da_bound =
        (dr * 85 / 100) / std::max<int64_t>(1, (int64_t)w.deg) + 2;
    ASSERT_LE(std::abs(w.announced - c.announced), da_bound)
        << "vertex " << v;
  }
  EXPECT_LT(warm_stats->supersteps, cold_stats->supersteps);
}

TEST(IncrementalTest, PageRankColdRunIsTheBitExactPath) {
  // Callers needing a bit-exact PR digest cold-run on the mutated
  // storage (warm runs are quantization-bounded, not bit-identical).
  // Verify the mutated storage gives that cold run the same fixed point
  // as a freshly partitioned rebuild, inserts and deletes included.
  const EdgeList graph = TestGraph(12, 53, /*undirected=*/false);
  TurboGraphSystem system(IncCluster("pr_del"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  dyn::UpdateBatch batch;
  AddInserts(graph, 13, 6, /*undirected=*/false, &batch);
  for (size_t i = 0; i < 6; ++i) {
    const Edge& e = graph.edges[i * 41 % graph.edges.size()];
    batch.Delete(e.src, e.dst);
  }
  ASSERT_TRUE(batch.HasDeletes());
  ASSERT_TRUE(dynamic.ApplyBatch(batch).ok());

  TurboGraphSystem fresh(IncCluster("pr_del_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(ApplyOffline(graph, batch)).ok());

  std::vector<dyn::PrIncAttr> a, b;
  auto app_a = dyn::MakePageRankIncApp(system.partition());
  auto app_b = dyn::MakePageRankIncApp(fresh.partition());
  ASSERT_TRUE(system.RunQuery(app_a, &a, Deterministic()).ok());
  ASSERT_TRUE(fresh.RunQuery(app_b, &b, Deterministic()).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].rank, b[v].rank) << "vertex " << v;
  }
}

TEST(IncrementalTest, WccWarmMatchesColdOnInsertOnlyBatch) {
  const EdgeList graph = TestGraph(12, 57, /*undirected=*/true);

  TurboGraphSystem system(IncCluster("wcc"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  std::vector<dyn::WccIncAttr> warm;
  auto cold0 = dyn::MakeWccIncApp(system.partition());
  ASSERT_TRUE(system.RunQuery(cold0, &warm, Deterministic()).ok());
  std::vector<uint64_t> warm_labels(warm.size());
  for (size_t i = 0; i < warm.size(); ++i) warm_labels[i] = warm[i].label;

  dyn::UpdateBatch batch;
  AddInserts(graph, graph.num_vertices / 2 + 1, 6, /*undirected=*/true,
             &batch);
  ASSERT_FALSE(batch.HasDeletes());  // wcc-inc contract: insert-only
  dyn::ApplyStats applied;
  ASSERT_TRUE(dynamic.ApplyBatch(batch, &applied).ok());

  TurboGraphSystem fresh(IncCluster("wcc_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(ApplyOffline(graph, batch)).ok());
  std::vector<dyn::WccIncAttr> cold_attrs;
  auto cold1 = dyn::MakeWccIncApp(fresh.partition());
  auto cold_stats = fresh.RunQuery(cold1, &cold_attrs, Deterministic());
  ASSERT_TRUE(cold_stats.ok()) << cold_stats.status().ToString();

  std::vector<dyn::WccIncAttr> warm_attrs;
  auto warm_app = dyn::MakeWccIncApp(
      system.partition(), warm_labels,
      dyn::SeedsFromAffected(system.partition(), applied.affected));
  auto warm_stats = system.RunQuery(warm_app, &warm_attrs, Deterministic());
  ASSERT_TRUE(warm_stats.ok()) << warm_stats.status().ToString();

  ASSERT_EQ(warm_attrs.size(), cold_attrs.size());
  for (size_t v = 0; v < cold_attrs.size(); ++v) {
    ASSERT_EQ(warm_attrs[v].label, cold_attrs[v].label) << "vertex " << v;
  }
}

TEST(IncrementalTest, WccColdFallbackHandlesDeletes) {
  // Deletes can split components, which warm min-propagation cannot see;
  // the contract is a cold rerun — verify the mutated storage feeds it
  // the right adjacency.
  const EdgeList graph = TestGraph(12, 59, /*undirected=*/true);
  TurboGraphSystem system(IncCluster("wcc_del"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  dyn::UpdateBatch batch;
  const Edge& e = graph.edges[graph.edges.size() / 2];
  batch.Delete(e.src, e.dst);
  batch.Delete(e.dst, e.src);
  ASSERT_TRUE(batch.HasDeletes());
  ASSERT_TRUE(dynamic.ApplyBatch(batch).ok());

  TurboGraphSystem fresh(IncCluster("wcc_del_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(ApplyOffline(graph, batch)).ok());

  std::vector<dyn::WccIncAttr> a, b;
  auto app_a = dyn::MakeWccIncApp(system.partition());
  auto app_b = dyn::MakeWccIncApp(fresh.partition());
  ASSERT_TRUE(system.RunQuery(app_a, &a, Deterministic()).ok());
  ASSERT_TRUE(fresh.RunQuery(app_b, &b, Deterministic()).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].label, b[v].label) << "vertex " << v;
  }
}

TEST(IncrementalTest, SsspWarmMatchesColdOnInsertOnlyBatch) {
  const EdgeList graph = TestGraph(12, 61, /*undirected=*/false);
  const VertexId source = graph.edges[0].src;

  TurboGraphSystem system(IncCluster("sssp"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  std::vector<dyn::SsspIncAttr> warm;
  auto cold0 = dyn::MakeSsspIncApp(system.partition(), source);
  ASSERT_TRUE(system.RunQuery(cold0, &warm, Deterministic()).ok());
  std::vector<uint64_t> warm_dists(warm.size());
  for (size_t i = 0; i < warm.size(); ++i) warm_dists[i] = warm[i].dist;

  // Shortcut edges out of the source's neighborhood change distances.
  dyn::UpdateBatch batch;
  AddInserts(graph, 3, 10, /*undirected=*/false, &batch);
  ASSERT_FALSE(batch.HasDeletes());  // sssp-inc contract: insert-only
  dyn::ApplyStats applied;
  ASSERT_TRUE(dynamic.ApplyBatch(batch, &applied).ok());

  TurboGraphSystem fresh(IncCluster("sssp_fresh"));
  ASSERT_TRUE(fresh.LoadGraph(ApplyOffline(graph, batch)).ok());
  std::vector<dyn::SsspIncAttr> cold_attrs;
  auto cold1 = dyn::MakeSsspIncApp(fresh.partition(), source);
  auto cold_stats = fresh.RunQuery(cold1, &cold_attrs, Deterministic());
  ASSERT_TRUE(cold_stats.ok()) << cold_stats.status().ToString();

  std::vector<dyn::SsspIncAttr> warm_attrs;
  auto warm_app = dyn::MakeSsspIncApp(
      system.partition(), source, warm_dists,
      dyn::SeedsFromAffected(system.partition(), applied.affected));
  auto warm_stats = system.RunQuery(warm_app, &warm_attrs, Deterministic());
  ASSERT_TRUE(warm_stats.ok()) << warm_stats.status().ToString();

  ASSERT_EQ(warm_attrs.size(), cold_attrs.size());
  for (size_t v = 0; v < cold_attrs.size(); ++v) {
    ASSERT_EQ(warm_attrs[v].dist, cold_attrs[v].dist) << "vertex " << v;
  }
}

TEST(IncrementalTest, PrInjectionsSkipIdempotentNoOps) {
  const EdgeList graph = TestGraph(12, 63, /*undirected=*/false);
  TurboGraphSystem system(IncCluster("pr_noop"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  dyn::DynamicGraph dynamic(system.cluster(), system.mutable_partition());

  std::vector<dyn::PrIncAttr> warm;
  auto cold = dyn::MakePageRankIncApp(system.partition());
  ASSERT_TRUE(system.RunQuery(cold, &warm, Deterministic()).ok());

  // A batch of pure no-ops (dup inserts) must contribute NO corrections:
  // injecting for skipped mutations would corrupt the invariant.
  dyn::UpdateBatch noops;
  noops.Insert(graph.edges[0].src, graph.edges[0].dst);
  noops.Insert(graph.edges[1].src, graph.edges[1].dst);
  dyn::ApplyStats stats;
  ASSERT_TRUE(dynamic.ApplyBatch(noops, &stats).ok());
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_TRUE(stats.applied.empty());
  EXPECT_TRUE(
      dyn::BuildPrInjections(system.partition(), stats.applied, warm)
          .empty());

  // And the warm run with no injections converges immediately: the old
  // state is still the fixed point of the unchanged graph.
  std::vector<dyn::PrIncAttr> again;
  auto warm_app = dyn::MakePageRankIncApp(system.partition(), &warm);
  auto warm_stats = system.RunQuery(warm_app, &again, Deterministic());
  ASSERT_TRUE(warm_stats.ok());
  for (size_t v = 0; v < warm.size(); ++v) {
    ASSERT_EQ(again[v].rank, warm[v].rank) << "vertex " << v;
  }
}

}  // namespace
}  // namespace tgpp
