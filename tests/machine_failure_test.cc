// Machine-failure chaos tests (docs/FAULTS.md "Failure model & recovery").
//
// The headline guarantees:
//  - A fail-stop machine (`machine.kill`) is DETECTED within the
//    configured heartbeat timeout — never a wedged barrier — and surfaces
//    as a structured Status::MachineLost carrying the machine id.
//  - With checkpoints, the engine revives the machine, restores the last
//    epoch on every machine, re-executes, and (in deterministic mode)
//    produces *bit-identical* results to a fault-free run, across a
//    matrix of kill supersteps × checkpoint cadences × machine counts ×
//    queries.
//  - Without checkpoints the run fails cleanly with MachineLost.
//  - The job service retries a lost job with backoff, resuming from the
//    job's latest checkpoint, and reports attempts / retries_exhausted.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "service/job_manager.h"
#include "util/crc32.h"

namespace tgpp {
namespace {

ClusterConfig KillCluster(const std::string& name, int p) {
  ClusterConfig config;
  config.num_machines = p;
  config.memory_budget_bytes = 32ull << 20;  // roomy: keep q=1
  // Per-process root: overlapping runs of this binary (e.g. a plain and a
  // sanitizer CI stage racing) must not share — and remove_all — scratch.
  config.root_dir = (std::filesystem::temp_directory_path() /
                     ("tgpp_machine_failure." + std::to_string(::getpid())) /
                     name)
                        .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

// Fast-detection settings shared by the chaos runs: a dead machine is
// declared lost after ~100 ms, while the ordinary receive deadline stays
// far larger so any bounded runtime is attributable to the heartbeats.
EngineOptions DetectingOptions(int checkpoint_every) {
  EngineOptions options;
  options.deterministic = true;
  options.checkpoint_every = checkpoint_every;
  options.recv_timeout_ms = 20000;
  options.heartbeat_interval_ms = 5;
  options.heartbeat_timeout_ms = 100;
  return options;
}

// Runs `query` (pr | sssp | wcc) and returns the CRC32 of the final
// attribute vector; `stats_out` receives the run's QueryStats.
Result<uint32_t> RunQueryCrc(const std::string& name,
                             const std::string& query,
                             const EdgeList& graph, int p,
                             const EngineOptions& options,
                             QueryStats* stats_out) {
  TurboGraphSystem system(KillCluster(name, p));
  TGPP_RETURN_IF_ERROR(system.LoadGraph(graph));
  Result<QueryStats> stats = Status::InvalidArgument("unknown: " + query);
  uint32_t crc = 0;
  if (query == "pr") {
    auto app = MakePageRankApp(system.partition(), /*iterations=*/6);
    std::vector<PageRankAttr> attrs;
    stats = system.RunQuery(app, &attrs, options);
    crc = Crc32(attrs.data(), attrs.size() * sizeof(PageRankAttr));
  } else if (query == "sssp") {
    auto app = MakeSsspApp(system.partition(), /*source=*/0);
    std::vector<SsspAttr> attrs;
    stats = system.RunQuery(app, &attrs, options);
    crc = Crc32(attrs.data(), attrs.size() * sizeof(SsspAttr));
  } else if (query == "wcc") {
    auto app = MakeWccApp(system.partition());
    std::vector<WccAttr> attrs;
    stats = system.RunQuery(app, &attrs, options);
    crc = Crc32(attrs.data(), attrs.size() * sizeof(WccAttr));
  }
  TGPP_RETURN_IF_ERROR(stats.status());
  *stats_out = *stats;
  return crc;
}

class MachineFailureTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(MachineFailureTest, KillRecoveryMatrixIsBitIdentical) {
  const EdgeList graph = GenerateRmatX(11, 33);
  int point = 0;
  for (int p : {2, 4}) {
    for (const char* query : {"pr", "sssp", "wcc"}) {
      fault::Disarm();
      QueryStats clean_stats;
      auto clean = RunQueryCrc("clean" + std::to_string(point), query,
                               graph, p, DetectingOptions(0), &clean_stats);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      ASSERT_GE(clean_stats.supersteps, 3)
          << query << ": graph too small to kill mid-run";

      for (int kill_step : {1, 2}) {
        for (int ckpt : {1, 2}) {
          SCOPED_TRACE(std::string(query) + " p=" + std::to_string(p) +
                       " kill@" + std::to_string(kill_step) +
                       " ckpt=" + std::to_string(ckpt));
          ASSERT_TRUE(
              fault::Configure("machine1:machine.kill@superstep=" +
                                   std::to_string(kill_step),
                               /*seed=*/5)
                  .ok());
          QueryStats stats;
          auto crc = RunQueryCrc("chaos" + std::to_string(point++), query,
                                 graph, p, DetectingOptions(ckpt), &stats);
          ASSERT_TRUE(crc.ok()) << crc.status().ToString();
          EXPECT_GE(stats.recoveries, 1);
          EXPECT_EQ(stats.supersteps, clean_stats.supersteps);
          // Bit-identical recovered result, not approximately equal.
          EXPECT_EQ(*crc, *clean);
          fault::Disarm();
        }
      }
    }
  }
}

TEST_F(MachineFailureTest, KillWithoutCheckpointFailsWithinTimeout) {
  const EdgeList graph = GenerateRmatX(11, 34);
  ASSERT_TRUE(fault::Configure("machine1:machine.kill@superstep=1").ok());

  TurboGraphSystem system(KillCluster("nockpt", 4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  // A one-minute receive deadline: if detection leaned on the recv
  // timeout instead of the heartbeats, this test would take a minute.
  EngineOptions options = DetectingOptions(/*checkpoint_every=*/0);
  options.recv_timeout_ms = 60000;
  options.heartbeat_timeout_ms = 200;
  auto app = MakePageRankApp(system.partition(), 6);
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = system.RunQuery(app, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsMachineLost()) << stats.status().ToString();
  EXPECT_EQ(stats.status().machine_id(), 1);
  EXPECT_LT(elapsed, 10.0) << "detection not bounded by the heartbeat "
                              "timeout";
  EXPECT_GT(system.cluster()->fabric()->heartbeat_misses(), 0u);
  EXPECT_EQ(system.cluster()->machine(0)->metrics()->recoveries.value(), 0u);
  // The machine stays down until the caller revives it.
  EXPECT_FALSE(system.cluster()->machine(1)->alive());
  system.cluster()->ReviveAllMachines();
  EXPECT_TRUE(system.cluster()->machine(1)->alive());
}

TEST_F(MachineFailureTest, ArmedKillSpecAutoEnablesDetection) {
  const EdgeList graph = GenerateRmatX(11, 35);
  // No heartbeat options set: the armed machine.kill rule must
  // auto-enable detection (default 1 s timeout) rather than wedge.
  ASSERT_TRUE(fault::Configure("machine2:machine.kill@superstep=1").ok());
  TurboGraphSystem system(KillCluster("autodetect", 4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  EngineOptions options;
  options.deterministic = true;
  options.recv_timeout_ms = 60000;
  auto app = MakePageRankApp(system.partition(), 4);
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = system.RunQuery(app, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsMachineLost()) << stats.status().ToString();
  EXPECT_EQ(stats.status().machine_id(), 2);
  EXPECT_LT(elapsed, 15.0);
}

TEST_F(MachineFailureTest, RecoveryDecompositionIsPopulated) {
  const EdgeList graph = GenerateRmatX(11, 36);
  // Kill at superstep 3 with checkpoints every 2: recovery restores
  // epoch 2 and re-executes superstep 2 — so all three phases of the
  // detect / restore / re-execute decomposition are non-trivial.
  ASSERT_TRUE(
      fault::Configure("machine1:machine.kill@superstep=3", /*seed=*/5)
          .ok());
  TurboGraphSystem system(KillCluster("decomp", 4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  EngineOptions options = DetectingOptions(/*checkpoint_every=*/2);
  auto app = MakePageRankApp(system.partition(), 6);
  auto stats = system.RunQuery(app, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->recoveries, 1);
  EXPECT_EQ(stats->recovered_superstep_distance, 1);  // step 3 -> epoch 2
  EXPECT_GT(stats->recovery_detect_seconds, 0.0);
  EXPECT_GE(stats->recovery_restore_seconds, 0.0);
  EXPECT_GT(stats->recovery_replay_seconds, 0.0);
  EXPECT_EQ(system.cluster()->machine(0)->metrics()->recoveries.value(),
            1u);
  EXPECT_EQ(system.cluster()
                ->machine(0)
                ->metrics()
                ->recovery_replay_supersteps.value(),
            1u);
}

// --- Job-level retry in the service ---

service::JobSpec PrJob() {
  service::JobSpec spec;
  spec.query = "pr";
  spec.iterations = 6;
  return spec;
}

TEST_F(MachineFailureTest, ServiceRetryResumesFromCheckpointAndMatches) {
  const EdgeList graph = GenerateRmatX(11, 37);

  // Clean reference CRC through the same service path.
  uint32_t clean_crc = 0;
  {
    TurboGraphSystem system(KillCluster("svc_clean", 4));
    ASSERT_TRUE(system.LoadGraph(graph).ok());
    service::JobManager manager(system.cluster(), system.partition());
    auto id = manager.Submit(PrJob());
    ASSERT_TRUE(id.ok());
    auto record = manager.Wait(*id, 60000);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    ASSERT_EQ(record->state, service::JobState::kDone);
    EXPECT_EQ(record->attempts, 1);
    EXPECT_FALSE(record->retries_exhausted);
    clean_crc = record->result_crc;
  }

  // Machine 1 dies at superstep 2 of the first attempt (the rule is
  // superstep-gated, so it fires exactly once); the retry must drain the
  // job's tags, revive the machine, resume from the last checkpoint and
  // finish with the clean CRC.
  ASSERT_TRUE(
      fault::Configure("machine1:machine.kill@superstep=2", /*seed=*/5)
          .ok());
  TurboGraphSystem system(KillCluster("svc_retry", 4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  service::JobServiceOptions svc;
  svc.max_retries = 2;
  svc.retry_backoff_ms = 10;
  svc.checkpoint_every = 1;
  svc.heartbeat_interval_ms = 5;
  svc.heartbeat_timeout_ms = 100;
  svc.recv_timeout_ms = 20000;
  service::JobManager manager(system.cluster(), system.partition(), svc);
  auto id = manager.Submit(PrJob());
  ASSERT_TRUE(id.ok());
  auto record = manager.Wait(*id, 60000);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->state, service::JobState::kDone)
      << record->error << " (" << record->status_code << ")";
  EXPECT_EQ(record->attempts, 2);
  EXPECT_FALSE(record->retries_exhausted);
  EXPECT_EQ(record->result_crc, clean_crc);
  EXPECT_EQ(manager.ledger().reserved(), 0u);
}

TEST_F(MachineFailureTest, ServiceRetriesExhaustedSurfacesDistinctly) {
  const EdgeList graph = GenerateRmatX(11, 38);
  // No superstep gate: machine 1 dies at the start of EVERY attempt, so
  // the retry budget (1) runs out and the job must drain as failed +
  // retries_exhausted with the MachineLost code — the state `tgpp jobs`
  // maps to exit code 6.
  ASSERT_TRUE(fault::Configure("machine1:machine.kill").ok());
  TurboGraphSystem system(KillCluster("svc_exhaust", 4));
  ASSERT_TRUE(system.LoadGraph(graph).ok());
  service::JobServiceOptions svc;
  svc.max_retries = 1;
  svc.retry_backoff_ms = 10;
  svc.checkpoint_every = 1;
  svc.heartbeat_interval_ms = 5;
  svc.heartbeat_timeout_ms = 100;
  svc.recv_timeout_ms = 20000;
  service::JobManager manager(system.cluster(), system.partition(), svc);
  auto id = manager.Submit(PrJob());
  ASSERT_TRUE(id.ok());
  auto record = manager.Wait(*id, 60000);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->state, service::JobState::kFailed);
  EXPECT_EQ(record->attempts, 2);  // first run + one retry
  EXPECT_TRUE(record->retries_exhausted);
  EXPECT_EQ(record->status_code, "MachineLost");
  EXPECT_EQ(manager.ledger().reserved(), 0u);
}

}  // namespace
}  // namespace tgpp
