// Structured event log tests (docs/OBSERVABILITY.md).
//
// Covers the observability plane's contracts end to end:
//  - The JSONL schema is golden-pinned: key order, schema version, and
//    optional-field elision are wire format, not implementation detail.
//  - A chaos run (machine.kill + recovery) produces the full correlated
//    story — superstep, checkpoint, engine.machine_lost, recovery — all
//    tagged with the run's EngineOptions::job_id, plus the fabric's
//    cluster-scoped machine.lost.
//  - Concurrent emitters never tear a line: everything AppendEventsFile
//    writes re-parses as one well-formed flat JSON object per line.
//  - Ring wrap is accounted, not silent: EventStats().dropped covers the
//    overwritten events.
//  - The serve daemon's HTTP introspection endpoints (/metrics, /jobs,
//    /healthz) answer on the same port as the line protocol.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "common/fault_injector.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "obs/events.h"
#include "service/client.h"
#include "service/job_manager.h"
#include "service/server.h"
#include "service/wire.h"

namespace tgpp {
namespace {

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetEvents();
    obs::SetCurrentJob(0);
    obs::SetEventsEnabled(true);
  }
  void TearDown() override {
    fault::Disarm();
    obs::SetEventsEnabled(false);
    obs::ResetEvents();
    obs::SetCurrentJob(0);
  }
};

// --- Schema ---

TEST_F(EventsTest, GoldenJsonWithAllFields) {
  obs::Event ev;
  ev.type = obs::EventType::kSuperstep;
  ev.machine = 2;
  ev.superstep = 7;
  ev.job_id = 42;
  ev.ts_nanos = 123456789;
  ev.detail = "pull";
  ev.arg_name0 = "active";
  ev.arg_value0 = 100;
  ev.arg_name1 = "dur_us";
  ev.arg_value1 = 2500;
  EXPECT_EQ(ev.ToJson(),
            "{\"v\":1,\"ts_ns\":123456789,\"type\":\"superstep\","
            "\"job\":42,\"machine\":2,\"superstep\":7,\"active\":100,"
            "\"dur_us\":2500,\"detail\":\"pull\"}");
}

TEST_F(EventsTest, GoldenJsonElidesAbsentFields) {
  // machine=-1, superstep=-1, no args, no detail: only the required keys.
  obs::Event ev;
  ev.type = obs::EventType::kJobSubmit;
  ev.job_id = 3;
  ev.ts_nanos = 50;
  EXPECT_EQ(ev.ToJson(),
            "{\"v\":1,\"ts_ns\":50,\"type\":\"job.submit\",\"job\":3}");
}

TEST_F(EventsTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kJobRetry), "job.retry");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kEngineMachineLost),
               "engine.machine_lost");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kMachineLost),
               "machine.lost");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kPoolReadFailed),
               "pool.read_failed");
  EXPECT_EQ(obs::kEventSchemaVersion, 1);
}

TEST_F(EventsTest, DisabledEmitRecordsNothing) {
  obs::SetEventsEnabled(false);
  obs::EmitEvent(obs::EventType::kJobSubmit, 1);
  EXPECT_TRUE(obs::DrainEvents().empty());
}

TEST_F(EventsTest, AmbientJobIdFillsUnattributedEvents) {
  obs::SetCurrentJob(17);
  obs::EmitEvent(obs::EventType::kPoolReadFailed);       // inherits 17
  obs::EmitEvent(obs::EventType::kJobSubmit, 99);        // explicit wins
  obs::SetCurrentJob(0);
  const std::vector<obs::Event> events = obs::DrainEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].job_id, 17u);
  EXPECT_EQ(events[1].job_id, 99u);
}

// --- Chaos: every plane of a kill+recover run carries the job id ---

TEST_F(EventsTest, ChaosRunEventsCarryJobId) {
  const EdgeList graph = GenerateRmatX(11, 91);
  ASSERT_TRUE(
      fault::Configure("machine1:machine.kill@superstep=2", /*seed=*/5)
          .ok());

  ClusterConfig config;
  config.num_machines = 4;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir = (std::filesystem::temp_directory_path() /
                     "tgpp_events_chaos")
                        .string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  EngineOptions options;
  options.deterministic = true;
  options.checkpoint_every = 1;
  options.recv_timeout_ms = 20000;
  options.heartbeat_interval_ms = 5;
  options.heartbeat_timeout_ms = 100;
  options.job_id = 42;
  auto app = MakePageRankApp(system.partition(), /*iterations=*/6);
  auto stats = system.RunQuery(app, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(stats->recoveries, 1);

  const std::vector<obs::Event> events = obs::DrainEvents();
  int supersteps = 0, checkpoints = 0, recoveries = 0;
  int engine_lost = 0, fabric_lost = 0;
  for (const obs::Event& ev : events) {
    switch (ev.type) {
      case obs::EventType::kSuperstep:
        EXPECT_EQ(ev.job_id, 42u);
        EXPECT_GE(ev.superstep, 0);
        ++supersteps;
        break;
      case obs::EventType::kCheckpoint:
        EXPECT_EQ(ev.job_id, 42u);
        ++checkpoints;
        break;
      case obs::EventType::kRecovery:
        EXPECT_EQ(ev.job_id, 42u);
        ++recoveries;
        break;
      case obs::EventType::kEngineMachineLost:
        EXPECT_EQ(ev.job_id, 42u);
        EXPECT_EQ(ev.machine, 1);
        ++engine_lost;
        break;
      case obs::EventType::kMachineLost:
        EXPECT_EQ(ev.machine, 1);
        ++fabric_lost;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(supersteps, stats->supersteps);
  EXPECT_GE(checkpoints, 1);
  EXPECT_GE(recoveries, 1);
  EXPECT_GE(engine_lost, 1);
  EXPECT_GE(fabric_lost, 1);
  // Drain is sorted by timestamp.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_nanos, events[i].ts_nanos);
  }
}

// --- Concurrency + the JSONL sink ---

TEST_F(EventsTest, ConcurrentEmittersProduceWellFormedJsonl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tgpp_events_test.jsonl")
          .string();
  std::filesystem::remove(path);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::EmitEvent(obs::EventType::kSuperstep,
                       /*job_id=*/static_cast<uint64_t>(t + 1),
                       /*machine=*/t, /*superstep=*/i, "push", "active",
                       static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(obs::AppendEventsFile(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    auto parsed = service::JsonObject::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "torn line: " << line;
    auto v = parsed->GetInt("v");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, obs::kEventSchemaVersion);
    auto job = parsed->GetInt("job");
    ASSERT_TRUE(job.ok());
    EXPECT_GE(*job, 1);
    EXPECT_LE(*job, kThreads);
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
  std::filesystem::remove(path);
}

TEST_F(EventsTest, RingWrapIsCountedAsDropped) {
  // One thread emits far past the per-thread ring capacity without a
  // drain: the overflow must show up in EventStats().dropped, and the
  // drain must return at most one ring's worth.
  constexpr uint64_t kEmit = 10000;  // > kEventRingCapacity (4096)
  for (uint64_t i = 0; i < kEmit; ++i) {
    obs::EmitEvent(obs::EventType::kSuperstep, 1, -1,
                   static_cast<int>(i));
  }
  const obs::EventLogStats before = obs::EventStats();
  EXPECT_GE(before.recorded, kEmit);
  EXPECT_GE(before.dropped, 1u);
  const std::vector<obs::Event> events = obs::DrainEvents();
  EXPECT_LE(events.size(), kEmit - before.dropped + 1);
  const obs::EventLogStats after = obs::EventStats();
  EXPECT_EQ(after.dropped + static_cast<uint64_t>(events.size()),
            kEmit + (after.recorded - kEmit));
}

// --- HTTP introspection ---

// One-shot HTTP/1.0 GET against loopback `port`; returns the raw response
// (status line + headers + body) or "" on any socket failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST_F(EventsTest, HttpIntrospectionEndpoints) {
  const EdgeList graph = GenerateRmatX(10, 92);
  ClusterConfig config;
  config.num_machines = 2;
  config.memory_budget_bytes = 32ull << 20;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_events_http")
          .string();
  std::filesystem::remove_all(config.root_dir);
  TurboGraphSystem system(config);
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  service::JobManager manager(system.cluster(), system.partition());
  service::ServerOptions server_options;  // tcp_port 0 = ephemeral
  service::JobServer server(&manager, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  service::JobSpec spec;
  spec.query = "pr";
  spec.iterations = 4;
  auto id1 = manager.Submit(spec);
  auto id2 = manager.Submit(spec);
  ASSERT_TRUE(id1.ok() && id2.ok());
  ASSERT_TRUE(manager.Wait(*id1, 60000).ok());
  ASSERT_TRUE(manager.Wait(*id2, 60000).ok());

  // /metrics: Prometheus text exposition.
  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(HttpBody(metrics).find("# TYPE"), std::string::npos);

  // /jobs: both records, each with an embedded profile.
  const std::string jobs = HttpGet(server.port(), "/jobs");
  EXPECT_NE(jobs.find("200 OK"), std::string::npos);
  EXPECT_NE(jobs.find("application/json"), std::string::npos);
  std::string body = HttpBody(jobs);
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  auto parsed = service::JsonObject::Parse(body);
  ASSERT_TRUE(parsed.ok()) << body;
  auto array = parsed->GetArray("jobs");
  ASSERT_TRUE(array.ok());
  ASSERT_EQ(array->size(), 2u);
  for (const std::string& element : *array) {
    auto record = service::JsonObject::Parse(element);
    ASSERT_TRUE(record.ok()) << element;
    EXPECT_TRUE(record->Has("profile"));
    auto raw_profile = record->GetRaw("profile");
    ASSERT_TRUE(raw_profile.ok());
    auto profile = service::JsonObject::Parse(*raw_profile);
    ASSERT_TRUE(profile.ok()) << *raw_profile;
    auto supersteps = profile->GetInt("supersteps");
    ASSERT_TRUE(supersteps.ok());
    EXPECT_GE(*supersteps, 1);
  }

  // /healthz: 200 + ok:true while nothing is lost.
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);

  // Unknown path: 404 listing the real endpoints.
  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("/metrics"), std::string::npos);

  // The line protocol still works on the same port after HTTP traffic.
  auto client = service::ServiceClient::ConnectTcp("127.0.0.1",
                                                   server.port());
  ASSERT_TRUE(client.ok());
  auto response =
      client->Call(service::JsonWriter().Str("cmd", "jobs").Close());
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  server.Stop();
  manager.Shutdown();
}

}  // namespace
}  // namespace tgpp
