// End-to-end correctness of the NWSM engine: all five queries validated
// against the single-threaded reference implementations across graphs,
// cluster shapes, and partitioning schemes.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "algos/lcc.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tgpp_test" / name)
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

ClusterConfig SmallCluster(const std::string& name, int machines = 3) {
  ClusterConfig config;
  config.num_machines = machines;
  config.threads_per_machine = 2;
  config.numa_nodes_per_machine = 2;
  config.memory_budget_bytes = 16ull << 20;
  config.buffer_pool_frames = 32;
  config.root_dir = TestDir(name);
  return config;
}

EdgeList SmallRmat(int vertex_scale, uint64_t edges, uint64_t seed = 11) {
  RmatParams params;
  params.vertex_scale = vertex_scale;
  params.num_edges = edges;
  params.seed = seed;
  return GenerateRmat(params);
}

EdgeList SmallUndirectedRmat(int vertex_scale, uint64_t edges,
                             uint64_t seed = 11) {
  EdgeList graph = SmallRmat(vertex_scale, edges, seed);
  MakeUndirected(&graph);
  return graph;
}

TEST(EngineQueries, PageRankMatchesReference) {
  const EdgeList graph = SmallRmat(9, 4000);
  TurboGraphSystem system(SmallCluster("pr"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  auto app = MakePageRankApp(system.partition(), 3);
  std::vector<PageRankAttr> attrs;
  auto stats = system.RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->supersteps, 3);

  const std::vector<double> expected = ReferencePageRank(graph, 3);
  ASSERT_EQ(attrs.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(attrs[v].pr, expected[v], 1e-9) << "vertex " << v;
  }
}

TEST(EngineQueries, SsspMatchesReference) {
  const EdgeList graph = SmallUndirectedRmat(8, 2500);
  TurboGraphSystem system(SmallCluster("sssp"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  const VertexId source = 5;
  auto app = MakeSsspApp(system.partition(), source);
  std::vector<SsspAttr> attrs;
  auto stats = system.RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const std::vector<uint64_t> expected = ReferenceSssp(graph, source);
  ASSERT_EQ(attrs.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(attrs[v].dist, expected[v]) << "vertex " << v;
  }
}

TEST(EngineQueries, WccMatchesReference) {
  const EdgeList graph = SmallUndirectedRmat(8, 600, 23);
  TurboGraphSystem system(SmallCluster("wcc"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  auto app = MakeWccApp(system.partition());
  std::vector<WccAttr> attrs;
  auto stats = system.RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Labels must induce the same component structure (the engine labels in
  // the renumbered space; the reference labels by min old ID — compare by
  // component-partition equality).
  const std::vector<uint64_t> expected = ReferenceWcc(graph);
  ASSERT_EQ(attrs.size(), expected.size());
  std::map<uint64_t, uint64_t> engine_to_ref;
  std::map<uint64_t, uint64_t> ref_to_engine;
  for (VertexId v = 0; v < expected.size(); ++v) {
    const uint64_t e = attrs[v].label;
    const uint64_t r = expected[v];
    auto [it1, fresh1] = engine_to_ref.emplace(e, r);
    EXPECT_EQ(it1->second, r) << "engine label " << e << " split";
    auto [it2, fresh2] = ref_to_engine.emplace(r, e);
    EXPECT_EQ(it2->second, e) << "reference label " << r << " split";
  }
}

TEST(EngineQueries, TriangleCountMatchesReference) {
  const EdgeList graph = SmallUndirectedRmat(8, 3000, 31);
  TurboGraphSystem system(SmallCluster("tc"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  auto app = MakeTriangleCountingApp();
  auto stats = system.RunQuery(app);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->aggregate_sum, ReferenceTriangleCount(graph));
}

TEST(EngineQueries, LccMatchesReference) {
  const EdgeList graph = SmallUndirectedRmat(7, 1200, 37);
  TurboGraphSystem system(SmallCluster("lcc"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  auto app = MakeLccApp(system.partition());
  std::vector<LccAttr> attrs;
  auto stats = system.RunQuery(app, &attrs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const std::vector<double> expected = ReferenceLcc(graph);
  ASSERT_EQ(attrs.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(attrs[v].lcc, expected[v], 1e-12) << "vertex " << v;
  }
}

}  // namespace
}  // namespace tgpp
