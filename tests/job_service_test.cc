// Job service behaviour (docs/SERVICE.md): concurrent results match
// serial runs bit-for-bit, admission control blocks on the reservation
// ledger, cancellation releases budget and unblocks the queue, deadlines
// surface as Timeout, and the CLI exit-code table holds.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/system.h"
#include "graph/rmat.h"
#include "service/job_manager.h"
#include "service/wire.h"
#include "util/crc32.h"

namespace tgpp {
namespace {

using service::JobManager;
using service::JobRecord;
using service::JobServiceOptions;
using service::JobSpec;
using service::JobState;

ClusterConfig ServiceCluster(const std::string& name) {
  ClusterConfig config;
  config.num_machines = 2;
  config.memory_budget_bytes = 32ull << 20;
  config.buffer_pool_frames = 16;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_jobsvc" / name)
          .string();
  std::filesystem::remove_all(config.root_dir);
  return config;
}

template <typename V>
uint32_t DigestOf(const std::vector<V>& attrs) {
  return Crc32(attrs.data(), attrs.size() * sizeof(V));
}

JobSpec Spec(const std::string& query, int iterations = 5) {
  JobSpec spec;
  spec.query = query;
  spec.iterations = iterations;
  return spec;
}

// A spec that keeps a runner busy until cancelled (PageRank converges
// only at the iteration cap, and the cap is effectively unreachable).
JobSpec LongSpec() { return Spec("pr", /*iterations=*/1000000); }

TEST(JobService, ConcurrentResultsMatchSerialBitForBit) {
  const EdgeList graph = GenerateRmatX(13, 31);
  TurboGraphSystem system(ServiceCluster("concurrent"));
  ASSERT_TRUE(system.LoadGraph(graph, PartitionScheme::kBbp, /*q=*/2).ok());

  // Serial baselines through the same deterministic path `tgpp run
  // --deterministic` uses.
  EngineOptions det;
  det.deterministic = true;
  auto pr = MakePageRankApp(system.partition(), 5);
  std::vector<PageRankAttr> pr_attrs;
  ASSERT_TRUE(system.RunQuery(pr, &pr_attrs, det).ok());
  auto sssp = MakeSsspApp(system.partition(), /*source_old_id=*/0);
  std::vector<SsspAttr> sssp_attrs;
  ASSERT_TRUE(system.RunQuery(sssp, &sssp_attrs, det).ok());
  auto wcc = MakeWccApp(system.partition());
  std::vector<WccAttr> wcc_attrs;
  ASSERT_TRUE(system.RunQuery(wcc, &wcc_attrs, det).ok());

  JobServiceOptions options;
  options.max_running = 3;
  JobManager manager(system.cluster(), system.partition(), options);
  auto pr_id = manager.Submit(Spec("pr", 5));
  auto sssp_id = manager.Submit(Spec("sssp"));
  auto wcc_id = manager.Submit(Spec("wcc"));
  ASSERT_TRUE(pr_id.ok() && sssp_id.ok() && wcc_id.ok());

  auto pr_job = manager.Wait(*pr_id, 120000);
  auto sssp_job = manager.Wait(*sssp_id, 120000);
  auto wcc_job = manager.Wait(*wcc_id, 120000);
  ASSERT_TRUE(pr_job.ok()) << pr_job.status().ToString();
  ASSERT_TRUE(sssp_job.ok()) << sssp_job.status().ToString();
  ASSERT_TRUE(wcc_job.ok()) << wcc_job.status().ToString();
  EXPECT_EQ(pr_job->state, JobState::kDone) << pr_job->error;
  EXPECT_EQ(sssp_job->state, JobState::kDone) << sssp_job->error;
  EXPECT_EQ(wcc_job->state, JobState::kDone) << wcc_job->error;

  EXPECT_EQ(pr_job->result_crc, DigestOf(pr_attrs));
  EXPECT_EQ(sssp_job->result_crc, DigestOf(sssp_attrs));
  EXPECT_EQ(wcc_job->result_crc, DigestOf(wcc_attrs));
  EXPECT_EQ(manager.ledger().reserved(), 0u);
}

TEST(JobService, AdmissionBlocksUntilBudgetFrees) {
  const EdgeList graph = GenerateRmatX(12, 32);
  TurboGraphSystem system(ServiceCluster("admission"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobServiceOptions options;
  options.max_running = 2;  // slots would allow 2; the ledger allows 1
  options.ledger_capacity_override = 1000;
  options.reservation_override = 600;
  JobManager manager(system.cluster(), system.partition(), options);

  auto first = manager.Submit(Spec("pr", 3));
  ASSERT_TRUE(first.ok());
  auto second = manager.Submit(Spec("wcc"));
  ASSERT_TRUE(second.ok());

  // Admission is synchronous inside Submit: the first job holds 600 of
  // 1000 bytes, so the second must still be queued right now.
  auto blocked = manager.GetJob(*second);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->state, JobState::kQueued);
  EXPECT_EQ(manager.ledger().reserved(), 600u);

  // Once the first job releases its reservation the queue drains.
  auto done_first = manager.Wait(*first, 120000);
  ASSERT_TRUE(done_first.ok());
  EXPECT_EQ(done_first->state, JobState::kDone) << done_first->error;
  auto done_second = manager.Wait(*second, 120000);
  ASSERT_TRUE(done_second.ok());
  EXPECT_EQ(done_second->state, JobState::kDone) << done_second->error;
  EXPECT_EQ(manager.ledger().reserved(), 0u);
}

TEST(JobService, CancelMidRunReleasesBudgetAndAdmitsQueued) {
  const EdgeList graph = GenerateRmatX(12, 33);
  TurboGraphSystem system(ServiceCluster("cancel"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobServiceOptions options;
  options.max_running = 2;
  options.ledger_capacity_override = 600;  // one job at a time
  options.reservation_override = 600;
  JobManager manager(system.cluster(), system.partition(), options);

  auto victim = manager.Submit(LongSpec());
  ASSERT_TRUE(victim.ok());
  auto queued = manager.Submit(Spec("wcc"));
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(manager.GetJob(*queued)->state, JobState::kQueued);

  // Let the victim get into its superstep loop, then cancel it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(manager.Cancel(*victim).ok());
  auto cancelled = manager.Wait(*victim, 120000);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
  EXPECT_EQ(cancelled->status_code, "Cancelled");
  EXPECT_EQ(cancelled->reserved_bytes, 0u);

  // Its reservation freed the queued job.
  auto finished = manager.Wait(*queued, 120000);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->state, JobState::kDone) << finished->error;
  EXPECT_EQ(manager.ledger().reserved(), 0u);

  // Cancelling a terminal job is a no-op; unknown ids are NotFound.
  EXPECT_TRUE(manager.Cancel(*victim).ok());
  EXPECT_TRUE(manager.Cancel(99999).IsNotFound());
}

TEST(JobService, CancelQueuedJobNeverRuns) {
  const EdgeList graph = GenerateRmatX(12, 34);
  TurboGraphSystem system(ServiceCluster("cancelqueued"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobServiceOptions options;
  options.max_running = 1;
  JobManager manager(system.cluster(), system.partition(), options);
  auto runner = manager.Submit(LongSpec());
  auto queued = manager.Submit(Spec("pr", 2));
  ASSERT_TRUE(runner.ok() && queued.ok());

  ASSERT_TRUE(manager.Cancel(*queued).ok());
  auto record = manager.GetJob(*queued);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->supersteps, 0);

  ASSERT_TRUE(manager.Cancel(*runner).ok());
  EXPECT_EQ(manager.Wait(*runner, 120000)->state, JobState::kCancelled);
}

TEST(JobService, PriorityOrdersTheQueueFifoWithinBand) {
  const EdgeList graph = GenerateRmatX(12, 35);
  TurboGraphSystem system(ServiceCluster("priority"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobServiceOptions options;
  options.max_running = 1;
  JobManager manager(system.cluster(), system.partition(), options);
  auto runner = manager.Submit(LongSpec());
  ASSERT_TRUE(runner.ok());
  auto low = manager.Submit(Spec("wcc"));  // submitted first...
  JobSpec urgent = Spec("pr", 2);
  urgent.priority = 5;
  auto high = manager.Submit(urgent);      // ...but outranked
  ASSERT_TRUE(low.ok() && high.ok());

  ASSERT_TRUE(manager.Cancel(*runner).ok());
  auto high_job = manager.Wait(*high, 120000);
  auto low_job = manager.Wait(*low, 120000);
  ASSERT_TRUE(high_job.ok() && low_job.ok());
  EXPECT_EQ(high_job->state, JobState::kDone) << high_job->error;
  EXPECT_EQ(low_job->state, JobState::kDone) << low_job->error;
  // The low-priority job was submitted EARLIER yet admitted LATER, so it
  // waited strictly longer — admission order inverted by priority.
  EXPECT_GT(low_job->queue_wait_seconds, high_job->queue_wait_seconds);
}

TEST(JobService, DeadlineSurfacesAsTimeout) {
  const EdgeList graph = GenerateRmatX(12, 36);
  TurboGraphSystem system(ServiceCluster("deadline"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobManager manager(system.cluster(), system.partition());
  JobSpec spec = LongSpec();
  spec.deadline_ms = 150;
  auto id = manager.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto record = manager.Wait(*id, 120000);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, JobState::kFailed);
  EXPECT_EQ(record->status_code, "Timeout");
  EXPECT_EQ(manager.ledger().reserved(), 0u);
}

TEST(JobService, WaitTimeoutLeavesJobRunning) {
  const EdgeList graph = GenerateRmatX(12, 37);
  TurboGraphSystem system(ServiceCluster("waittimeout"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobManager manager(system.cluster(), system.partition());
  auto id = manager.Submit(LongSpec());
  ASSERT_TRUE(id.ok());
  auto waited = manager.Wait(*id, 50);
  EXPECT_TRUE(waited.status().IsTimeout()) << waited.status().ToString();
  auto record = manager.GetJob(*id);
  ASSERT_TRUE(record.ok());
  EXPECT_FALSE(service::IsTerminal(record->state));
  ASSERT_TRUE(manager.Cancel(*id).ok());
  EXPECT_EQ(manager.Wait(*id, 120000)->state, JobState::kCancelled);
}

TEST(JobService, RejectsUnknownQueriesAndSubmitAfterShutdown) {
  const EdgeList graph = GenerateRmatX(12, 38);
  TurboGraphSystem system(ServiceCluster("reject"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobManager manager(system.cluster(), system.partition());
  EXPECT_TRUE(manager.Submit(Spec("nope")).status().IsInvalidArgument());
  manager.Shutdown();
  EXPECT_TRUE(manager.Submit(Spec("pr")).status().IsAborted());
}

TEST(JobService, ShutdownCancelsEverything) {
  const EdgeList graph = GenerateRmatX(12, 39);
  TurboGraphSystem system(ServiceCluster("shutdown"));
  ASSERT_TRUE(system.LoadGraph(graph).ok());

  JobServiceOptions options;
  options.max_running = 1;
  auto manager = std::make_unique<JobManager>(system.cluster(),
                                              system.partition(), options);
  auto running = manager->Submit(LongSpec());
  auto queued = manager->Submit(Spec("wcc"));
  ASSERT_TRUE(running.ok() && queued.ok());
  manager->Shutdown();
  EXPECT_EQ(manager->GetJob(*running)->state, JobState::kCancelled);
  EXPECT_EQ(manager->GetJob(*queued)->state, JobState::kCancelled);
  EXPECT_EQ(manager->ledger().reserved(), 0u);
}

TEST(JobService, ExitCodeTable) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::Timeout("t")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("c")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("i")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("a")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::OutOfMemory("m")), 5);
}

TEST(JobService, WireCodecRoundTrips) {
  auto request = service::JsonObject::Parse(
      R"({"cmd":"submit","query":"sssp","iterations":3,"source":7,)"
      R"("priority":2,"deadline_ms":500,"deterministic":false})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  auto spec = service::ParseJobSpec(*request);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->query, "sssp");
  EXPECT_EQ(spec->iterations, 3);
  EXPECT_EQ(spec->source, 7u);
  EXPECT_EQ(spec->priority, 2);
  EXPECT_EQ(spec->deadline_ms, 500);
  EXPECT_FALSE(spec->deterministic);

  JobRecord record;
  record.id = 12;
  record.spec.query = "sssp";
  record.state = JobState::kFailed;
  record.error = "boom \"quoted\"";
  record.status_code = "Timeout";
  record.result_crc = 0xdeadbeef;
  auto round = service::JsonObject::Parse(service::JobRecordToJson(record));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round->GetInt("id"), 12);
  EXPECT_EQ(*round->GetString("state"), "failed");
  EXPECT_EQ(*round->GetString("crc32"), "deadbeef");
  EXPECT_EQ(*round->GetString("error"), "boom \"quoted\"");
  EXPECT_EQ(*round->GetString("code"), "Timeout");

  // Nested arrays survive as raw slices.
  auto list = service::JsonObject::Parse(
      R"({"ok":true,"jobs":[{"id":1},{"id":2}]})");
  ASSERT_TRUE(list.ok());
  auto jobs = list->GetArray("jobs");
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ(*service::JsonObject::Parse((*jobs)[1])->GetInt("id"), 2);

  EXPECT_FALSE(service::JsonObject::Parse("{bad json").ok());
  EXPECT_FALSE(service::JsonObject::Parse(R"({"a":})").ok());
}

}  // namespace
}  // namespace tgpp
