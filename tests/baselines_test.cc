// Correctness and OOM behaviour of the baseline systems.
//
// Every baseline must produce answers identical to the reference
// implementations when given enough memory, and must fail with a clean
// kOutOfMemory (never a crash) when the budget is too small — that
// behavioural contrast against TurboGraph++ is the heart of the paper's
// evaluation.

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/reference.h"
#include "baselines/baseline.h"
#include "graph/rmat.h"

namespace tgpp {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tgpp_baseline" / name)
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

ClusterConfig BaselineCluster(const std::string& name,
                              uint64_t budget = 64ull << 20) {
  ClusterConfig config;
  config.num_machines = 3;
  config.threads_per_machine = 1;
  config.memory_budget_bytes = budget;
  config.buffer_pool_frames = 16;
  config.root_dir = TestDir(name);
  return config;
}

EdgeList TestGraph(uint64_t seed = 77) {
  RmatParams params;
  params.vertex_scale = 8;
  params.num_edges = 2000;
  params.seed = seed;
  EdgeList graph = GenerateRmat(params);
  MakeUndirected(&graph);
  return graph;
}

using Factory = std::unique_ptr<BaselineSystem> (*)(Cluster*);

struct BaselineCase {
  const char* label;
  Factory factory;
  bool supports_pr;
  bool supports_sssp;
  bool supports_tc;
};

class BaselineCorrectness : public ::testing::TestWithParam<BaselineCase> {
};

TEST_P(BaselineCorrectness, PageRankMatchesReference) {
  const BaselineCase& bc = GetParam();
  if (!bc.supports_pr) GTEST_SKIP();
  const EdgeList graph = TestGraph();
  Cluster cluster(BaselineCluster(std::string("pr_") + bc.label));
  auto system = bc.factory(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunPageRank(3);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const std::vector<double> expected = ReferencePageRank(graph, 3);
  ASSERT_EQ(system->pagerank().size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(system->pagerank()[v], expected[v], 1e-9)
        << bc.label << " vertex " << v;
  }
}

TEST_P(BaselineCorrectness, SsspMatchesReference) {
  const BaselineCase& bc = GetParam();
  if (!bc.supports_sssp) GTEST_SKIP();
  const EdgeList graph = TestGraph(78);
  Cluster cluster(BaselineCluster(std::string("sssp_") + bc.label));
  auto system = bc.factory(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunSssp(3);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const std::vector<uint64_t> expected = ReferenceSssp(graph, 3);
  ASSERT_EQ(system->distances().size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(system->distances()[v], expected[v])
        << bc.label << " vertex " << v;
  }
}

TEST_P(BaselineCorrectness, WccMatchesReference) {
  const BaselineCase& bc = GetParam();
  if (!bc.supports_sssp) GTEST_SKIP();
  const EdgeList graph = TestGraph(79);
  Cluster cluster(BaselineCluster(std::string("wcc_") + bc.label));
  auto system = bc.factory(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunWcc();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const std::vector<uint64_t> expected = ReferenceWcc(graph);
  // Min-label propagation labels components by smallest member id, which
  // is exactly what the reference computes.
  ASSERT_EQ(system->labels().size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(system->labels()[v], expected[v])
        << bc.label << " vertex " << v;
  }
}

TEST_P(BaselineCorrectness, TriangleCountMatchesReference) {
  const BaselineCase& bc = GetParam();
  const EdgeList graph = TestGraph(80);
  Cluster cluster(BaselineCluster(std::string("tc_") + bc.label));
  auto system = bc.factory(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunTriangleCount();
  if (!bc.supports_tc) {
    EXPECT_EQ(result.status.code(), StatusCode::kNotSupported);
    return;
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.aggregate, ReferenceTriangleCount(graph));
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineCorrectness,
    ::testing::Values(
        BaselineCase{"pregel", &MakePregelLike, true, true, true},
        BaselineCase{"graphx", &MakeGraphxLike, true, true, true},
        BaselineCase{"giraph", &MakeGiraphLike, true, true, true},
        BaselineCase{"hybridgraph", &MakeHybridGraphLike, true, true, true},
        BaselineCase{"gemini", &MakeGeminiLike, true, true, false},
        BaselineCase{"chaos", &MakeChaosLike, true, true, false},
        BaselineCase{"pte", &MakePte, false, false, true}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return std::string(info.param.label);
    });

TEST(BaselineOom, PregelTriangleCountingRunsOutOfMemory) {
  // A tight budget: the sum-of-degrees-squared message volume of the
  // vertex-centric TC workaround cannot fit (Fig 1(b) behaviour).
  EdgeList graph = GenerateRmatX(14, 5);
  MakeUndirected(&graph);
  Cluster cluster(BaselineCluster("oom_pregel_tc", /*budget=*/1ull << 20));
  auto system = MakePregelLike(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunTriangleCount();
  EXPECT_TRUE(result.status.IsOutOfMemory()) << result.status.ToString();
}

TEST(BaselineOom, GeminiFailsToLoadLargeGraph) {
  // Gemini's partitioning blow-up: resident 2x + transient 2x graph size
  // exceeds the budget (the paper's "crash during partitioning").
  EdgeList graph = GenerateRmatX(15, 6);
  Cluster cluster(BaselineCluster("oom_gemini_load", /*budget=*/160 << 10));
  auto system = MakeGeminiLike(&cluster);
  Status status = system->Load(graph);
  EXPECT_TRUE(status.IsOutOfMemory()) << status.ToString();
}

TEST(BaselineOom, ChaosSurvivesWhereGeminiFails) {
  // The external-memory system loads the same graph under the same budget
  // that kills the in-memory system — the scalability contrast of Fig 1.
  EdgeList graph = GenerateRmatX(15, 6);
  Cluster cluster(BaselineCluster("oom_chaos_load", /*budget=*/160 << 10));
  auto system = MakeChaosLike(&cluster);
  ASSERT_TRUE(system->Load(graph).ok());
  BaselineResult result = system->RunPageRank(1);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

}  // namespace
}  // namespace tgpp
