// Deterministic fault-injection framework (common/fault_injector.h).

#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace tgpp {
namespace {

// Every test leaves the process-global injector disarmed.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }
};

TEST_F(FaultInjectorTest, DisabledIsInert) {
  fault::Disarm();
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Hit("disk.read", 0).has_value());
  EXPECT_EQ(fault::ActiveSpec(), "");
  EXPECT_EQ(fault::ActiveSeed(), 0u);
}

TEST_F(FaultInjectorTest, EmptySpecDisarms) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error").ok());
  EXPECT_TRUE(fault::Armed());
  ASSERT_TRUE(fault::Configure("").ok());
  EXPECT_FALSE(fault::Armed());
}

TEST_F(FaultInjectorTest, AlwaysRuleFiresEveryHit) {
  ASSERT_TRUE(fault::Configure("disk.read:io_error").ok());
  for (int i = 0; i < 5; ++i) {
    auto hit = fault::Hit("disk.read", i % 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->action, fault::Action::kIoError);
  }
  EXPECT_EQ(fault::InjectedCount(), 5u);
  EXPECT_FALSE(fault::Hit("disk.write", 0).has_value());
}

TEST_F(FaultInjectorTest, DefaultActionsPerSite) {
  ASSERT_TRUE(fault::Configure("fabric.send").ok());
  EXPECT_EQ(fault::Hit("fabric.send", 0)->action, fault::Action::kDrop);
  ASSERT_TRUE(fault::Configure("crash").ok());
  EXPECT_EQ(fault::Hit("crash", 0)->action, fault::Action::kCrash);
  ASSERT_TRUE(fault::Configure("disk.sync").ok());
  EXPECT_EQ(fault::Hit("disk.sync", 0)->action, fault::Action::kIoError);
}

TEST_F(FaultInjectorTest, MachineScopeOnlyMatchesThatMachine) {
  ASSERT_TRUE(fault::Configure("machine2:disk.read:io_error").ok());
  EXPECT_FALSE(fault::Hit("disk.read", 0).has_value());
  EXPECT_FALSE(fault::Hit("disk.read", 1).has_value());
  EXPECT_TRUE(fault::Hit("disk.read", 2).has_value());
  // Unknown machine (-1) never matches a scoped rule.
  EXPECT_FALSE(fault::Hit("disk.read", -1).has_value());
}

TEST_F(FaultInjectorTest, NthFiresExactlyOnce) {
  ASSERT_TRUE(fault::Configure("fabric.send:drop@n=3").ok());
  EXPECT_FALSE(fault::Hit("fabric.send", 0).has_value());
  EXPECT_FALSE(fault::Hit("fabric.send", 0).has_value());
  EXPECT_TRUE(fault::Hit("fabric.send", 0).has_value());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fault::Hit("fabric.send", 0).has_value());
  }
  EXPECT_EQ(fault::InjectedCount(), 1u);
}

TEST_F(FaultInjectorTest, OnceFiresOnFirstHitOnly) {
  ASSERT_TRUE(fault::Configure("disk.write:timeout@once").ok());
  auto hit = fault::Hit("disk.write", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, fault::Action::kTimeout);
  EXPECT_FALSE(fault::Hit("disk.write", 1).has_value());
}

TEST_F(FaultInjectorTest, DelayCarriesMsParameter) {
  ASSERT_TRUE(fault::Configure("fabric.send:delay@ms=7,once").ok());
  auto hit = fault::Hit("fabric.send", 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, fault::Action::kDelay);
  EXPECT_EQ(hit->param_ms, 7u);
}

TEST_F(FaultInjectorTest, SuperstepGateRespectsClockAndDisarmsAfterFiring) {
  ASSERT_TRUE(fault::Configure("machine1:crash@superstep=3").ok());
  // Initial clock is -1: gated rules never match.
  EXPECT_FALSE(fault::Hit("crash", 1).has_value());
  fault::SetSuperstep(2);
  EXPECT_FALSE(fault::Hit("crash", 1).has_value());
  fault::SetSuperstep(3);
  EXPECT_FALSE(fault::Hit("crash", 0).has_value());  // wrong machine
  EXPECT_TRUE(fault::Hit("crash", 1).has_value());
  // A replay of superstep 3 after recovery must not crash again.
  EXPECT_FALSE(fault::Hit("crash", 1).has_value());
  fault::SetSuperstep(3);
  EXPECT_FALSE(fault::Hit("crash", 1).has_value());
}

// The firing pattern of a p= rule is a pure function of (seed, rule
// index, hit number): replaying the same hit sequence reproduces it bit
// for bit, and a different seed produces a different pattern.
TEST_F(FaultInjectorTest, ProbabilityIsDeterministicInSeed) {
  auto pattern = [](uint64_t seed) {
    EXPECT_TRUE(fault::Configure("disk.read:io_error@p=0.2", seed).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 400; ++i) {
      fired.push_back(fault::Hit("disk.read", 0).has_value());
    }
    return fired;
  };
  const std::vector<bool> a = pattern(7);
  const std::vector<bool> b = pattern(7);
  const std::vector<bool> c = pattern(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  size_t fires = 0;
  for (bool f : a) fires += f;
  // ~80 expected; generous bounds just catch always/never bugs.
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 200u);
}

TEST_F(FaultInjectorTest, ProbabilityEdgeCases) {
  ASSERT_TRUE(fault::Configure("disk.read@p=0", 1).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::Hit("disk.read", 0).has_value());
  }
  ASSERT_TRUE(fault::Configure("disk.read@p=1", 1).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fault::Hit("disk.read", 0).has_value());
  }
}

TEST_F(FaultInjectorTest, MultipleRulesFirstMatchWins) {
  ASSERT_TRUE(
      fault::Configure("disk.read:timeout@n=2; disk.read:io_error").ok());
  // Hit 1: rule 0 counts but does not fire (n=2), rule 1 fires.
  EXPECT_EQ(fault::Hit("disk.read", 0)->action, fault::Action::kIoError);
  // Hit 2: rule 0 fires first.
  EXPECT_EQ(fault::Hit("disk.read", 0)->action, fault::Action::kTimeout);
  EXPECT_EQ(fault::Hit("disk.read", 0)->action, fault::Action::kIoError);
}

TEST_F(FaultInjectorTest, ConfigureRecordsSpecAndSeed) {
  ASSERT_TRUE(fault::Configure("fabric.send:drop@n=500", 99).ok());
  EXPECT_EQ(fault::ActiveSpec(), "fabric.send:drop@n=500");
  EXPECT_EQ(fault::ActiveSeed(), 99u);
  EXPECT_EQ(fault::InjectedCount(), 0u);
}

TEST_F(FaultInjectorTest, ParseRejectsMalformedSpecs) {
  EXPECT_TRUE(fault::Configure("disk.everything").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read:explode").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read@p=2").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read@p=-0.5").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read@n=0").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read@sometimes").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("machineX:disk.read").IsInvalidArgument());
  EXPECT_TRUE(fault::Configure("disk.read:io_error:extra")
                  .IsInvalidArgument());
  EXPECT_TRUE(fault::Configure(";;").ok());  // empty rules are skipped
  EXPECT_FALSE(fault::Armed());
  // A failed Configure is transactional: the previous spec stays armed.
  ASSERT_TRUE(fault::Configure("disk.read:io_error").ok());
  EXPECT_TRUE(fault::Configure("bogus.site").IsInvalidArgument());
  EXPECT_TRUE(fault::Armed());
  EXPECT_EQ(fault::ActiveSpec(), "disk.read:io_error");
}

TEST_F(FaultInjectorTest, WhitespaceAndMultiRuleSpecs) {
  ASSERT_TRUE(fault::Configure(" disk.read : io_error @ once ;"
                               " machine1 : fabric.send : drop @ n=1 ")
                  .ok());
  EXPECT_TRUE(fault::Hit("disk.read", 0).has_value());
  EXPECT_FALSE(fault::Hit("fabric.send", 0).has_value());
  EXPECT_TRUE(fault::Hit("fabric.send", 1).has_value());
}

}  // namespace
}  // namespace tgpp
