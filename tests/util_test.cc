// Utility layer: bitmap, thread pool, memory budget, histogram, RNG.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/bitmap.h"
#include "util/histogram.h"
#include "util/memory_budget.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tgpp {
namespace {

// --- AtomicBitmap ---

TEST(Bitmap, SetTestClear) {
  AtomicBitmap bitmap(200);
  EXPECT_FALSE(bitmap.Test(0));
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(64);
  bitmap.Set(199);
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.Test(63));
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_TRUE(bitmap.Test(199));
  EXPECT_FALSE(bitmap.Test(100));
  EXPECT_EQ(bitmap.CountSet(), 4u);
  bitmap.Clear(63);
  EXPECT_FALSE(bitmap.Test(63));
  EXPECT_EQ(bitmap.CountSet(), 3u);
}

TEST(Bitmap, TestAndSetReportsFirstSetter) {
  AtomicBitmap bitmap(64);
  EXPECT_TRUE(bitmap.TestAndSet(7));
  EXPECT_FALSE(bitmap.TestAndSet(7));
}

TEST(Bitmap, SetAllRespectsSize) {
  AtomicBitmap bitmap(70);  // crosses a word boundary
  bitmap.SetAll();
  EXPECT_EQ(bitmap.CountSet(), 70u);
  bitmap.ClearAll();
  EXPECT_EQ(bitmap.CountSet(), 0u);
  EXPECT_FALSE(bitmap.AnySet());
}

TEST(Bitmap, ForEachSetRangeBoundaries) {
  AtomicBitmap bitmap(256);
  const std::set<uint64_t> bits = {0, 1, 63, 64, 65, 127, 128, 200, 255};
  for (uint64_t b : bits) bitmap.Set(b);

  std::set<uint64_t> seen;
  bitmap.ForEachSet(1, 255, [&](uint64_t b) { seen.insert(b); });
  std::set<uint64_t> expected;
  for (uint64_t b : bits) {
    if (b >= 1 && b < 255) expected.insert(b);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(bitmap.CountSetInRange(64, 129), 4u);  // 64, 65, 127, 128
}

TEST(Bitmap, ForEachSetAscending) {
  AtomicBitmap bitmap(512);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) bitmap.Set(rng.NextBounded(512));
  uint64_t prev = 0;
  bool first = true;
  bitmap.ForEachSet([&](uint64_t b) {
    if (!first) EXPECT_GT(b, prev);
    prev = b;
    first = false;
  });
}

TEST(Bitmap, ConcurrentSetsAllLand) {
  AtomicBitmap bitmap(4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bitmap, t] {
      for (uint64_t b = t; b < 4096; b += 4) bitmap.Set(b);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bitmap.CountSet(), 4096u);
}

// --- ThreadPool ---

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, AccountsTaskCpuTime) {
  ThreadPool pool(1);
  pool.Submit([] {
    volatile uint64_t x = 0;
    for (int i = 0; i < 2000000; ++i) x += i;
  });
  pool.Wait();
  EXPECT_GT(pool.TotalTaskCpuSeconds(), 0.0);
}

// --- MemoryBudget ---

TEST(MemoryBudget, ChargeAndRelease) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600).ok());
  EXPECT_EQ(budget.used_bytes(), 600u);
  EXPECT_EQ(budget.available_bytes(), 400u);
  EXPECT_TRUE(budget.TryCharge(400).ok());
  EXPECT_FALSE(budget.TryCharge(1).ok());
  budget.Release(500);
  EXPECT_TRUE(budget.TryCharge(500).ok());
}

TEST(MemoryBudget, OverchargeIsOutOfMemoryAndNotApplied) {
  MemoryBudget budget(100);
  Status s = budget.TryCharge(101);
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(MemoryBudget, TracksPeak) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.TryCharge(700).ok());
  budget.Release(700);
  ASSERT_TRUE(budget.TryCharge(100).ok());
  EXPECT_EQ(budget.peak_bytes(), 700u);
  budget.ResetUsage();
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 0u);
}

TEST(MemoryBudget, ScopedChargeReleasesOnExit) {
  MemoryBudget budget(100);
  {
    ScopedCharge charge(&budget, 60);
    EXPECT_TRUE(charge.ok());
    EXPECT_EQ(budget.used_bytes(), 60u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
  {
    ScopedCharge charge(&budget, 200);
    EXPECT_FALSE(charge.ok());
    EXPECT_EQ(budget.used_bytes(), 0u);
  }
}

TEST(MemoryBudget, ConcurrentChargesNeverExceedTotal) {
  MemoryBudget budget(10000);
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (budget.TryCharge(7).ok()) granted.fetch_add(7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(granted.load(), 10000u);
  EXPECT_EQ(budget.used_bytes(), granted.load());
}

// --- Histogram ---

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v : {1, 2, 4, 8, 100}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 115u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 23.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.Add(10);
  b.Add(20);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 60u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(Histogram, QuantilesAreMonotonic) {
  Histogram h;
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextBounded(1000000));
  EXPECT_LE(h.ApproxQuantile(0.1), h.ApproxQuantile(0.5));
  EXPECT_LE(h.ApproxQuantile(0.5), h.ApproxQuantile(0.99));
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
}

TEST(Histogram, QuantileOfConstantDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(42);
  // Every value is 42, so every quantile clamps to [min, max] = [42, 42].
  for (double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileOnKnownBimodalDistribution) {
  // 90 small values and 10 large ones: the median must land in the small
  // mode's bucket ([1, 2)) and p95 in the large mode's ([2^20, 2^21),
  // clamped to the observed max).
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Add(1);
  for (int i = 0; i < 10; ++i) h.Add(1u << 20);
  EXPECT_GE(h.Quantile(0.5), 1.0);
  EXPECT_LT(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), static_cast<double>(1u << 20));
}

TEST(Histogram, QuantileUniformWithinBucketAccuracy) {
  // Uniform over [0, 1000): exponential buckets + linear interpolation
  // within a bucket keep the estimate within one bucket's width (a factor
  // of 2) of the true quantile.
  Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Add(v);
  for (double q : {0.25, 0.5, 0.9}) {
    const double truth = q * 1000;
    EXPECT_GE(h.Quantile(q), truth / 2) << "q=" << q;
    EXPECT_LE(h.Quantile(q), truth * 2) << "q=" << q;
  }
}

TEST(Histogram, MergedQuantilesMatchCombinedHistogram) {
  // Merging must produce bucket-identical state to feeding one histogram
  // all the values, so the quantiles agree exactly.
  Histogram lo, hi, all;
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const uint64_t small = rng.NextBounded(100);
    const uint64_t large = 10000 + rng.NextBounded(100000);
    lo.Add(small);
    hi.Add(large);
    all.Add(small);
    all.Add(large);
  }
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), all.count());
  EXPECT_EQ(lo.sum(), all.sum());
  for (double q : {0.1, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(lo.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
}

// --- RNG ---

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    all_equal &= (va == b.Next());
    any_diff_seed |= (va != c.Next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  EXPECT_NE(Mix64(123), Mix64(124));
}

}  // namespace
}  // namespace tgpp
