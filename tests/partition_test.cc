// Partitioning invariants, parameterized over scheme x machines x q.
//
// The properties every scheme must satisfy:
//  - renumbering is a bijection, machine ranges are consecutive and
//    disjoint, and every edge lands in exactly one chunk whose src/dst
//    ranges contain it;
//  - reading all chunk pages back reproduces the edge multiset exactly;
//  - sub-chunks of one (i, j) chunk own disjoint destination ranges (the
//    CAS-free NUMA property);
//  - the two-level page index brackets every record's source.
// BBP must additionally balance edges well and order IDs by degree.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "cluster/cluster.h"
#include "graph/degree.h"
#include "graph/rmat.h"
#include "partition/partitioner.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"

namespace tgpp {
namespace {

struct Case {
  PartitionScheme scheme;
  int machines;
  int q;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string s = PartitionSchemeName(info.param.scheme);
  for (char& c : s) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s + "_p" + std::to_string(info.param.machines) + "_q" +
         std::to_string(info.param.q);
}

class PartitionProperty : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const Case& c = GetParam();
    ClusterConfig config;
    config.num_machines = c.machines;
    config.numa_nodes_per_machine = 2;
    config.root_dir = (std::filesystem::temp_directory_path() /
                       "tgpp_partition" / CaseName({GetParam(), 0}))
                          .string();
    std::filesystem::remove_all(config.root_dir);
    cluster_ = std::make_unique<Cluster>(config);
    graph_ = GenerateRmatX(13, 77);
    PartitionOptions options;
    options.scheme = c.scheme;
    options.q = c.q;
    auto pg = PartitionGraph(cluster_.get(), graph_, options);
    ASSERT_TRUE(pg.ok()) << pg.status().ToString();
    pg_ = std::move(pg).value();
  }

  std::unique_ptr<Cluster> cluster_;
  EdgeList graph_;
  PartitionedGraph pg_;
};

TEST_P(PartitionProperty, RenumberingIsABijection) {
  std::vector<bool> seen(pg_.num_vertices, false);
  for (VertexId old_id = 0; old_id < pg_.num_vertices; ++old_id) {
    const VertexId new_id = pg_.old_to_new[old_id];
    ASSERT_LT(new_id, pg_.num_vertices);
    EXPECT_FALSE(seen[new_id]);
    seen[new_id] = true;
    EXPECT_EQ(pg_.new_to_old[new_id], old_id);
  }
}

TEST_P(PartitionProperty, MachineRangesAreConsecutive) {
  VertexId cursor = 0;
  for (int m = 0; m < pg_.p; ++m) {
    EXPECT_EQ(pg_.MachineRange(m).begin, cursor);
    cursor = pg_.MachineRange(m).end;
    for (VertexId v = pg_.MachineRange(m).begin;
         v < pg_.MachineRange(m).end; ++v) {
      EXPECT_EQ(pg_.OwnerOf(v), m);
    }
  }
  EXPECT_EQ(cursor, pg_.num_vertices);
}

TEST_P(PartitionProperty, VertexChunksTileEachMachine) {
  for (int m = 0; m < pg_.p; ++m) {
    VertexId cursor = pg_.MachineRange(m).begin;
    for (int c = 0; c < pg_.q; ++c) {
      const VertexRange chunk = pg_.VertexChunkRange(m, c);
      EXPECT_EQ(chunk.begin, cursor);
      cursor = chunk.end;
    }
    EXPECT_EQ(cursor, pg_.MachineRange(m).end);
  }
}

TEST_P(PartitionProperty, EveryEdgeStoredExactlyOnceInItsChunk) {
  // Rebuild the expected multiset in the renumbered space.
  std::map<Edge, int> expected;
  for (const Edge& e : graph_.edges) {
    ++expected[Edge{pg_.old_to_new[e.src], pg_.old_to_new[e.dst]}];
  }

  std::map<Edge, int> found;
  uint64_t total = 0;
  for (int m = 0; m < pg_.p; ++m) {
    auto file = PageFile::Open(cluster_->machine(m)->disk(),
                               PartitionedGraph::kEdgeFileName);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> buffer(kPageSize);
    for (const EdgeChunkInfo& chunk : pg_.machines[m].chunks) {
      for (uint64_t page = chunk.first_page;
           page < chunk.first_page + chunk.num_pages; ++page) {
        ASSERT_TRUE(file->ReadPage(page, buffer.data()).ok());
        SlottedPageReader reader(buffer.data());
        ASSERT_TRUE(reader.Validate().ok());
        for (uint32_t s = 0; s < reader.num_slots(); ++s) {
          const VertexId src = reader.SrcAt(s);
          EXPECT_TRUE(chunk.src_range.Contains(src));
          for (VertexId dst : reader.DstsAt(s)) {
            EXPECT_TRUE(chunk.dst_range.Contains(dst))
                << "dst " << dst << " outside sub-chunk range";
            ++found[Edge{src, dst}];
            ++total;
          }
        }
      }
    }
  }
  EXPECT_EQ(total, graph_.num_edges());
  EXPECT_EQ(found, expected);
}

TEST_P(PartitionProperty, SubChunksHaveDisjointDstRanges) {
  for (int m = 0; m < pg_.p; ++m) {
    const auto& chunks = pg_.machines[m].chunks;
    // chunks are ordered (i, j, sub); within one (i, j), non-empty
    // sub-chunk dst ranges must not overlap.
    for (size_t a = 0; a + 1 < chunks.size(); ++a) {
      const EdgeChunkInfo& x = chunks[a];
      const EdgeChunkInfo& y = chunks[a + 1];
      if (x.src_chunk != y.src_chunk || x.dst_chunk != y.dst_chunk) {
        continue;
      }
      if (x.num_edges == 0 || y.num_edges == 0) continue;
      EXPECT_LE(x.dst_range.end, y.dst_range.begin)
          << "machine " << m << " chunk (" << x.src_chunk << ","
          << x.dst_chunk << ") subs overlap";
    }
  }
}

TEST_P(PartitionProperty, PageIndexBracketsRecords) {
  for (int m = 0; m < pg_.p; ++m) {
    auto file = PageFile::Open(cluster_->machine(m)->disk(),
                               PartitionedGraph::kEdgeFileName);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> buffer(kPageSize);
    for (const PageIndexEntry& entry : pg_.machines[m].page_index) {
      ASSERT_TRUE(file->ReadPage(entry.page_no, buffer.data()).ok());
      SlottedPageReader reader(buffer.data());
      for (uint32_t s = 0; s < reader.num_slots(); ++s) {
        EXPECT_GE(reader.SrcAt(s), entry.src_min);
        EXPECT_LE(reader.SrcAt(s), entry.src_max);
      }
    }
  }
}

TEST_P(PartitionProperty, DegreesIndexedByNewId) {
  const auto old_degrees = ComputeOutDegrees(graph_);
  for (VertexId old_id = 0; old_id < pg_.num_vertices; ++old_id) {
    EXPECT_EQ(pg_.out_degree[pg_.old_to_new[old_id]], old_degrees[old_id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PartitionProperty,
    ::testing::Values(Case{PartitionScheme::kBbp, 2, 1},
                      Case{PartitionScheme::kBbp, 4, 1},
                      Case{PartitionScheme::kBbp, 4, 3},
                      Case{PartitionScheme::kBbp, 3, 2},
                      Case{PartitionScheme::kRandom, 4, 2},
                      Case{PartitionScheme::kHashPregel, 4, 2},
                      Case{PartitionScheme::kHashGraphx, 3, 1}),
    CaseName);

// --- BBP-specific guarantees ---

class BbpSpecific : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_machines = 4;
    config.root_dir =
        (std::filesystem::temp_directory_path() / "tgpp_bbp").string();
    std::filesystem::remove_all(config.root_dir);
    cluster_ = std::make_unique<Cluster>(config);
    graph_ = GenerateRmatX(14, 99);
    PartitionOptions options;
    options.scheme = PartitionScheme::kBbp;
    options.q = 2;
    auto pg = PartitionGraph(cluster_.get(), graph_, options);
    ASSERT_TRUE(pg.ok());
    pg_ = std::move(pg).value();
  }

  std::unique_ptr<Cluster> cluster_;
  EdgeList graph_;
  PartitionedGraph pg_;
};

TEST_F(BbpSpecific, BalancesEdgesWithinTolerance) {
  // Round-robin degree dealing keeps max/mean close to 1 even on a
  // heavily skewed graph.
  EXPECT_LT(pg_.EdgeBalanceRatio(), 1.15);
}

TEST_F(BbpSpecific, BalancesVertexCounts) {
  uint64_t min_v = ~0ull, max_v = 0;
  for (int m = 0; m < pg_.p; ++m) {
    min_v = std::min(min_v, pg_.MachineRange(m).size());
    max_v = std::max(max_v, pg_.MachineRange(m).size());
  }
  EXPECT_LE(max_v - min_v, 1u);
}

TEST_F(BbpSpecific, IdsAscendByDegreeWithinMachine) {
  for (int m = 0; m < pg_.p; ++m) {
    const VertexRange range = pg_.MachineRange(m);
    for (VertexId v = range.begin; v + 1 < range.end; ++v) {
      EXPECT_LE(pg_.out_degree[v], pg_.out_degree[v + 1])
          << "machine " << m << " id " << v;
    }
  }
}

TEST_F(BbpSpecific, NearOptimalBalanceOnExtremeSkew) {
  // Strongly skewed graph with a monster hub. Any vertex-disjoint
  // partitioning is lower-bounded by max(|E|/p, d_max); BBP must land
  // within 15% of that bound.
  RmatParams params;
  params.vertex_scale = 10;
  params.num_edges = 1 << 14;
  params.a = 0.7;
  params.b = 0.15;
  params.c = 0.1;
  params.seed = 5;
  const EdgeList skewed = GenerateRmat(params);
  const DegreeStats stats = ComputeDegreeStats(skewed);

  ClusterConfig config;
  config.num_machines = 4;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_bbp_skew").string();
  std::filesystem::remove_all(config.root_dir);
  Cluster cluster(config);

  PartitionOptions bbp_opts;
  bbp_opts.scheme = PartitionScheme::kBbp;
  auto bbp = PartitionGraph(&cluster, skewed, bbp_opts);
  ASSERT_TRUE(bbp.ok());

  const double mean =
      static_cast<double>(skewed.num_edges()) / config.num_machines;
  const double optimal_ratio =
      std::max(1.0, static_cast<double>(stats.max_degree) / mean);
  EXPECT_LE(bbp->EdgeBalanceRatio(), optimal_ratio * 1.15)
      << "d_max=" << stats.max_degree;
}

TEST(PartitionErrors, RejectsNonPositiveQ) {
  ClusterConfig config;
  config.num_machines = 2;
  config.root_dir =
      (std::filesystem::temp_directory_path() / "tgpp_badq").string();
  std::filesystem::remove_all(config.root_dir);
  Cluster cluster(config);
  PartitionOptions options;
  options.q = 0;
  EXPECT_FALSE(PartitionGraph(&cluster, GenerateRmatX(8, 1), options).ok());
}

}  // namespace
}  // namespace tgpp
