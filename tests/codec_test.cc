// POD payload codec used by all fabric message formats.

#include <gtest/gtest.h>

#include "core/codec.h"
#include "graph/types.h"

namespace tgpp {
namespace {

TEST(Codec, PodRoundtrip) {
  std::vector<uint8_t> buf;
  AppendPod<uint8_t>(&buf, 7);
  AppendPod<uint64_t>(&buf, 0xDEADBEEFCAFEull);
  AppendPod<double>(&buf, 2.5);
  EXPECT_EQ(buf.size(), 1 + 8 + 8u);

  PodReader reader(buf);
  EXPECT_EQ(reader.Read<uint8_t>(), 7);
  EXPECT_EQ(reader.Read<uint64_t>(), 0xDEADBEEFCAFEull);
  EXPECT_DOUBLE_EQ(reader.Read<double>(), 2.5);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Codec, SpanRoundtrip) {
  const std::vector<VertexId> ids = {1, 5, 42, 1ull << 40};
  std::vector<uint8_t> buf;
  AppendPod<uint64_t>(&buf, ids.size());
  AppendPodSpan<VertexId>(&buf, ids);

  PodReader reader(buf);
  const uint64_t count = reader.Read<uint64_t>();
  std::vector<VertexId> out(count);
  reader.ReadSpan(out.data(), count);
  EXPECT_EQ(out, ids);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Codec, MixedStructPayload) {
  struct Record {
    VertexId vid;
    double value;
  };
  std::vector<uint8_t> buf;
  AppendPod<Record>(&buf, Record{9, -1.25});
  PodReader reader(buf);
  const Record r = reader.Read<Record>();
  EXPECT_EQ(r.vid, 9u);
  EXPECT_DOUBLE_EQ(r.value, -1.25);
}

TEST(Codec, UnderrunIsFatal) {
  std::vector<uint8_t> buf;
  AppendPod<uint8_t>(&buf, 1);
  PodReader reader(buf);
  EXPECT_DEATH(reader.Read<uint64_t>(), "underrun");
}

TEST(Codec, InterleavedAppendsKeepOffsets) {
  std::vector<uint8_t> buf;
  for (uint64_t i = 0; i < 100; ++i) {
    AppendPod<VertexId>(&buf, i);
    AppendPod<uint32_t>(&buf, static_cast<uint32_t>(i * 2));
  }
  PodReader reader(buf);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(reader.Read<VertexId>(), i);
    EXPECT_EQ(reader.Read<uint32_t>(), i * 2);
  }
}

}  // namespace
}  // namespace tgpp
