// Fabric: the simulated interconnect between machines.
//
// Replaces the paper's MPI + TCP/IP layer (§A.3 "Reliable communication
// layer"). Messages are routed through per-(machine, tag) in-memory queues;
// every byte crossing a machine boundary is counted, and the fabric carries
// a nominal per-link bandwidth (InfiniBand QDR in the paper) so that network
// I/O *time* can be modeled as bytes / aggregate bandwidth, exactly the
// computation behind Figures 9, 10 and 14.
//
// Delivery is reliable and FIFO per (src, dst, tag) — the guarantees the
// paper gets from MPI.

#ifndef TGPP_NET_FABRIC_H_
#define TGPP_NET_FABRIC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tgpp {

struct NetProfile {
  const char* name;
  double link_bandwidth_bytes_per_sec;
};

// Paper §5.1: InfiniBand QDR 4x (~4 GB/s effective per link).
inline constexpr NetProfile kInfinibandQdr{"IB-QDR4x", 4.0e9};
inline constexpr NetProfile kTenGbe{"10GbE", 1.25e9};

struct Message {
  int src = -1;
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
  // Fabric send timestamp (obs::MonotonicNanos) for delivery-latency
  // measurement; 0 for loopback and hand-built messages.
  int64_t send_nanos = 0;
};

// Per-machine fabric instruments: traffic counters are attributed to the
// *sending* machine (its NIC put the bytes on the wire — same attribution
// as fault injection), delivery latency to the *receiving* machine (where
// the queueing delay is felt).
struct LinkMetrics {
  obs::Counter bytes_sent;
  obs::Counter messages_sent;
  obs::Counter drops;
  obs::Counter dups;
  obs::LatencyHistogram delivery_latency;
};

class Fabric {
 public:
  Fabric(int num_machines, NetProfile profile);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_machines() const { return num_machines_; }
  const NetProfile& profile() const { return profile_; }

  // Enqueues a message for `dst`. Loopback (src == dst) is delivered but
  // not counted as network traffic — and is exempt from fault injection
  // (a machine cannot lose a message to itself; the paper's failure
  // domain is the interconnect).
  void Send(int src, int dst, uint32_t tag, std::vector<uint8_t> payload);

  // Blocking receive of the next message with `tag` addressed to `dst`.
  // Returns false if Shutdown() was called and no matching message remains.
  bool Recv(int dst, uint32_t tag, Message* out);

  // Deadline-based receive: blocks at most `timeout_ms` (<= 0 waits
  // forever, like Recv). Returns kTimeout if no matching message arrived
  // in time — the message is NOT consumed if it arrives later — and
  // kAborted after Shutdown() drained the queue. This is what lets the
  // engine's gather/allreduce survive a dropped message instead of
  // deadlocking a barrier.
  Status RecvFor(int dst, uint32_t tag, Message* out, int64_t timeout_ms);

  // Non-blocking variant.
  bool TryRecv(int dst, uint32_t tag, Message* out);

  // Wakes all blocked receivers; subsequent Recv calls drain remaining
  // messages and then return false. Reset() re-arms the fabric.
  void Shutdown();
  void Reset();

  // Cluster-wide totals (sums over the per-machine link instruments).
  uint64_t bytes_sent() const;
  uint64_t messages_sent() const;
  // Messages lost / delivered twice by injected `fabric.send` faults.
  uint64_t messages_dropped() const;
  uint64_t messages_duplicated() const;
  void ResetCounters();

  // Per-machine view (see LinkMetrics for attribution).
  const LinkMetrics& link(int machine) const { return *links_[machine]; }

  // Registers every machine's link instruments under "fabric.*" with its
  // machine label, appending the RAII handles to `out`.
  void RegisterMetrics(obs::Registry* registry,
                       std::vector<obs::Registration>* out);

  // bytes / (num_machines * link bandwidth) — the paper's network I/O time
  // model over the aggregate cluster bandwidth.
  double ModeledIoSeconds() const {
    return static_cast<double>(bytes_sent()) /
           (profile_.link_bandwidth_bytes_per_sec * num_machines_);
  }

  // Fixed per-message framing overhead added to the byte counter.
  static constexpr uint64_t kHeaderBytes = 16;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // One queue per tag value (tags are small dense integers).
    std::vector<std::deque<Message>> queues;
  };

  std::deque<Message>& QueueFor(Mailbox& box, uint32_t tag);

  // Pops the front of `q` into *out, recording delivery latency and the
  // `fabric.recv` trace instant for remote messages. The single delivery
  // path shared by Recv / RecvFor / TryRecv (so drained-without-blocking
  // messages show up in traces too). Caller holds the mailbox mutex.
  void DeliverLocked(int dst, std::deque<Message>& q, Message* out);

  // Records delivery latency of a just-dequeued message at machine `dst`.
  void ObserveDelivery(int dst, const Message& msg);

  int num_machines_;
  NetProfile profile_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<LinkMetrics>> links_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace tgpp

#endif  // TGPP_NET_FABRIC_H_
