// Fabric: the simulated interconnect between machines.
//
// Replaces the paper's MPI + TCP/IP layer (§A.3 "Reliable communication
// layer"). Messages are routed through per-(machine, tag) in-memory queues;
// every byte crossing a machine boundary is counted, and the fabric carries
// a nominal per-link bandwidth (InfiniBand QDR in the paper) so that network
// I/O *time* can be modeled as bytes / aggregate bandwidth, exactly the
// computation behind Figures 9, 10 and 14.
//
// Delivery is reliable and FIFO per (src, dst, tag) — the guarantees the
// paper gets from MPI.
//
// Failure detection (PR 7): the fabric optionally runs a heartbeat
// monitor. While a machine is "up" it beats every `interval_ms`; a
// machine whose beats stop (Machine::Kill(), `machine.kill` fault) is
// declared *lost* once `timeout_ms` elapses without a beat. Declaring a
// machine lost wakes every blocked receiver, and `RecvFor` then fails
// fast with `Status::MachineLost` instead of waiting out its deadline —
// no surviving machine ever wedges on a dead one. Sends to or from a
// down machine are dropped silently (counted in `down_drops`, never in
// the fault-injection `drops` counter).

#ifndef TGPP_NET_FABRIC_H_
#define TGPP_NET_FABRIC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tgpp {

struct NetProfile {
  const char* name;
  double link_bandwidth_bytes_per_sec;
};

// Paper §5.1: InfiniBand QDR 4x (~4 GB/s effective per link).
inline constexpr NetProfile kInfinibandQdr{"IB-QDR4x", 4.0e9};
inline constexpr NetProfile kTenGbe{"10GbE", 1.25e9};

struct Message {
  int src = -1;
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
  // Fabric send timestamp (obs::MonotonicNanos) for delivery-latency
  // measurement; 0 for loopback and hand-built messages.
  int64_t send_nanos = 0;
  // Earliest steady-clock time (ns) this message may be delivered; 0 =
  // immediately. Set by injected `fabric.send:delay` faults: the delay
  // models link latency, so it is charged to the *receiver's* wait, not
  // spent sleeping on the sender's thread. FIFO is preserved — a delayed
  // message at the head of its queue gates the messages behind it.
  int64_t deliver_at_nanos = 0;
};

// Heartbeat monitor configuration. `timeout_ms` bounds detection latency:
// a killed machine is declared lost at most `timeout_ms + interval_ms`
// after its final beat (one monitor tick of slack).
struct HeartbeatOptions {
  int64_t interval_ms = 25;
  int64_t timeout_ms = 1000;
};

// Per-machine fabric instruments: traffic counters are attributed to the
// *sending* machine (its NIC put the bytes on the wire — same attribution
// as fault injection), delivery latency to the *receiving* machine (where
// the queueing delay is felt).
struct LinkMetrics {
  obs::Counter bytes_sent;
  obs::Counter messages_sent;
  obs::Counter drops;
  obs::Counter dups;
  // Messages silently dropped because the src or dst machine was down.
  // Kept apart from `drops` (fault-injection evidence the chaos tests
  // reconcile against the injector's own count).
  obs::Counter down_drops;
  // Heartbeats recorded for / misses declared against this machine.
  obs::Counter heartbeats;
  obs::Counter heartbeat_misses;
  obs::LatencyHistogram delivery_latency;
};

class Fabric {
 public:
  Fabric(int num_machines, NetProfile profile);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_machines() const { return num_machines_; }
  const NetProfile& profile() const { return profile_; }

  // Enqueues a message for `dst`. Loopback (src == dst) is delivered but
  // not counted as network traffic — and is exempt from fault injection
  // (a machine cannot lose a message to itself; the paper's failure
  // domain is the interconnect).
  void Send(int src, int dst, uint32_t tag, std::vector<uint8_t> payload);

  // Blocking receive of the next message with `tag` addressed to `dst`.
  // Returns false if Shutdown() was called and no matching message remains.
  bool Recv(int dst, uint32_t tag, Message* out);

  // Deadline-based receive: blocks at most `timeout_ms` (<= 0 waits
  // forever, like Recv). Returns kTimeout if no matching message arrived
  // in time — the message is NOT consumed if it arrives later — and
  // kAborted after Shutdown() drained the queue. This is what lets the
  // engine's gather/allreduce survive a dropped message instead of
  // deadlocking a barrier. The deadline is honored even while an injected
  // delay holds the head message back. When the heartbeat monitor has
  // declared a machine lost and nothing is deliverable, returns
  // `Status::MachineLost` immediately instead of waiting out the
  // deadline — this is the fail-fast path that unblocks survivors.
  Status RecvFor(int dst, uint32_t tag, Message* out, int64_t timeout_ms);

  // Non-blocking variant.
  bool TryRecv(int dst, uint32_t tag, Message* out);

  // Wakes all blocked receivers; subsequent Recv calls drain remaining
  // messages and then return false. Reset() re-arms the fabric, drops
  // all queued messages, and restores every machine to up (a reset
  // cluster has no dead machines).
  void Shutdown();
  void Reset();

  // ---- Failure detection -------------------------------------------------
  //
  // Refcounted: the first StartHeartbeats wins the configuration; nested
  // starts (concurrent jobs) just bump the count. The monitor thread
  // stamps a beat for every up machine each interval and declares a
  // machine lost once `timeout_ms` passes without a beat, waking every
  // blocked receiver so RecvFor can fail fast.
  void StartHeartbeats(const HeartbeatOptions& options);
  void StopHeartbeats();
  bool HeartbeatsRunning() const;

  // Cooperative liveness, flipped by Machine::Kill/Revive via the
  // cluster. Down machines stop beating (so the monitor declares them
  // lost within the timeout) and their sends/receives are dropped.
  void SetMachineDown(int machine);
  void SetMachineUp(int machine);  // also clears the monitor's lost verdict
  bool MachineUp(int machine) const;

  // Lowest machine id the monitor has declared lost, or -1. Only the
  // monitor sets the lost flag — Kill() alone never does — so detection
  // latency honestly reflects the configured timeout.
  int FirstLostMachine() const;

  uint64_t heartbeats() const;
  uint64_t heartbeat_misses() const;
  uint64_t down_drops() const;

  // Cluster-wide totals (sums over the per-machine link instruments).
  uint64_t bytes_sent() const;
  uint64_t messages_sent() const;
  // Messages lost / delivered twice by injected `fabric.send` faults.
  uint64_t messages_dropped() const;
  uint64_t messages_duplicated() const;
  void ResetCounters();

  // Per-machine view (see LinkMetrics for attribution).
  const LinkMetrics& link(int machine) const { return *links_[machine]; }

  // Registers every machine's link instruments under "fabric.*" with its
  // machine label, appending the RAII handles to `out`.
  void RegisterMetrics(obs::Registry* registry,
                       std::vector<obs::Registration>* out);

  // bytes / (num_machines * link bandwidth) — the paper's network I/O time
  // model over the aggregate cluster bandwidth.
  double ModeledIoSeconds() const {
    return static_cast<double>(bytes_sent()) /
           (profile_.link_bandwidth_bytes_per_sec * num_machines_);
  }

  // Fixed per-message framing overhead added to the byte counter.
  static constexpr uint64_t kHeaderBytes = 16;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // One queue per tag value (tags are small dense integers).
    std::vector<std::deque<Message>> queues;
  };

  std::deque<Message>& QueueFor(Mailbox& box, uint32_t tag);

  // Pops the front of `q` into *out, recording delivery latency and the
  // `fabric.recv` trace instant for remote messages. The single delivery
  // path shared by Recv / RecvFor / TryRecv (so drained-without-blocking
  // messages show up in traces too). Caller holds the mailbox mutex.
  void DeliverLocked(int dst, std::deque<Message>& q, Message* out);

  // Records delivery latency of a just-dequeued message at machine `dst`.
  void ObserveDelivery(int dst, const Message& msg);

  void MonitorLoop();
  void NotifyAllMailboxes();

  int num_machines_;
  NetProfile profile_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<LinkMetrics>> links_;
  std::atomic<bool> shutdown_{false};

  // Liveness state (heap arrays: atomics are not movable in a vector).
  std::unique_ptr<std::atomic<bool>[]> up_;
  std::unique_ptr<std::atomic<bool>[]> lost_;
  std::unique_ptr<std::atomic<int64_t>[]> last_beat_nanos_;

  mutable std::mutex hb_mu_;
  std::condition_variable hb_cv_;  // wakes the monitor for shutdown
  std::thread hb_monitor_;
  HeartbeatOptions hb_options_;
  int hb_refs_ = 0;
  std::atomic<bool> hb_running_{false};
};

}  // namespace tgpp

#endif  // TGPP_NET_FABRIC_H_
