#include "net/fabric.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "util/trace.h"

namespace tgpp {

Fabric::Fabric(int num_machines, NetProfile profile)
    : num_machines_(num_machines), profile_(profile) {
  TGPP_CHECK(num_machines > 0);
  mailboxes_.reserve(num_machines);
  links_.reserve(num_machines);
  for (int i = 0; i < num_machines; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    links_.push_back(std::make_unique<LinkMetrics>());
  }
}

uint64_t Fabric::bytes_sent() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->bytes_sent.value();
  return total;
}

uint64_t Fabric::messages_sent() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->messages_sent.value();
  return total;
}

uint64_t Fabric::messages_dropped() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->drops.value();
  return total;
}

uint64_t Fabric::messages_duplicated() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->dups.value();
  return total;
}

std::deque<Message>& Fabric::QueueFor(Mailbox& box, uint32_t tag) {
  if (box.queues.size() <= tag) box.queues.resize(tag + 1);
  return box.queues[tag];
}

void Fabric::Send(int src, int dst, uint32_t tag,
                  std::vector<uint8_t> payload) {
  TGPP_DCHECK(dst >= 0 && dst < num_machines_);
  bool duplicate = false;
  int64_t send_nanos = 0;
  if (src != dst) {
    LinkMetrics& link = *links_[src >= 0 ? src : dst];
    link.bytes_sent.Add(payload.size() + kHeaderBytes);
    link.messages_sent.Add(1);
    send_nanos = obs::MonotonicNanos();
    trace::Instant("fabric.send", "net", "bytes",
                   payload.size() + kHeaderBytes, "dst",
                   static_cast<uint64_t>(dst));
    // Faults are attributed to the *sending* machine's NIC/link; the
    // bytes were still put on the wire, so counters above stand.
    if (auto injected = fault::Hit("fabric.send", src)) {
      switch (injected->action) {
        case fault::Action::kDrop:
          link.drops.Add(1);
          return;  // the message is lost in flight
        case fault::Action::kDelay:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(injected->param_ms));
          break;
        case fault::Action::kDuplicate:
          link.dups.Add(1);
          duplicate = true;
          break;
        default:
          break;  // disk-flavored actions are meaningless here
      }
    }
  }
  Mailbox& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    std::deque<Message>& q = QueueFor(box, tag);
    if (duplicate) q.push_back(Message{src, tag, payload, send_nanos});
    q.push_back(Message{src, tag, std::move(payload), send_nanos});
  }
  box.cv.notify_all();
}

void Fabric::DeliverLocked(int dst, std::deque<Message>& q, Message* out) {
  *out = std::move(q.front());
  q.pop_front();
  if (out->src != dst) {
    ObserveDelivery(dst, *out);
    trace::Instant("fabric.recv", "net", "bytes",
                   out->payload.size() + kHeaderBytes, "src",
                   static_cast<uint64_t>(out->src));
  }
}

bool Fabric::Recv(int dst, uint32_t tag, Message* out) {
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mu);
  // A span is only recorded when the receiver actually blocked, so idle
  // gather/allreduce waits show up as "fabric.recv_wait" in traces.
  int64_t wait_start = -1;
  for (;;) {
    std::deque<Message>& q = QueueFor(box, tag);
    if (!q.empty()) {
      if (wait_start >= 0) {
        trace::Complete("fabric.recv_wait", "net", wait_start, "tag", tag);
      }
      DeliverLocked(dst, q, out);
      return true;
    }
    if (shutdown_.load(std::memory_order_acquire)) return false;
    if (wait_start < 0 && trace::Enabled()) wait_start = trace::NowNanos();
    box.cv.wait(lock);
  }
}

Status Fabric::RecvFor(int dst, uint32_t tag, Message* out,
                       int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    return Recv(dst, tag, out)
               ? Status::OK()
               : Status::Aborted("fabric shut down during recv");
  }
  Mailbox& box = *mailboxes_[dst];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(box.mu);
  int64_t wait_start = -1;
  for (;;) {
    std::deque<Message>& q = QueueFor(box, tag);
    if (!q.empty()) {
      if (wait_start >= 0) {
        trace::Complete("fabric.recv_wait", "net", wait_start, "tag", tag);
      }
      DeliverLocked(dst, q, out);
      return Status::OK();
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Aborted("fabric shut down during recv");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // The timed-out receiver consumes nothing: a message that arrives
      // after this return is picked up by the next receive on this tag.
      return Status::Timeout("recv timeout on tag " + std::to_string(tag) +
                             " at machine " + std::to_string(dst));
    }
    if (wait_start < 0 && trace::Enabled()) wait_start = trace::NowNanos();
    box.cv.wait_until(lock, deadline);
  }
}

bool Fabric::TryRecv(int dst, uint32_t tag, Message* out) {
  Mailbox& box = *mailboxes_[dst];
  std::lock_guard<std::mutex> lock(box.mu);
  std::deque<Message>& q = QueueFor(box, tag);
  if (q.empty()) return false;
  DeliverLocked(dst, q, out);
  return true;
}

void Fabric::ObserveDelivery(int dst, const Message& msg) {
  if (msg.send_nanos == 0) return;  // loopback or hand-built message
  const int64_t now = obs::MonotonicNanos();
  if (now > msg.send_nanos) {
    links_[dst]->delivery_latency.Record(
        static_cast<uint64_t>(now - msg.send_nanos));
  }
}

void Fabric::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void Fabric::Reset() {
  shutdown_.store(false, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->queues.clear();
  }
}

void Fabric::ResetCounters() {
  // Drops/dups are intentionally left alone: they are fault-injection
  // evidence the chaos tests compare against the injector's own counts
  // across intra-run resets.
  for (auto& l : links_) {
    l->bytes_sent.Reset();
    l->messages_sent.Reset();
  }
}

void Fabric::RegisterMetrics(obs::Registry* registry,
                             std::vector<obs::Registration>* out) {
  for (int m = 0; m < num_machines_; ++m) {
    LinkMetrics& link = *links_[m];
    obs::TryRegister(registry, out, "fabric.bytes_sent", m,
                     &link.bytes_sent);
    obs::TryRegister(registry, out, "fabric.messages_sent", m,
                     &link.messages_sent);
    obs::TryRegister(registry, out, "fabric.drops", m, &link.drops);
    obs::TryRegister(registry, out, "fabric.dups", m, &link.dups);
    obs::TryRegister(registry, out, "fabric.delivery_latency_ns", m,
                     &link.delivery_latency);
  }
}

}  // namespace tgpp
