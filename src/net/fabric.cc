#include "net/fabric.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "obs/events.h"
#include "util/trace.h"

namespace tgpp {

namespace {
int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
std::chrono::steady_clock::time_point SteadyFromNanos(int64_t nanos) {
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(nanos));
}
}  // namespace

Fabric::Fabric(int num_machines, NetProfile profile)
    : num_machines_(num_machines), profile_(profile) {
  TGPP_CHECK(num_machines > 0);
  mailboxes_.reserve(num_machines);
  links_.reserve(num_machines);
  for (int i = 0; i < num_machines; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    links_.push_back(std::make_unique<LinkMetrics>());
  }
  up_ = std::make_unique<std::atomic<bool>[]>(num_machines);
  lost_ = std::make_unique<std::atomic<bool>[]>(num_machines);
  last_beat_nanos_ = std::make_unique<std::atomic<int64_t>[]>(num_machines);
  for (int i = 0; i < num_machines; ++i) {
    up_[i].store(true, std::memory_order_relaxed);
    lost_[i].store(false, std::memory_order_relaxed);
    last_beat_nanos_[i].store(0, std::memory_order_relaxed);
  }
}

Fabric::~Fabric() {
  // Force-stop the monitor if a caller leaked a StartHeartbeats.
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_refs_ = 0;
    hb_running_.store(false, std::memory_order_release);
  }
  hb_cv_.notify_all();
  if (hb_monitor_.joinable()) hb_monitor_.join();
}

uint64_t Fabric::bytes_sent() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->bytes_sent.value();
  return total;
}

uint64_t Fabric::messages_sent() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->messages_sent.value();
  return total;
}

uint64_t Fabric::messages_dropped() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->drops.value();
  return total;
}

uint64_t Fabric::messages_duplicated() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->dups.value();
  return total;
}

std::deque<Message>& Fabric::QueueFor(Mailbox& box, uint32_t tag) {
  if (box.queues.size() <= tag) box.queues.resize(tag + 1);
  return box.queues[tag];
}

void Fabric::Send(int src, int dst, uint32_t tag,
                  std::vector<uint8_t> payload) {
  TGPP_DCHECK(dst >= 0 && dst < num_machines_);
  bool duplicate = false;
  int64_t send_nanos = 0;
  int64_t deliver_at_nanos = 0;
  if (src != dst) {
    LinkMetrics& link = *links_[src >= 0 ? src : dst];
    // A down machine's NIC puts nothing on the wire, and nothing reaches
    // a down machine's mailbox: drop before any byte accounting.
    if ((src >= 0 && !up_[src].load(std::memory_order_relaxed)) ||
        !up_[dst].load(std::memory_order_relaxed)) {
      link.down_drops.Add(1);
      return;
    }
    link.bytes_sent.Add(payload.size() + kHeaderBytes);
    link.messages_sent.Add(1);
    send_nanos = obs::MonotonicNanos();
    trace::Instant("fabric.send", "net", "bytes",
                   payload.size() + kHeaderBytes, "dst",
                   static_cast<uint64_t>(dst));
    // Faults are attributed to the *sending* machine's NIC/link; the
    // bytes were still put on the wire, so counters above stand.
    if (auto injected = fault::Hit("fabric.send", src)) {
      switch (injected->action) {
        case fault::Action::kDrop:
          link.drops.Add(1);
          return;  // the message is lost in flight
        case fault::Action::kDelay:
          // Deferred delivery: the delay models link latency, so it is
          // charged to the receiver's wait — never slept on the sender's
          // thread — and RecvFor deadlines stay honest during it.
          deliver_at_nanos =
              SteadyNanos() +
              static_cast<int64_t>(injected->param_ms) * 1'000'000;
          break;
        case fault::Action::kDuplicate:
          link.dups.Add(1);
          duplicate = true;
          break;
        default:
          break;  // disk-flavored actions are meaningless here
      }
    }
  }
  Mailbox& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    std::deque<Message>& q = QueueFor(box, tag);
    if (duplicate) {
      q.push_back(Message{src, tag, payload, send_nanos, deliver_at_nanos});
    }
    q.push_back(
        Message{src, tag, std::move(payload), send_nanos, deliver_at_nanos});
  }
  box.cv.notify_all();
}

void Fabric::DeliverLocked(int dst, std::deque<Message>& q, Message* out) {
  *out = std::move(q.front());
  q.pop_front();
  if (out->src != dst) {
    ObserveDelivery(dst, *out);
    trace::Instant("fabric.recv", "net", "bytes",
                   out->payload.size() + kHeaderBytes, "src",
                   static_cast<uint64_t>(out->src));
  }
}

bool Fabric::Recv(int dst, uint32_t tag, Message* out) {
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mu);
  // A span is only recorded when the receiver actually blocked, so idle
  // gather/allreduce waits show up as "fabric.recv_wait" in traces.
  int64_t wait_start = -1;
  for (;;) {
    std::deque<Message>& q = QueueFor(box, tag);
    if (!q.empty()) {
      const int64_t head_at = q.front().deliver_at_nanos;
      if (head_at <= SteadyNanos()) {
        if (wait_start >= 0) {
          trace::Complete("fabric.recv_wait", "net", wait_start, "tag", tag);
        }
        DeliverLocked(dst, q, out);
        return true;
      }
      // The head message is still "in flight" (injected link latency):
      // wait out its delivery time, re-checking on wakeups.
      if (wait_start < 0 && trace::Enabled()) wait_start = trace::NowNanos();
      box.cv.wait_until(lock, SteadyFromNanos(head_at));
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) return false;
    if (wait_start < 0 && trace::Enabled()) wait_start = trace::NowNanos();
    box.cv.wait(lock);
  }
}

Status Fabric::RecvFor(int dst, uint32_t tag, Message* out,
                       int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    return Recv(dst, tag, out)
               ? Status::OK()
               : Status::Aborted("fabric shut down during recv");
  }
  Mailbox& box = *mailboxes_[dst];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(box.mu);
  int64_t wait_start = -1;
  for (;;) {
    std::deque<Message>& q = QueueFor(box, tag);
    int64_t head_at = 0;
    if (!q.empty()) {
      head_at = q.front().deliver_at_nanos;
      if (head_at <= SteadyNanos()) {
        if (wait_start >= 0) {
          trace::Complete("fabric.recv_wait", "net", wait_start, "tag", tag);
        }
        DeliverLocked(dst, q, out);
        return Status::OK();
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Aborted("fabric shut down during recv");
    }
    // Nothing deliverable right now. If the monitor has declared a
    // machine lost, waiting out the deadline is pointless — the superstep
    // this receive belongs to can never complete. Fail fast so every
    // survivor unblocks within the heartbeat timeout.
    if (const int lost = FirstLostMachine(); lost >= 0) {
      return Status::MachineLost(lost, fault::CurrentSuperstep());
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // The timed-out receiver consumes nothing: a message that arrives
      // after this return is picked up by the next receive on this tag.
      // A deadline expiring during an injected delay hits this path too
      // (the wait below is capped at the deadline).
      return Status::Timeout("recv timeout on tag " + std::to_string(tag) +
                             " at machine " + std::to_string(dst));
    }
    if (wait_start < 0 && trace::Enabled()) wait_start = trace::NowNanos();
    auto until = deadline;
    if (!q.empty() && head_at > 0) {
      const auto head_tp = SteadyFromNanos(head_at);
      if (head_tp < until) until = head_tp;
    }
    box.cv.wait_until(lock, until);
  }
}

bool Fabric::TryRecv(int dst, uint32_t tag, Message* out) {
  Mailbox& box = *mailboxes_[dst];
  std::lock_guard<std::mutex> lock(box.mu);
  std::deque<Message>& q = QueueFor(box, tag);
  if (q.empty()) return false;
  if (q.front().deliver_at_nanos > SteadyNanos()) return false;
  DeliverLocked(dst, q, out);
  return true;
}

void Fabric::ObserveDelivery(int dst, const Message& msg) {
  if (msg.send_nanos == 0) return;  // loopback or hand-built message
  const int64_t now = obs::MonotonicNanos();
  if (now > msg.send_nanos) {
    links_[dst]->delivery_latency.Record(
        static_cast<uint64_t>(now - msg.send_nanos));
  }
}

void Fabric::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void Fabric::Reset() {
  shutdown_.store(false, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->queues.clear();
  }
  // A reset cluster has no dead machines: restore liveness so a run
  // following an unrecovered failure starts clean.
  for (int m = 0; m < num_machines_; ++m) SetMachineUp(m);
}

void Fabric::StartHeartbeats(const HeartbeatOptions& options) {
  std::lock_guard<std::mutex> lock(hb_mu_);
  if (hb_refs_++ > 0) return;  // first caller wins the configuration
  hb_options_ = options;
  if (hb_options_.interval_ms < 1) hb_options_.interval_ms = 1;
  if (hb_options_.timeout_ms < hb_options_.interval_ms) {
    hb_options_.timeout_ms = hb_options_.interval_ms;
  }
  const int64_t now = SteadyNanos();
  for (int m = 0; m < num_machines_; ++m) {
    last_beat_nanos_[m].store(now, std::memory_order_relaxed);
  }
  if (hb_monitor_.joinable()) hb_monitor_.join();  // prior epoch's thread
  hb_running_.store(true, std::memory_order_release);
  hb_monitor_ = std::thread([this] { MonitorLoop(); });
}

void Fabric::StopHeartbeats() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    if (hb_refs_ == 0) return;
    if (--hb_refs_ > 0) return;
    hb_running_.store(false, std::memory_order_release);
    to_join = std::move(hb_monitor_);
  }
  hb_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool Fabric::HeartbeatsRunning() const {
  return hb_running_.load(std::memory_order_acquire);
}

void Fabric::MonitorLoop() {
  const auto interval = std::chrono::milliseconds(hb_options_.interval_ms);
  const int64_t timeout_nanos = hb_options_.timeout_ms * 1'000'000;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      if (hb_cv_.wait_for(lock, interval, [this] {
            return !hb_running_.load(std::memory_order_acquire);
          })) {
        return;
      }
    }
    const int64_t now = SteadyNanos();
    bool newly_lost = false;
    for (int m = 0; m < num_machines_; ++m) {
      if (up_[m].load(std::memory_order_relaxed)) {
        // An up machine beats every interval. (In the simulated cluster
        // the monitor stamps the beat on the machine's behalf — the
        // machine's "NIC" is this process; the multi-process transport
        // will send real messages on a dedicated tag.)
        last_beat_nanos_[m].store(now, std::memory_order_relaxed);
        links_[m]->heartbeats.Add(1);
        continue;
      }
      if (lost_[m].load(std::memory_order_relaxed)) continue;
      const int64_t last = last_beat_nanos_[m].load(std::memory_order_relaxed);
      if (now - last > timeout_nanos) {
        lost_[m].store(true, std::memory_order_release);
        links_[m]->heartbeat_misses.Add(1);
        trace::Instant("fabric.machine_lost", "net", "machine",
                       static_cast<uint64_t>(m));
        // Cluster-scoped (the monitor thread serves every job): job 0.
        // Per-job attribution comes from the engine.machine_lost event.
        obs::EmitEvent(obs::EventType::kMachineLost, 0, m, -1, nullptr,
                       "timeout_ms",
                       static_cast<uint64_t>(hb_options_.timeout_ms));
        newly_lost = true;
      }
    }
    if (newly_lost) NotifyAllMailboxes();
  }
}

void Fabric::NotifyAllMailboxes() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void Fabric::SetMachineDown(int machine) {
  TGPP_DCHECK(machine >= 0 && machine < num_machines_);
  up_[machine].store(false, std::memory_order_release);
}

void Fabric::SetMachineUp(int machine) {
  TGPP_DCHECK(machine >= 0 && machine < num_machines_);
  last_beat_nanos_[machine].store(SteadyNanos(), std::memory_order_relaxed);
  up_[machine].store(true, std::memory_order_release);
  lost_[machine].store(false, std::memory_order_release);
}

bool Fabric::MachineUp(int machine) const {
  return up_[machine].load(std::memory_order_acquire);
}

int Fabric::FirstLostMachine() const {
  if (!hb_running_.load(std::memory_order_acquire)) return -1;
  for (int m = 0; m < num_machines_; ++m) {
    if (lost_[m].load(std::memory_order_acquire)) return m;
  }
  return -1;
}

uint64_t Fabric::heartbeats() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->heartbeats.value();
  return total;
}

uint64_t Fabric::heartbeat_misses() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->heartbeat_misses.value();
  return total;
}

uint64_t Fabric::down_drops() const {
  uint64_t total = 0;
  for (const auto& l : links_) total += l->down_drops.value();
  return total;
}

void Fabric::ResetCounters() {
  // Drops/dups are intentionally left alone: they are fault-injection
  // evidence the chaos tests compare against the injector's own counts
  // across intra-run resets.
  for (auto& l : links_) {
    l->bytes_sent.Reset();
    l->messages_sent.Reset();
  }
}

void Fabric::RegisterMetrics(obs::Registry* registry,
                             std::vector<obs::Registration>* out) {
  for (int m = 0; m < num_machines_; ++m) {
    LinkMetrics& link = *links_[m];
    obs::TryRegister(registry, out, "fabric.bytes_sent", m,
                     &link.bytes_sent);
    obs::TryRegister(registry, out, "fabric.messages_sent", m,
                     &link.messages_sent);
    obs::TryRegister(registry, out, "fabric.drops", m, &link.drops);
    obs::TryRegister(registry, out, "fabric.dups", m, &link.dups);
    obs::TryRegister(registry, out, "fabric.down_drops", m, &link.down_drops);
    obs::TryRegister(registry, out, "fabric.heartbeats", m, &link.heartbeats);
    obs::TryRegister(registry, out, "fabric.heartbeat_misses", m,
                     &link.heartbeat_misses);
    obs::TryRegister(registry, out, "fabric.delivery_latency_ns", m,
                     &link.delivery_latency);
  }
}

}  // namespace tgpp
