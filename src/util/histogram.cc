#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace tgpp {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

namespace {
int BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}
}  // namespace

void Histogram::Add(uint64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

uint64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Upper bound of bucket i.
      return i == 0 ? 0 : (1ull << i) - 1;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << min()
     << " max=" << max_ << "\n";
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
    const uint64_t hi = i == 0 ? 0 : (1ull << i) - 1;
    os << "  [" << lo << ", " << hi << "]: " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace tgpp
