#include "util/histogram.h"

#include <algorithm>
#include <sstream>

namespace tgpp {

namespace histogram_internal {

uint64_t QuantileFromBuckets(const uint64_t* buckets, uint64_t count,
                             double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based (q=0 -> first, q=1 -> last).
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= target) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = BucketUpperBound(i);
      // Position of the target sample within this bucket, in (0, 1].
      const double frac =
          static_cast<double>(target - seen) / static_cast<double>(buckets[i]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets[i];
  }
  return BucketUpperBound(kNumBuckets - 1);
}

}  // namespace histogram_internal

namespace hi = histogram_internal;

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

void Histogram::Add(uint64_t value) {
  ++buckets_[hi::BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t est = hi::QuantileFromBuckets(buckets_.data(), count_, q);
  // Exact extrema are tracked; clamp the interpolation to them.
  return std::clamp(est, min(), max_);
}

uint64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Upper bound of bucket i.
      return hi::BucketUpperBound(i);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << min()
     << " max=" << max_ << "\n";
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    os << "  [" << hi::BucketLowerBound(i) << ", " << hi::BucketUpperBound(i)
       << "]: " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace tgpp
