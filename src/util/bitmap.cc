#include "util/bitmap.h"

#include <bit>

namespace tgpp {

void AtomicBitmap::Resize(uint64_t num_bits) {
  num_bits_ = num_bits;
  words_ = std::vector<std::atomic<uint64_t>>((num_bits + 63) / 64);
  // vector<atomic> value-initializes to zero.
}

void AtomicBitmap::ClearAll() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void AtomicBitmap::SetAll() {
  for (auto& w : words_) w.store(~0ull, std::memory_order_relaxed);
  // Mask off bits beyond num_bits_ in the last word.
  if (num_bits_ % 64 != 0 && !words_.empty()) {
    const uint64_t mask = (1ull << (num_bits_ % 64)) - 1;
    words_.back().store(mask, std::memory_order_relaxed);
  }
}

uint64_t AtomicBitmap::CountSet() const {
  uint64_t n = 0;
  for (const auto& w : words_) {
    n += std::popcount(w.load(std::memory_order_relaxed));
  }
  return n;
}

bool AtomicBitmap::AnySet() const {
  for (const auto& w : words_) {
    if (w.load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

void AtomicBitmap::ForEachSet(uint64_t lo, uint64_t hi,
                              const std::function<void(uint64_t)>& fn) const {
  if (lo >= hi || words_.empty()) return;
  if (hi > num_bits_) hi = num_bits_;
  uint64_t word_idx = lo >> 6;
  const uint64_t last_word = (hi - 1) >> 6;
  for (; word_idx <= last_word; ++word_idx) {
    uint64_t w = words_[word_idx].load(std::memory_order_relaxed);
    if (w == 0) continue;
    // Mask bits below lo in the first word and at/above hi in the last.
    if (word_idx == (lo >> 6) && (lo & 63) != 0) {
      w &= ~0ull << (lo & 63);
    }
    if (word_idx == last_word && (hi & 63) != 0) {
      w &= (1ull << (hi & 63)) - 1;
    }
    while (w != 0) {
      const int bit = std::countr_zero(w);
      fn((word_idx << 6) + static_cast<uint64_t>(bit));
      w &= w - 1;
    }
  }
}

uint64_t AtomicBitmap::CountSetInRange(uint64_t lo, uint64_t hi) const {
  uint64_t n = 0;
  ForEachSet(lo, hi, [&n](uint64_t) { ++n; });
  return n;
}

}  // namespace tgpp
