// Simple power-of-two bucketed histogram for distribution statistics
// (degree distributions, message sizes, window fill levels).

#ifndef TGPP_UTIL_HISTOGRAM_H_
#define TGPP_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tgpp {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Approximate quantile (q in [0,1]) from bucket boundaries.
  uint64_t ApproxQuantile(double q) const;

  // Multi-line human-readable rendering of non-empty buckets.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 65;  // bucket i holds values in [2^(i-1), 2^i)
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace tgpp

#endif  // TGPP_UTIL_HISTOGRAM_H_
