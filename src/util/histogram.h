// Simple power-of-two bucketed histogram for distribution statistics
// (degree distributions, message sizes, window fill levels).
//
// The bucket layout and quantile math live in histogram_internal so that
// obs::LatencyHistogram (the lock-free atomic sibling in obs/metrics.h)
// shares them bit-for-bit: a merged offline Histogram and a live latency
// histogram report identical quantiles for identical samples.

#ifndef TGPP_UTIL_HISTOGRAM_H_
#define TGPP_UTIL_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace tgpp {

namespace histogram_internal {

// Bucket i holds values in [2^(i-1), 2^i); bucket 0 holds only 0.
inline constexpr int kNumBuckets = 65;

inline int BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

inline uint64_t BucketLowerBound(int i) {
  return i == 0 ? 0 : (1ull << (i - 1));
}

inline uint64_t BucketUpperBound(int i) {
  return i == 0 ? 0 : (1ull << i) - 1;
}

// Interpolated quantile estimate from bucket counts: walks to the bucket
// containing the q-th sample, then interpolates linearly between the
// bucket's bounds by the sample's rank within it. `buckets` must have
// kNumBuckets entries summing to `count`.
uint64_t QuantileFromBuckets(const uint64_t* buckets, uint64_t count,
                             double q);

}  // namespace histogram_internal

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Quantile estimate (q in [0,1]) interpolated within the containing
  // bucket — error bounded by the bucket width (a factor of 2), typically
  // much less for smooth distributions.
  uint64_t Quantile(double q) const;

  // Coarser estimate: upper bound of the bucket containing the q-th
  // sample. Kept for call sites that want a conservative ceiling.
  uint64_t ApproxQuantile(double q) const;

  // Multi-line human-readable rendering of non-empty buckets.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = histogram_internal::kNumBuckets;
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace tgpp

#endif  // TGPP_UTIL_HISTOGRAM_H_
