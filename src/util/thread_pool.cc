#include "util/thread_pool.h"

#include <time.h>

#include <algorithm>

#include "util/trace.h"

namespace tgpp {

namespace {
int64_t ThreadCpuNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}
}  // namespace

ThreadPool::ThreadPool(int num_threads, std::string name, int trace_machine)
    : name_(std::move(name)), trace_machine_(trace_machine) {
  TGPP_CHECK(num_threads > 0) << "pool " << name_;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const int64_t now =
      obs::kMetricsCompiledOut ? 0 : obs::MonotonicNanos();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TGPP_CHECK(!shutdown_) << "submit after shutdown on pool " << name_;
    queue_.push_back(QueuedTask{std::move(task), now});
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

double ThreadPool::TotalTaskCpuSeconds() const {
  return static_cast<double>(task_cpu_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

void ThreadPool::RegisterMetrics(obs::Registry* registry,
                                 const std::string& prefix, int machine,
                                 std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, prefix + ".queue_wait_ns", machine,
                   &queue_wait_);
  obs::TryRegister(registry, out, prefix + ".task_latency_ns", machine,
                   &task_latency_);
}

void ThreadPool::WorkerLoop(int worker_id) {
  trace::SetCurrentMachine(trace_machine_);
  trace::SetCurrentThreadName(name_ + "/" + std::to_string(worker_id));
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    int64_t wall0 = 0;
    if constexpr (!obs::kMetricsCompiledOut) {
      wall0 = obs::MonotonicNanos();
      queue_wait_.Record(static_cast<uint64_t>(wall0 - task.enqueue_nanos));
    }
    const int64_t t0 = ThreadCpuNanos();
    task.fn();
    task_cpu_nanos_.fetch_add(ThreadCpuNanos() - t0,
                              std::memory_order_relaxed);
    if constexpr (!obs::kMetricsCompiledOut) {
      task_latency_.Record(
          static_cast<uint64_t>(obs::MonotonicNanos() - wall0));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t n = end - begin;
  const int64_t num_chunks =
      std::min<int64_t>((n + grain - 1) / grain,
                        std::max(1, pool->num_threads() * 4));
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;

  std::atomic<int64_t> remaining{num_chunks};
  std::mutex mu;
  std::condition_variable cv;

  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t lo = begin + c * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    pool->Submit([&, lo, hi] {
      fn(lo, hi);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace tgpp
