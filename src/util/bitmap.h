// Concurrent fixed-size bitmap.
//
// Used for vertices-of-interest (voi) sets in the NWSM engine and for
// active-vertex frontiers. Set/Test are thread-safe; sizing operations
// are not.

#ifndef TGPP_UTIL_BITMAP_H_
#define TGPP_UTIL_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace tgpp {

class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(uint64_t num_bits) { Resize(num_bits); }

  // Movable via explicit rebuild only: atomics are not movable, so we keep
  // the bitmap in a unique vector and disallow copies.
  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;
  AtomicBitmap(AtomicBitmap&&) = default;
  AtomicBitmap& operator=(AtomicBitmap&&) = default;

  // Discards contents. Not thread-safe.
  void Resize(uint64_t num_bits);

  uint64_t size_bits() const { return num_bits_; }
  // Memory footprint of the word array, used for budget accounting.
  uint64_t size_bytes() const { return words_.size() * sizeof(uint64_t); }

  void Set(uint64_t bit) {
    words_[bit >> 6].fetch_or(1ull << (bit & 63), std::memory_order_relaxed);
  }

  // Returns true if the bit was previously clear (i.e., we set it first).
  bool TestAndSet(uint64_t bit) {
    const uint64_t mask = 1ull << (bit & 63);
    const uint64_t prev =
        words_[bit >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  void Clear(uint64_t bit) {
    words_[bit >> 6].fetch_and(~(1ull << (bit & 63)),
                               std::memory_order_relaxed);
  }

  bool Test(uint64_t bit) const {
    return (words_[bit >> 6].load(std::memory_order_relaxed) >>
            (bit & 63)) & 1;
  }

  // Sets bits [0, size) to zero / one. Not thread-safe.
  void ClearAll();
  void SetAll();

  uint64_t CountSet() const;
  bool AnySet() const;

  // Invokes fn(bit) for every set bit in [lo, hi), ascending.
  void ForEachSet(uint64_t lo, uint64_t hi,
                  const std::function<void(uint64_t)>& fn) const;
  void ForEachSet(const std::function<void(uint64_t)>& fn) const {
    ForEachSet(0, num_bits_, fn);
  }

  // Number of set bits within [lo, hi).
  uint64_t CountSetInRange(uint64_t lo, uint64_t hi) const;

 private:
  uint64_t num_bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace tgpp

#endif  // TGPP_UTIL_BITMAP_H_
