// Per-machine memory budget tracker.
//
// This is the scalability linchpin of the reproduction: TurboGraph++ sizes
// its windows *from* the budget (Theorem 4.1) and therefore never exceeds
// it, while the baseline systems *charge* their in-memory state against the
// budget and fail with kOutOfMemory exactly where the paper's competitors
// crashed (Figures 1, 12, 15, 20, 21).

#ifndef TGPP_UTIL_MEMORY_BUDGET_H_
#define TGPP_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace tgpp {

class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t total_bytes) : total_(total_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  uint64_t total_bytes() const { return total_; }
  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  uint64_t available_bytes() const {
    const uint64_t u = used_bytes();
    return u >= total_ ? 0 : total_ - u;
  }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  // Attempts to reserve `bytes`; fails with kOutOfMemory when the budget
  // would be exceeded (the reservation is not applied in that case).
  Status TryCharge(uint64_t bytes);

  // Releases a previous charge.
  void Release(uint64_t bytes);

  // Resets usage to zero (between queries/benchmark runs).
  void ResetUsage();

 private:
  const uint64_t total_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

// RAII charge that releases on destruction. Check ok() after construction.
class ScopedCharge {
 public:
  ScopedCharge(MemoryBudget* budget, uint64_t bytes)
      : budget_(budget), bytes_(bytes), status_(budget->TryCharge(bytes)) {}
  ~ScopedCharge() {
    if (status_.ok()) budget_->Release(bytes_);
  }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  MemoryBudget* budget_;
  uint64_t bytes_;
  Status status_;
};

}  // namespace tgpp

#endif  // TGPP_UTIL_MEMORY_BUDGET_H_
