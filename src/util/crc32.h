// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Used to checksum checkpoint bodies (docs/FAULTS.md) so a torn or
// bit-rotted checkpoint is detected as kCorruption instead of silently
// restoring garbage vertex state.

#ifndef TGPP_UTIL_CRC32_H_
#define TGPP_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tgpp {

// One-shot CRC of `len` bytes. Pass the previous return value as `crc` to
// extend a running checksum over multiple buffers (start with 0).
uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0);

}  // namespace tgpp

#endif  // TGPP_UTIL_CRC32_H_
