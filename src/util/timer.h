// Wall-clock and thread-CPU timers.
//
// The paper (§5.1) measures CPU time via clock_gettime; WallTimer is used
// for end-to-end query times and CpuTimer for per-thread compute time.

#ifndef TGPP_UTIL_TIMER_H_
#define TGPP_UTIL_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tgpp {

class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Thread CPU time (CLOCK_THREAD_CPUTIME_ID) in nanoseconds.
int64_t ThreadCpuTimeNanos();

// Process CPU time (CLOCK_PROCESS_CPUTIME_ID) in nanoseconds.
int64_t ProcessCpuTimeNanos();

// Accumulates elapsed wall-clock nanoseconds into an atomic counter for the
// lifetime of the scope. Safe for concurrent scopes on one counter.
class ScopedWallAccumulator {
 public:
  explicit ScopedWallAccumulator(std::atomic<int64_t>* sink)
      : sink_(sink) {}
  ~ScopedWallAccumulator() {
    sink_->fetch_add(static_cast<int64_t>(timer_.Seconds() * 1e9),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t>* sink_;
  WallTimer timer_;
};

// Same, but accumulates thread CPU time.
class ScopedCpuAccumulator {
 public:
  explicit ScopedCpuAccumulator(std::atomic<int64_t>* sink)
      : sink_(sink), start_(ThreadCpuTimeNanos()) {}
  ~ScopedCpuAccumulator() {
    sink_->fetch_add(ThreadCpuTimeNanos() - start_,
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

}  // namespace tgpp

#endif  // TGPP_UTIL_TIMER_H_
