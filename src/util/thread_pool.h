// Fixed-size worker thread pool with task submission and a blocking
// parallel-for helper.
//
// Each simulated machine owns one ThreadPool (its "cores"); substrates such
// as the async disk I/O service own small private pools as well.

#ifndef TGPP_UTIL_THREAD_POOL_H_
#define TGPP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace tgpp {

class ThreadPool {
 public:
  // `trace_machine` >= 0 tags all events recorded on worker threads with
  // that simulated machine id (see util/trace.h); -1 leaves them untagged.
  explicit ThreadPool(int num_threads, std::string name = "pool",
                      int trace_machine = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Total CPU-seconds consumed by worker threads while running tasks
  // (CLOCK_THREAD_CPUTIME_ID, as the paper measures CPU time).
  double TotalTaskCpuSeconds() const;

 private:
  void WorkerLoop(int worker_id);

  std::string name_;
  int trace_machine_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;

  std::atomic<int64_t> task_cpu_nanos_{0};
};

// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
// Work is split into contiguous chunks of at least `grain` items.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace tgpp

#endif  // TGPP_UTIL_THREAD_POOL_H_
