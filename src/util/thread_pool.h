// Fixed-size worker thread pool with task submission and a blocking
// parallel-for helper.
//
// Each simulated machine owns one ThreadPool (its "cores"); substrates such
// as the async disk I/O service own small private pools as well.

#ifndef TGPP_UTIL_THREAD_POOL_H_
#define TGPP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tgpp {

class ThreadPool {
 public:
  // `trace_machine` >= 0 tags all events recorded on worker threads with
  // that simulated machine id (see util/trace.h); -1 leaves them untagged.
  explicit ThreadPool(int num_threads, std::string name = "pool",
                      int trace_machine = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // The simulated machine this pool's trace events are tagged with
  // (-1 when untagged).
  int trace_machine() const { return trace_machine_; }

  // Total CPU-seconds consumed by worker threads while running tasks
  // (CLOCK_THREAD_CPUTIME_ID, as the paper measures CPU time).
  double TotalTaskCpuSeconds() const;

  // Wall-clock time tasks spent queued before a worker picked them up,
  // and wall-clock task execution time, in nanoseconds.
  const obs::LatencyHistogram& queue_wait() const { return queue_wait_; }
  const obs::LatencyHistogram& task_latency() const { return task_latency_; }

  // Registers this pool's instruments as "<prefix>.queue_wait_ns" and
  // "<prefix>.task_latency_ns" for `machine` (e.g. prefix "threadpool" for
  // worker pools, "iopool" for the async-I/O pool).
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix,
                       int machine, std::vector<obs::Registration>* out);

 private:
  void WorkerLoop(int worker_id);

  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_nanos;
  };

  std::string name_;
  int trace_machine_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<QueuedTask> queue_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;

  std::atomic<int64_t> task_cpu_nanos_{0};
  obs::LatencyHistogram queue_wait_;
  obs::LatencyHistogram task_latency_;
};

// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
// Work is split into contiguous chunks of at least `grain` items.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace tgpp

#endif  // TGPP_UTIL_THREAD_POOL_H_
