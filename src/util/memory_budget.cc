#include "util/memory_budget.h"

#include <sstream>

namespace tgpp {

Status MemoryBudget::TryCharge(uint64_t bytes) {
  uint64_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = current + bytes;
    if (next > total_) {
      std::ostringstream os;
      os << "memory budget exceeded: requested " << bytes << " bytes, used "
         << current << " of " << total_;
      return Status::OutOfMemory(os.str());
    }
    if (used_.compare_exchange_weak(current, next,
                                    std::memory_order_relaxed)) {
      // Track high-water mark (racy max is fine for reporting).
      uint64_t peak = peak_.load(std::memory_order_relaxed);
      while (next > peak &&
             !peak_.compare_exchange_weak(peak, next,
                                          std::memory_order_relaxed)) {
      }
      return Status::OK();
    }
  }
}

void MemoryBudget::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::ResetUsage() {
  used_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

}  // namespace tgpp
