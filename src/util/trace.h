// Low-overhead execution tracer with Chrome-trace / Perfetto export.
//
// The paper's evaluation (§5.2.3, Figures 9-11) explains performance by
// decomposing runtime into CPU / disk / network components; MachineMetrics
// reproduces those *aggregates*. This tracer captures the *timeline*: when
// the 3-LPO phases (scatter / global gather / apply) overlap with async
// page prefetch, fabric traffic and barrier waits — the property the
// nested windowed streaming model exists to create. Every event is tagged
// with its simulated machine, so the export renders one track per machine,
// per thread in chrome://tracing or https://ui.perfetto.dev.
//
// Design constraints (this is on the engine's hot paths):
//  - Disabled cost is one relaxed atomic load per site: `Enabled()` is
//    checked before any allocation, clock read or buffer access.
//  - The record path takes no locks: each thread owns a fixed-capacity
//    ring of TraceEvent records (single writer); a process-wide registry
//    only locks on first-record-per-thread registration. When a thread
//    exits its ring is parked on a free list and reused by later threads
//    (the engine spawns short-lived gather/producer threads per superstep).
//  - Event names, categories and argument keys must be string literals
//    (or otherwise outlive the tracer) — only pointers are stored.
//  - Rings overwrite their oldest events when full; `Stats().dropped`
//    reports the loss. Export/Snapshot are meant to run at quiescence
//    (no threads recording), e.g. after a query completes.
//
// Usage:
//   trace::SetEnabled(true);
//   { trace::TraceSpan span("scatter", "engine");
//     span.AddArg("window", i); ... }            // 'X' complete event
//   trace::Instant("fabric.send", "net", "bytes", n);  // 'i' instant
//   TGPP_RETURN_IF_ERROR(trace::WriteChromeTrace("trace.json"));
//
// See docs/TRACING.md for capturing and reading traces.

#ifndef TGPP_UTIL_TRACE_H_
#define TGPP_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tgpp::trace {

// One recorded event. `dur_nanos < 0` marks an instant event; otherwise
// the record is a complete span [ts_nanos, ts_nanos + dur_nanos].
struct TraceEvent {
  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  const char* arg_name0 = nullptr;
  const char* arg_name1 = nullptr;
  uint64_t arg_value0 = 0;
  uint64_t arg_value1 = 0;
  int64_t ts_nanos = 0;   // monotonic, relative to the trace epoch
  int64_t dur_nanos = -1;
  int32_t machine = -1;   // simulated machine id; -1 = unattributed
  int32_t tid = 0;        // dense process-wide thread-slot index

  bool is_span() const { return dur_nanos >= 0; }
};

namespace internal {
extern std::atomic<bool> g_enabled;
// Out-of-line slow path: fetches (or registers) the calling thread's ring
// and appends. Only called when tracing is enabled.
void Record(const char* name, const char* cat, int64_t ts_nanos,
            int64_t dur_nanos, const char* arg_name0, uint64_t arg_value0,
            const char* arg_name1, uint64_t arg_value1);
}  // namespace internal

// Global on/off switch. Toggling does not clear recorded events.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// Drops all recorded events and resets counters (rings stay allocated).
void Reset();

// Tags subsequent events on this thread with a simulated machine id.
// Cluster::RunOnAll and the per-machine thread pools set this; code that
// spawns raw std::threads on behalf of a machine must set it itself.
void SetCurrentMachine(int machine_id);
int CurrentMachine();

// Names this thread's track in the export (e.g. "m0.workers/1").
void SetCurrentThreadName(const std::string& name);

// Nanoseconds since the process-wide trace epoch (monotonic clock).
int64_t NowNanos();

// Records an instant event ('i' in the Chrome trace format).
inline void Instant(const char* name, const char* cat,
                    const char* arg_name0 = nullptr, uint64_t arg_value0 = 0,
                    const char* arg_name1 = nullptr,
                    uint64_t arg_value1 = 0) {
  if (!Enabled()) return;
  internal::Record(name, cat, NowNanos(), -1, arg_name0, arg_value0,
                   arg_name1, arg_value1);
}

// Records a complete span ('X') whose begin time was sampled by the caller
// (for spans that only exist conditionally, e.g. a blocking-receive wait).
inline void Complete(const char* name, const char* cat, int64_t start_nanos,
                     const char* arg_name0 = nullptr,
                     uint64_t arg_value0 = 0,
                     const char* arg_name1 = nullptr,
                     uint64_t arg_value1 = 0) {
  if (!Enabled()) return;
  internal::Record(name, cat, start_nanos, NowNanos() - start_nanos,
                   arg_name0, arg_value0, arg_name1, arg_value1);
}

// RAII scope producing one complete span from construction to destruction.
// If tracing is disabled at construction the span is inert (and stays
// inert even if tracing is enabled mid-scope).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (!Enabled()) return;
    name_ = name;
    cat_ = cat;
    start_ = NowNanos();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    internal::Record(name_, cat_, start_, NowNanos() - start_, arg_name0_,
                     arg_value0_, arg_name1_, arg_value1_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches up to two numeric arguments (later calls overwrite slot 1).
  void AddArg(const char* key, uint64_t value) {
    if (name_ == nullptr) return;
    if (arg_name0_ == nullptr) {
      arg_name0_ = key;
      arg_value0_ = value;
    } else {
      arg_name1_ = key;
      arg_value1_ = value;
    }
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name0_ = nullptr;
  const char* arg_name1_ = nullptr;
  uint64_t arg_value0_ = 0;
  uint64_t arg_value1_ = 0;
  int64_t start_ = 0;
};

struct TraceStats {
  uint64_t recorded = 0;  // total events ever recorded (monotonic)
  uint64_t dropped = 0;   // overwritten by ring wrap-around
  int threads = 0;        // thread slots ever registered
};
TraceStats Stats();

// Merged copy of every thread ring, sorted by timestamp. Call only at
// quiescence (no concurrent recorders).
std::vector<TraceEvent> Snapshot();

// Per-thread-slot track names for the export ({tid, name}).
std::vector<std::pair<int, std::string>> ThreadNames();

// --- trace_export.cc -------------------------------------------------------

// Serializes the current snapshot as Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto). One process per simulated machine, one
// track per thread slot; timestamps in microseconds.
std::string ToChromeTraceJson();

// Writes ToChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

}  // namespace tgpp::trace

#endif  // TGPP_UTIL_TRACE_H_
