#include "util/timer.h"

#include <time.h>

namespace tgpp {

int64_t ThreadCpuTimeNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

int64_t ProcessCpuTimeNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace tgpp
