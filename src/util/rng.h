// Deterministic, seedable pseudo-random generators (SplitMix64 and
// xoshiro256**). Used by the RMAT generator and tests; keeping RNG
// in-house guarantees reproducible datasets across platforms.

#ifndef TGPP_UTIL_RNG_H_
#define TGPP_UTIL_RNG_H_

#include <cstdint>

namespace tgpp {

// SplitMix64: tiny, fast, good for seeding and hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix, usable as a hash.
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) via Lemire's method.
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply keeps bias negligible without a rejection loop for
    // our use cases (bound << 2^64).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace tgpp

#endif  // TGPP_UTIL_RNG_H_
