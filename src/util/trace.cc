#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace tgpp::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// Per-ring capacity. Machine/orchestrator threads record well under this
// per query; page-granular I/O threads may wrap on large runs, losing
// their *oldest* events (counted in Stats().dropped).
constexpr size_t kRingCapacity = 1 << 14;

// Single-writer event ring. `count` is the total ever written; the ring
// holds the last min(count, kRingCapacity) events. Readers (Snapshot) run
// at quiescence, so the release/acquire pair on `count` is only there to
// order the event stores for late readers.
struct ThreadRing {
  std::vector<TraceEvent> ring{std::vector<TraceEvent>(kRingCapacity)};
  std::atomic<uint64_t> count{0};
  int tid = 0;
  std::string name;  // last-set track name (registry-lock protected)
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;  // all ever registered
  std::vector<std::shared_ptr<ThreadRing>> free_list;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Thread-slot handle: acquires a ring from the free list (or registers a
// new one) on first use and parks it back on thread exit, so short-lived
// gather/producer threads don't grow the registry without bound.
struct TlsSlot {
  std::shared_ptr<ThreadRing> ring;
  int machine = -1;
  std::string pending_name;  // applied when the ring is acquired

  ~TlsSlot() {
    if (ring == nullptr) return;
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.free_list.push_back(std::move(ring));
  }
};

thread_local TlsSlot tls_slot;

// trace.dropped_events (docs/METRICS.md): ring-wrap overwrites, visible on
// /metrics while the run is live — Stats().dropped only exists at export
// time. Registered on first wrap so untraced runs don't export the series.
obs::Counter& DroppedCounter() {
  struct Holder {
    obs::Counter counter;
    std::vector<obs::Registration> registrations;
    Holder() {
      obs::TryRegister(&obs::Registry::Global(), &registrations,
                       "trace.dropped_events", -1, &counter);
    }
  };
  static Holder* holder = new Holder();
  return holder->counter;
}

ThreadRing* GetThreadRing() {
  if (tls_slot.ring == nullptr) {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    if (!registry.free_list.empty()) {
      tls_slot.ring = std::move(registry.free_list.back());
      registry.free_list.pop_back();
    } else {
      tls_slot.ring = std::make_shared<ThreadRing>();
      tls_slot.ring->tid = static_cast<int>(registry.rings.size());
      registry.rings.push_back(tls_slot.ring);
    }
    if (!tls_slot.pending_name.empty()) {
      tls_slot.ring->name = tls_slot.pending_name;
    }
  }
  return tls_slot.ring.get();
}

}  // namespace

namespace internal {

void Record(const char* name, const char* cat, int64_t ts_nanos,
            int64_t dur_nanos, const char* arg_name0, uint64_t arg_value0,
            const char* arg_name1, uint64_t arg_value1) {
  ThreadRing* ring = GetThreadRing();
  const uint64_t n = ring->count.load(std::memory_order_relaxed);
  if (n >= kRingCapacity) DroppedCounter().Add(1);  // overwriting the oldest
  TraceEvent& ev = ring->ring[n % kRingCapacity];
  ev.name = name;
  ev.cat = cat;
  ev.arg_name0 = arg_name0;
  ev.arg_name1 = arg_name1;
  ev.arg_value0 = arg_value0;
  ev.arg_value1 = arg_value1;
  ev.ts_nanos = ts_nanos;
  ev.dur_nanos = dur_nanos;
  ev.machine = tls_slot.machine;
  ev.tid = ring->tid;
  ring->count.store(n + 1, std::memory_order_release);
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    ring->count.store(0, std::memory_order_relaxed);
  }
}

void SetCurrentMachine(int machine_id) { tls_slot.machine = machine_id; }

int CurrentMachine() { return tls_slot.machine; }

void SetCurrentThreadName(const std::string& name) {
  tls_slot.pending_name = name;
  if (tls_slot.ring != nullptr) {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    tls_slot.ring->name = name;
  }
}

int64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceStats Stats() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  TraceStats stats;
  stats.threads = static_cast<int>(registry.rings.size());
  for (const auto& ring : registry.rings) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    stats.recorded += n;
    if (n > kRingCapacity) stats.dropped += n - kRingCapacity;
  }
  return stats;
}

std::vector<TraceEvent> Snapshot() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    rings = registry.rings;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(n, kRingCapacity);
    for (uint64_t i = n - kept; i < n; ++i) {
      events.push_back(ring->ring[i % kRingCapacity]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_nanos != b.ts_nanos) return a.ts_nanos < b.ts_nanos;
              // Enclosing span first, so viewers nest them correctly.
              return a.dur_nanos > b.dur_nanos;
            });
  return events;
}

std::vector<std::pair<int, std::string>> ThreadNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::pair<int, std::string>> names;
  for (const auto& ring : registry.rings) {
    if (!ring->name.empty()) names.emplace_back(ring->tid, ring->name);
  }
  return names;
}

}  // namespace tgpp::trace
