// Chrome trace-event JSON export (the "JSON Array Format" accepted by
// chrome://tracing and https://ui.perfetto.dev).
//
// Mapping: one simulated machine = one "process" (pid), one thread slot =
// one "thread" (tid), complete spans = 'X' events with ts/dur in
// microseconds, instants = 'i'. Metadata ('M') events name the machine
// tracks so the viewer shows "machine 0", "machine 1", ... in order.

#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include "common/logging.h"
#include "util/trace.h"

namespace tgpp::trace {

namespace {

// Unattributed events (machine id -1, e.g. test threads or the driver)
// render under their own pseudo-process after the machine tracks.
constexpr int kHostPid = 9999;

int PidOf(const TraceEvent& ev) {
  return ev.machine >= 0 ? ev.machine : kHostPid;
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendMicros(std::string* out, int64_t nanos) {
  // Microseconds with nanosecond precision, e.g. 1234.567.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(nanos / 1000),
                static_cast<long long>(nanos % 1000));
  out->append(buf);
}

void AppendArgs(std::string* out, const TraceEvent& ev) {
  if (ev.arg_name0 == nullptr && ev.arg_name1 == nullptr) return;
  out->append(",\"args\":{");
  bool first = true;
  for (const auto& [key, value] :
       {std::pair{ev.arg_name0, ev.arg_value0},
        std::pair{ev.arg_name1, ev.arg_value1}}) {
    if (key == nullptr) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    AppendEscaped(out, key);
    out->append("\":");
    out->append(std::to_string(value));
  }
  out->push_back('}');
}

void AppendMetadata(std::string* out, const char* what, int pid, int tid,
                    bool with_tid, const std::string& name,
                    int sort_index) {
  out->append("{\"ph\":\"M\",\"name\":\"");
  out->append(what);
  out->append("\",\"pid\":");
  out->append(std::to_string(pid));
  if (with_tid) {
    out->append(",\"tid\":");
    out->append(std::to_string(tid));
  }
  out->append(",\"args\":{\"");
  out->append(sort_index >= 0 ? "sort_index" : "name");
  out->append("\":");
  if (sort_index >= 0) {
    out->append(std::to_string(sort_index));
  } else {
    out->push_back('"');
    AppendEscaped(out, name.c_str());
    out->push_back('"');
  }
  out->append("}},\n");
}

}  // namespace

std::string ToChromeTraceJson() {
  const std::vector<TraceEvent> events = Snapshot();

  // Which (pid, tid) pairs exist, so track metadata only names real rows.
  std::set<int> pids;
  std::set<std::pair<int, int>> pid_tids;
  for (const TraceEvent& ev : events) {
    pids.insert(PidOf(ev));
    pid_tids.insert({PidOf(ev), ev.tid});
  }

  std::string out;
  out.reserve(events.size() * 120 + 4096);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

  for (int pid : pids) {
    const std::string name =
        pid == kHostPid ? "host" : "machine " + std::to_string(pid);
    AppendMetadata(&out, "process_name", pid, 0, false, name, -1);
    AppendMetadata(&out, "process_sort_index", pid, 0, false, "", pid);
  }
  for (const auto& [tid, name] : ThreadNames()) {
    for (const auto& [pid, seen_tid] : pid_tids) {
      if (seen_tid != tid) continue;
      AppendMetadata(&out, "thread_name", pid, tid, true, name, -1);
    }
  }

  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"ph\":\"");
    out.append(ev.is_span() ? "X" : "i");
    out.append("\",\"name\":\"");
    AppendEscaped(&out, ev.name);
    out.append("\",\"cat\":\"");
    AppendEscaped(&out, ev.cat);
    out.append("\",\"pid\":");
    out.append(std::to_string(PidOf(ev)));
    out.append(",\"tid\":");
    out.append(std::to_string(ev.tid));
    out.append(",\"ts\":");
    AppendMicros(&out, ev.ts_nanos);
    if (ev.is_span()) {
      out.append(",\"dur\":");
      AppendMicros(&out, ev.dur_nanos);
    } else {
      out.append(",\"s\":\"t\"");  // instant scope: thread
    }
    AppendArgs(&out, ev);
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output file: " + path);
  }
  const TraceStats stats = Stats();
  if (stats.dropped > 0) {
    // The rings keep the newest events; an operator reading the timeline
    // should know its oldest edge is truncated (docs/TRACING.md).
    TGPP_LOG(Warning) << "trace: " << stats.dropped << " of "
                      << stats.recorded
                      << " events dropped (ring wrap); oldest events are "
                         "missing from "
                      << path;
  }
  return Status::OK();
}

}  // namespace tgpp::trace
