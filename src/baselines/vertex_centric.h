// Vertex-centric message-passing baseline family: Pregel+-like,
// GraphX-like, and out-of-core Giraph-like are instances of this engine
// with different storage/charging options (see baseline.h for the fidelity
// argument).
//
// Processing model: hash partitioning (owner(v) = v mod p, the Pregel/
// Giraph default), superstep = compute -> message exchange -> apply, with
// receiver-side buffering charged against the machine memory budget.
// Triangle counting uses the neighborhood-encoding workaround the paper
// describes (§1): each vertex ships (a suffix of) its adjacency list to
// its neighbors, so buffered message volume grows like sum(d_i^2).

#ifndef TGPP_BASELINES_VERTEX_CENTRIC_H_
#define TGPP_BASELINES_VERTEX_CENTRIC_H_

#include <vector>

#include "baselines/baseline.h"
#include "baselines/baseline_util.h"

namespace tgpp {

struct VertexCentricOptions {
  std::string name = "Pregel+";
  OverlapModel overlap = OverlapModel::kFullOverlap;

  // Giraph-like/out-of-core: adjacency lives on disk and is streamed each
  // superstep instead of being memory-resident.
  bool adjacency_on_disk = false;

  // HybridGraph-like: outgoing message blocks are batched through disk
  // instead of held resident (the hybrid pull/push switching). Giraph
  // keeps messages in memory even out-of-core — its OOM cause.
  bool messages_on_disk = false;

  // Multiplier on resident graph bytes charged at Load (GraphX's RDD
  // lineage/cache overhead; 1.0 = just the graph).
  double resident_factor = 1.0;

  // Transient charge at Load time (partitioning/shuffle buffers).
  double load_transient_factor = 1.0;

  // GraphX-like: fraction of the graph copied every superstep (immutable
  // RDD semantics). The copy is real work (memcpy) and is charged
  // transiently; when it does not fit it is spilled through disk.
  double per_superstep_copy = 0.0;

  bool supports_tc = true;
};

class VertexCentricSystem : public BaselineSystem {
 public:
  VertexCentricSystem(Cluster* cluster, VertexCentricOptions options)
      : BaselineSystem(cluster), options_(std::move(options)) {}
  ~VertexCentricSystem() override { Unload(); }

  std::string name() const override { return options_.name; }
  OverlapModel overlap_model() const override { return options_.overlap; }

  Status Load(const EdgeList& graph) override;
  void Unload() override;

  BaselineResult RunPageRank(int iterations) override;
  BaselineResult RunSssp(VertexId source) override;
  BaselineResult RunWcc() override;
  BaselineResult RunTriangleCount() override;

 private:
  struct MachineGraph {
    uint64_t num_local = 0;          // local vertices (v mod p == m)
    std::vector<uint64_t> offsets;   // CSR offsets over local vertices
    std::vector<VertexId> neighbors; // global IDs (memory mode)
    uint64_t charged_bytes = 0;      // released at Unload
    uint64_t adj_bytes = 0;          // neighbor array bytes
  };

  // Generic label-propagation superstep driver used by PR/SSSP/WCC: values
  // are doubles (PR) or uint64s (SSSP/WCC) stored in per-machine arrays.
  template <typename T, typename ScatterVal, typename CombineFn,
            typename ApplyFn>
  BaselineResult RunPropagation(int max_supersteps, bool all_active_always,
                                const std::vector<T>& init,
                                const ScatterVal& scatter_val,
                                const CombineFn& combine,
                                const ApplyFn& apply,
                                std::vector<T>* final_values);

  // Streams local adjacency either from memory or from the per-machine
  // disk file, invoking fn(local_index, neighbors).
  Status ForEachLocalAdjacency(
      int m, const std::function<void(uint64_t, std::span<const VertexId>)>&
                 fn);

  // Charges the per-superstep RDD copy (GraphX); spills through disk when
  // it does not fit in memory.
  Status ChargeSuperstepCopy(int m);

  VertexCentricOptions options_;
  uint64_t num_vertices_ = 0;
  baseline_internal::HashPlacement placement_;
  std::vector<MachineGraph> machines_;
  bool loaded_ = false;
};

}  // namespace tgpp

#endif  // TGPP_BASELINES_VERTEX_CENTRIC_H_
