// Shared helpers for the baseline systems.

#ifndef TGPP_BASELINES_BASELINE_UTIL_H_
#define TGPP_BASELINES_BASELINE_UTIL_H_

#include <numeric>
#include <span>
#include <vector>

#include "cluster/cluster.h"
#include "graph/types.h"
#include "util/memory_budget.h"
#include "util/rng.h"

namespace tgpp::baseline_internal {

// Hash placement used by the vertex-centric and streaming baselines.
// Real systems hash vertex IDs into uniformly balanced partitions; a
// plain `v % p` is NOT uniform on RMAT IDs (their bits are skew-biased),
// so placement goes through a seeded random permutation — the balance a
// good hash achieves, with dense per-machine local indices.
class HashPlacement {
 public:
  HashPlacement() = default;

  void Init(uint64_t n, int p, uint64_t seed = 0x5eed) {
    p_ = p;
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), 0);
    Xoshiro256 rng(seed);
    for (uint64_t i = n; i > 1; --i) {
      std::swap(perm_[i - 1], perm_[rng.NextBounded(i)]);
    }
    inverse_.resize(n);
    for (VertexId v = 0; v < n; ++v) inverse_[perm_[v]] = v;
  }

  int Owner(VertexId v) const { return static_cast<int>(perm_[v] % p_); }
  uint64_t LocalIndex(VertexId v) const { return perm_[v] / p_; }
  VertexId GlobalId(uint64_t local, int m) const {
    return inverse_[local * p_ + m];
  }
  uint64_t LocalCount(int m) const {
    const uint64_t n = perm_.size();
    return n / p_ + (static_cast<uint64_t>(m) < n % p_ ? 1 : 0);
  }

 private:
  int p_ = 1;
  std::vector<VertexId> perm_;
  std::vector<VertexId> inverse_;
};

// Element-wise sum-allreduce across machines (fabric control plane).
// Every machine must call it with the same number of values; on return,
// `values` holds the cluster-wide sums.
Status AllreduceSum(Cluster* cluster, int m, std::span<uint64_t> values);

// Tracks memory charges and releases them on destruction.
class ChargeTracker {
 public:
  explicit ChargeTracker(MemoryBudget* budget) : budget_(budget) {}
  ~ChargeTracker() { ReleaseAll(); }

  ChargeTracker(const ChargeTracker&) = delete;
  ChargeTracker& operator=(const ChargeTracker&) = delete;

  Status Charge(uint64_t bytes) {
    Status s = budget_->TryCharge(bytes);
    if (s.ok()) total_ += bytes;
    return s;
  }
  void Release(uint64_t bytes) {
    budget_->Release(bytes);
    total_ -= bytes;
  }
  void ReleaseAll() {
    if (total_ > 0) budget_->Release(total_);
    total_ = 0;
  }
  uint64_t total() const { return total_; }

 private:
  MemoryBudget* budget_;
  uint64_t total_ = 0;
};

}  // namespace tgpp::baseline_internal

#endif  // TGPP_BASELINES_BASELINE_UTIL_H_
