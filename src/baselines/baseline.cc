#include "baselines/baseline.h"

#include "baselines/baseline_util.h"
#include "core/codec.h"

namespace tgpp::baseline_internal {

Status AllreduceSum(Cluster* cluster, int m, std::span<uint64_t> values) {
  Fabric* fabric = cluster->fabric();
  std::vector<uint8_t> payload;
  for (uint64_t v : values) AppendPod<uint64_t>(&payload, v);
  fabric->Send(m, 0, kTagControl, std::move(payload));
  if (m == 0) {
    std::vector<uint64_t> totals(values.size(), 0);
    for (int i = 0; i < cluster->num_machines(); ++i) {
      Message msg;
      if (!fabric->Recv(0, kTagControl, &msg)) {
        return Status::Aborted("fabric shutdown during allreduce");
      }
      PodReader reader(msg.payload);
      for (uint64_t& total : totals) total += reader.Read<uint64_t>();
    }
    std::vector<uint8_t> result;
    for (uint64_t total : totals) AppendPod<uint64_t>(&result, total);
    for (int i = 0; i < cluster->num_machines(); ++i) {
      fabric->Send(0, i, kTagControl, result);
    }
  }
  Message result;
  if (!fabric->Recv(m, kTagControl, &result)) {
    return Status::Aborted("fabric shutdown during allreduce");
  }
  PodReader reader(result.payload);
  for (uint64_t& v : values) v = reader.Read<uint64_t>();
  cluster->Barrier();
  return Status::OK();
}

}  // namespace tgpp::baseline_internal
