// Baseline graph systems: faithful miniature reimplementations of the
// paper's competitors, built on the same simulated cluster substrates
// (fabric, disks, memory budgets) as TurboGraph++.
//
// What each baseline preserves from the original system is its *processing
// model* — where the graph lives (memory vs disk), how messages flow and
// where they are buffered, what gets charged against the per-machine
// memory budget, and whether computation overlaps I/O:
//
//   Gemini-like      in-memory, chunked dense/sparse push-pull. Charges
//                    both edge directions plus a partitioning-time blowup
//                    (the paper observes Gemini crashing *during
//                    partitioning* on large graphs). No TC API.
//   Pregel+-like     in-memory vertex-centric message passing with
//                    combiners. TC encodes neighborhoods into messages
//                    (sum d_i^2 bytes) — the classic OOM of Fig 1(b).
//   Chaos-like       external-memory edge streaming: re-reads the full
//                    edge set every superstep and streams updates through
//                    disk, with computation and I/O serialized.
//   HybridGraph-like external-memory with block-wise message packs held
//                    in memory (OOMs on TC like the original's
//                    MessagePack; paper §5.4.1).
//   GraphX-like      vertex-centric over immutable per-superstep copies
//                    (RDD semantics): extra CPU + resident lineage charge,
//                    spilling copies to disk under pressure.
//   Giraph-like      out-of-core vertex-centric: partitions on disk,
//                    messages always in memory (appendix A.5.2).
//   PTE              triangle counting via hashed edge-bucket subproblems
//                    (p buckets; every (i <= j <= k) triple re-reads and
//                    re-ships buckets) — worst-case-optimal CPU, heavy
//                    I/O, serialized phases.
//
// Every baseline runs its queries for real (answers are validated against
// the references in tests); OOM outcomes come from MemoryBudget charges,
// not hard-coded rules.

#ifndef TGPP_BASELINES_BASELINE_H_
#define TGPP_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "graph/edge_list.h"

namespace tgpp {

// How a system combines its per-resource times into an execution time —
// the paper's own measurement model (§5.2.3: with full overlap, "the query
// execution time is almost determined by the most bounded resource"; for
// poor-overlap systems the resources serialize).
enum class OverlapModel {
  kFullOverlap,  // exec ~ max(cpu, disk, net)
  kSerialized,   // exec ~ cpu + disk + net
};

struct BaselineResult {
  Status status;          // OK / OutOfMemory / Timeout / NotSupported
  int supersteps = 0;
  double wall_seconds = 0;
  uint64_t aggregate = 0;  // triangle count for TC
};

class BaselineSystem {
 public:
  explicit BaselineSystem(Cluster* cluster) : cluster_(cluster) {}
  virtual ~BaselineSystem() = default;

  virtual std::string name() const = 0;
  virtual OverlapModel overlap_model() const = 0;

  // Loads/partitions `graph` (counted as preprocessing). In-memory systems
  // charge their resident structures here and may fail with kOutOfMemory.
  virtual Status Load(const EdgeList& graph) = 0;

  // Frees everything charged by Load.
  virtual void Unload() = 0;

  virtual BaselineResult RunPageRank(int iterations) {
    return NotSupported("PageRank");
  }
  virtual BaselineResult RunSssp(VertexId source) {
    return NotSupported("SSSP");
  }
  virtual BaselineResult RunWcc() { return NotSupported("WCC"); }
  virtual BaselineResult RunTriangleCount() {
    return NotSupported("TC");
  }

  // Final attribute vectors for validation (original ID space).
  const std::vector<double>& pagerank() const { return pagerank_; }
  const std::vector<uint64_t>& distances() const { return distances_; }
  const std::vector<uint64_t>& labels() const { return labels_; }

 protected:
  BaselineResult NotSupported(const std::string& query) const {
    BaselineResult result;
    result.status =
        Status::NotSupported(name() + " has no API for " + query);
    return result;
  }

  Cluster* cluster_;
  std::vector<double> pagerank_;
  std::vector<uint64_t> distances_;
  std::vector<uint64_t> labels_;
};

// Factory helpers.
std::unique_ptr<BaselineSystem> MakeGeminiLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakePregelLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakeChaosLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakeHybridGraphLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakeGraphxLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakeGiraphLike(Cluster* cluster);
std::unique_ptr<BaselineSystem> MakePte(Cluster* cluster);

}  // namespace tgpp

#endif  // TGPP_BASELINES_BASELINE_H_
