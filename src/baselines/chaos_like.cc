// Chaos-like baseline: scale-out external-memory edge streaming (Roy et
// al., SOSP'15; the X-Stream model distributed over the cluster).
//
// Fidelity notes:
//  - Only small vertex state is memory-resident; the edge set lives on
//    disk and is re-streamed in its entirety every superstep (no index,
//    no selective scheduling — the paper's "Chaos ... [has] to access
//    almost all vertices/edges" on SSSP/WCC).
//  - Updates are *streamed through disk*: scatter appends update records
//    to per-target files, the shuffle reads them back and ships them, the
//    receiver lands them on disk again, and the gather re-reads them —
//    Chaos "relies heavily on disk and incurs excessively many I/Os for
//    messaging" (paper §1).
//  - Computation and I/O serialize (OverlapModel::kSerialized): the paper
//    observes Chaos frequently blocked on I/O with low utilization.
//  - No triangle-counting API.

#include <algorithm>
#include <atomic>
#include <mutex>

#include "baselines/baseline.h"
#include "baselines/baseline_util.h"
#include "core/codec.h"
#include "util/timer.h"

namespace tgpp {
namespace {

using baseline_internal::AllreduceSum;
using baseline_internal::ChargeTracker;

constexpr uint32_t kTagShuffle = 11;
constexpr const char* kEdgeFile = "chaos_edges.bin";
constexpr const char* kInboxFile = "chaos_inbox.bin";
constexpr uint64_t kStreamEdges = 64 * 1024;  // 1 MB of Edge records

class ChaosLikeSystem : public BaselineSystem {
 public:
  explicit ChaosLikeSystem(Cluster* cluster) : BaselineSystem(cluster) {}
  ~ChaosLikeSystem() override { Unload(); }

  std::string name() const override { return "Chaos"; }
  OverlapModel overlap_model() const override {
    return OverlapModel::kSerialized;
  }

  Status Load(const EdgeList& graph) override {
    Unload();
    num_vertices_ = graph.num_vertices;
    const int p = cluster_->num_machines();
    // Plain contiguous ranges of equal vertex count (no degree balancing —
    // Chaos does not optimize placement).
    per_machine_ = (num_vertices_ + p - 1) / p;
    edges_per_machine_.assign(p, 0);

    std::vector<std::vector<Edge>> buckets(p);
    for (const Edge& e : graph.edges) buckets[OwnerOf(e.src)].push_back(e);

    degrees_.assign(p, {});
    charged_.assign(p, 0);
    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      const VertexRange range = Range(m);
      std::vector<Edge>& edges = buckets[m];
      edges_per_machine_[m] = edges.size();

      // Vertex state (values + degrees) is memory-resident.
      degrees_[m].assign(range.size(), 0);
      for (const Edge& e : edges) ++degrees_[m][e.src - range.begin];
      TGPP_RETURN_IF_ERROR(
          machine->budget()->TryCharge(range.size() * 16));
      charged_[m] = range.size() * 16;

      TGPP_RETURN_IF_ERROR(machine->disk()->Truncate(kEdgeFile, 0));
      if (!edges.empty()) {
        TGPP_RETURN_IF_ERROR(machine->disk()->Write(
            kEdgeFile, 0, edges.data(), edges.size() * sizeof(Edge)));
      }
      return Status::OK();
    });
    if (!status.ok()) {
      Unload();
      return status;
    }
    loaded_ = true;
    return Status::OK();
  }

  void Unload() override {
    for (size_t m = 0; m < charged_.size(); ++m) {
      if (charged_[m] > 0) {
        cluster_->machine(m)->budget()->Release(charged_[m]);
      }
    }
    charged_.clear();
    degrees_.clear();
    loaded_ = false;
  }

  BaselineResult RunPageRank(int iterations) override {
    std::vector<double> init(num_vertices_, 1.0);
    return RunStreaming<double>(
        iterations, /*converging=*/false, init,
        [this](int m, VertexId v, double pr) {
          const uint64_t d = degrees_[m][v - Range(m).begin];
          return d > 0 ? pr / static_cast<double>(d) : 0.0;
        },
        [](double& acc, double in) { acc += in; },
        [](double& pr, const double* in) {
          pr = 0.15 + 0.85 * (in != nullptr ? *in : 0.0);
          return true;
        },
        &pagerank_);
  }

  BaselineResult RunSssp(VertexId source) override {
    constexpr uint64_t kInf = ~0ull;
    std::vector<uint64_t> init(num_vertices_, kInf);
    init[source] = 0;
    return RunStreaming<uint64_t>(
        static_cast<int>(num_vertices_) + 1, /*converging=*/true, init,
        [](int, VertexId, uint64_t dist) {
          return dist == kInf ? kInf : dist + 1;
        },
        [](uint64_t& acc, uint64_t in) { acc = std::min(acc, in); },
        [](uint64_t& dist, const uint64_t* in) {
          if (in != nullptr && *in < dist) {
            dist = *in;
            return true;
          }
          return false;
        },
        &distances_);
  }

  BaselineResult RunWcc() override {
    std::vector<uint64_t> init(num_vertices_);
    for (VertexId v = 0; v < num_vertices_; ++v) init[v] = v;
    return RunStreaming<uint64_t>(
        static_cast<int>(num_vertices_) + 1, /*converging=*/true, init,
        [](int, VertexId, uint64_t label) { return label; },
        [](uint64_t& acc, uint64_t in) { acc = std::min(acc, in); },
        [](uint64_t& label, const uint64_t* in) {
          if (in != nullptr && *in < label) {
            label = *in;
            return true;
          }
          return false;
        },
        &labels_);
  }

 private:
  VertexRange Range(int m) const {
    const VertexId begin =
        std::min<VertexId>(num_vertices_, m * per_machine_);
    const VertexId end =
        std::min<VertexId>(num_vertices_, (m + 1) * per_machine_);
    return VertexRange{begin, end};
  }
  int OwnerOf(VertexId v) const {
    return static_cast<int>(v / per_machine_);
  }

  template <typename T, typename ScatterVal, typename CombineFn,
            typename ApplyFn>
  BaselineResult RunStreaming(int max_supersteps, bool converging,
                              const std::vector<T>& init,
                              const ScatterVal& scatter_val,
                              const CombineFn& combine, const ApplyFn& apply,
                              std::vector<T>* final_values) {
    BaselineResult result;
    if (!loaded_) {
      result.status = Status::Internal("not loaded");
      return result;
    }
    WallTimer timer;
    const int p = cluster_->num_machines();
    std::vector<std::vector<T>> values(p);
    std::atomic<int> supersteps{0};
    std::mutex mu;
    Status failure;

    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      const VertexRange range = Range(m);
      const uint64_t n_local = range.size();
      ChargeTracker charges(machine->budget());
      Status local_fail = charges.Charge(n_local * (2 * sizeof(T) + 2));
      std::vector<uint8_t> active(n_local, 1);
      std::vector<T> incoming(n_local, T{});
      std::vector<uint8_t> has_incoming(n_local, 0);
      if (local_fail.ok()) {
        values[m].resize(n_local);
        for (uint64_t v = 0; v < n_local; ++v) {
          values[m][v] = init[range.begin + v];
        }
      }

      std::vector<Edge> stream(kStreamEdges);
      for (int step = 0; step < max_supersteps; ++step) {
        // Scatter: stream the full edge file; updates go to per-target
        // files on local disk (the Chaos messaging pattern).
        std::vector<std::string> update_files(p);
        for (int dst = 0; dst < p; ++dst) {
          update_files[dst] = "chaos_upd_" + std::to_string(dst) + ".bin";
          Status s = machine->disk()->Truncate(update_files[dst], 0);
          if (!s.ok() && local_fail.ok()) local_fail = s;
        }
        if (local_fail.ok()) {
          obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
          std::vector<std::vector<uint8_t>> write_buf(p);
          const uint64_t total_edges = edges_per_machine_[m];
          uint64_t pos = 0;
          while (pos < total_edges && local_fail.ok()) {
            const uint64_t n =
                std::min<uint64_t>(kStreamEdges, total_edges - pos);
            Status s =
                machine->disk()->Read(kEdgeFile, pos * sizeof(Edge),
                                      stream.data(), n * sizeof(Edge));
            if (!s.ok()) {
              local_fail = s;
              break;
            }
            for (uint64_t e = 0; e < n; ++e) {
              const Edge& edge = stream[e];
              const uint64_t src_idx = edge.src - range.begin;
              if (!active[src_idx]) continue;
              const T val = scatter_val(m, edge.src, values[m][src_idx]);
              std::vector<uint8_t>& buf = write_buf[OwnerOf(edge.dst)];
              AppendPod<VertexId>(&buf, edge.dst);
              AppendPod<T>(&buf, val);
              if (buf.size() >= (1u << 20)) {
                uint64_t off;
                Status ws = machine->disk()->Append(
                    update_files[OwnerOf(edge.dst)], buf.data(), buf.size(),
                    &off);
                if (!ws.ok()) local_fail = ws;
                buf.clear();
              }
            }
            pos += n;
          }
          for (int dst = 0; dst < p && local_fail.ok(); ++dst) {
            if (write_buf[dst].empty()) continue;
            uint64_t off;
            Status ws = machine->disk()->Append(update_files[dst],
                                                write_buf[dst].data(),
                                                write_buf[dst].size(), &off);
            if (!ws.ok()) local_fail = ws;
          }
        }

        // Shuffle: read each update file back and ship it.
        for (int dst = 0; dst < p; ++dst) {
          std::vector<uint8_t> payload;
          if (local_fail.ok()) {
            Result<uint64_t> size =
                machine->disk()->FileSize(update_files[dst]);
            if (size.ok() && *size > 0) {
              payload.resize(*size);
              Status s = machine->disk()->Read(update_files[dst], 0,
                                               payload.data(), *size);
              if (!s.ok()) local_fail = s;
            }
          }
          cluster_->fabric()->Send(m, dst, kTagShuffle,
                                   std::move(payload));
        }

        // Land incoming updates on disk, then gather from disk.
        {
          Status s = machine->disk()->Truncate(kInboxFile, 0);
          if (!s.ok() && local_fail.ok()) local_fail = s;
        }
        uint64_t inbox_bytes = 0;
        for (int src = 0; src < p; ++src) {
          Message msg;
          if (!cluster_->fabric()->Recv(m, kTagShuffle, &msg)) {
            return Status::Aborted("fabric shutdown");
          }
          if (!local_fail.ok() || msg.payload.empty()) continue;
          uint64_t off;
          Status s = machine->disk()->Append(kInboxFile, msg.payload.data(),
                                             msg.payload.size(), &off);
          if (!s.ok()) local_fail = s;
          inbox_bytes += msg.payload.size();
        }
        uint64_t next_active = 0;
        if (local_fail.ok()) {
          obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
          std::fill(has_incoming.begin(), has_incoming.end(), 0);
          std::vector<uint8_t> data(inbox_bytes);
          if (inbox_bytes > 0) {
            Status s =
                machine->disk()->Read(kInboxFile, 0, data.data(),
                                      inbox_bytes);
            if (!s.ok()) local_fail = s;
          }
          if (local_fail.ok()) {
            PodReader reader(data);
            while (!reader.AtEnd()) {
              const VertexId w = reader.Read<VertexId>();
              const T val = reader.Read<T>();
              const uint64_t idx = w - range.begin;
              if (has_incoming[idx]) {
                combine(incoming[idx], val);
              } else {
                incoming[idx] = val;
                has_incoming[idx] = 1;
              }
            }
            for (uint64_t v = 0; v < n_local; ++v) {
              const T* in = has_incoming[v] ? &incoming[v] : nullptr;
              const bool act = apply(values[m][v], in);
              active[v] = (!converging || act) ? 1 : 0;
              if (active[v]) ++next_active;
            }
          }
        }
        uint64_t reduce[2] = {next_active, local_fail.ok() ? 0u : 1u};
        TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
        if (m == 0) supersteps.fetch_add(1);
        if (reduce[1] > 0) break;
        if (converging && reduce[0] == 0) break;
      }
      if (!local_fail.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (failure.ok()) failure = local_fail;
      }
      return Status::OK();
    });
    if (!status.ok()) {
      result.status = status;
      return result;
    }
    if (!failure.ok()) {
      result.status = failure;
      return result;
    }
    result.supersteps = supersteps.load();
    result.wall_seconds = timer.Seconds();
    if (final_values != nullptr) {
      final_values->assign(num_vertices_, T{});
      for (int m = 0; m < p; ++m) {
        const VertexRange range = Range(m);
        std::copy(values[m].begin(), values[m].end(),
                  final_values->begin() + range.begin);
      }
    }
    return result;
  }

  uint64_t num_vertices_ = 0;
  uint64_t per_machine_ = 1;
  std::vector<uint64_t> edges_per_machine_;
  std::vector<std::vector<uint64_t>> degrees_;
  std::vector<uint64_t> charged_;
  bool loaded_ = false;
};

}  // namespace

std::unique_ptr<BaselineSystem> MakeChaosLike(Cluster* cluster) {
  return std::make_unique<ChaosLikeSystem>(cluster);
}

}  // namespace tgpp
