// PTE baseline: "Pre-partitioned Triangle Enumeration" (Park, Myaeng,
// Kang; KDD'16) — the distributed triangle-counting specialist the paper
// compares group2 queries against.
//
// Model: vertices are hashed into p colors; the edge set is split into
// color-pair buckets E_{ij} (i <= j) persisted across the cluster during
// Load. Counting solves one subproblem per color triple (i <= j <= k):
// the union E_ij ∪ E_jk ∪ E_ik is assembled (re-reading buckets from
// their owners' disks and shipping them over the fabric — PTE's repeated
// I/O), and triangles whose sorted color triple equals (i, j, k) are
// counted, so every triangle is counted exactly once. CPU cost is the
// worst-case-optimal intersection work; phases serialize
// (OverlapModel::kSerialized — the paper observes PTE "frequently blocked
// by the I/O").

#include <algorithm>
#include <atomic>
#include <mutex>

#include "baselines/baseline.h"
#include "baselines/baseline_util.h"
#include "core/codec.h"
#include "graph/csr.h"
#include "util/rng.h"
#include "util/timer.h"

namespace tgpp {
namespace {

using baseline_internal::AllreduceSum;

constexpr uint32_t kTagBucket = 12;

class PteSystem : public BaselineSystem {
 public:
  explicit PteSystem(Cluster* cluster) : BaselineSystem(cluster) {}
  ~PteSystem() override { Unload(); }

  std::string name() const override { return "PTE"; }
  OverlapModel overlap_model() const override {
    return OverlapModel::kSerialized;
  }

  Status Load(const EdgeList& graph) override {
    Unload();
    num_vertices_ = graph.num_vertices;
    const int p = cluster_->num_machines();

    // Canonicalize (undirected input): keep u < v once.
    std::vector<std::vector<Edge>> pair_edges(p * p);
    for (const Edge& e : graph.edges) {
      if (e.src >= e.dst) continue;
      const int bi = ColorOf(e.src);
      const int bj = ColorOf(e.dst);
      const int lo = std::min(bi, bj);
      const int hi = std::max(bi, bj);
      pair_edges[lo * p + hi].push_back(e);
    }

    // Persist each bucket on its owner machine's disk (the paper's HDFS
    // stand-in: per-machine local storage + fabric shuffles at read time).
    bucket_sizes_.assign(p * p, 0);
    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      for (int i = 0; i < p; ++i) {
        for (int j = i; j < p; ++j) {
          if (BucketOwner(i, j) != m) continue;
          const auto& edges = pair_edges[i * p + j];
          bucket_sizes_[i * p + j] = edges.size();
          const std::string file = BucketFile(i, j);
          TGPP_RETURN_IF_ERROR(machine->disk()->Truncate(file, 0));
          if (!edges.empty()) {
            TGPP_RETURN_IF_ERROR(machine->disk()->Write(
                file, 0, edges.data(), edges.size() * sizeof(Edge)));
          }
        }
      }
      return Status::OK();
    });
    if (!status.ok()) return status;
    loaded_ = true;
    return Status::OK();
  }

  void Unload() override { loaded_ = false; }

  BaselineResult RunTriangleCount() override {
    BaselineResult result;
    if (!loaded_) {
      result.status = Status::Internal("not loaded");
      return result;
    }
    WallTimer timer;
    const int p = cluster_->num_machines();

    // Enumerate triples (i <= j <= k), assigned round-robin.
    std::vector<std::array<int, 3>> triples;
    for (int i = 0; i < p; ++i) {
      for (int j = i; j < p; ++j) {
        for (int k = j; k < p; ++k) {
          triples.push_back({i, j, k});
        }
      }
    }

    std::atomic<uint64_t> total{0};
    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      uint64_t local_count = 0;
      for (size_t t = m; t < triples.size(); t += p) {
        const auto [i, j, k] = triples[t];
        // Assemble the subproblem edge set (deduplicated pair list).
        std::vector<std::pair<int, int>> pairs = {{i, j}, {j, k}, {i, k}};
        std::sort(pairs.begin(), pairs.end());
        pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
        EdgeList sub;
        sub.num_vertices = num_vertices_;
        for (const auto& [a, b] : pairs) {
          TGPP_RETURN_IF_ERROR(FetchBucket(m, a, b, &sub.edges));
        }
        {
          obs::ScopedCpuCounter cpu(
              &machine->metrics()->scatter_cpu_nanos);
          local_count += CountTriangles(sub, i, j, k);
        }
      }
      uint64_t reduce[1] = {local_count};
      TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
      if (m == 0) total.store(reduce[0]);
      return Status::OK();
    });
    if (!status.ok()) {
      result.status = status;
      return result;
    }
    result.aggregate = total.load();
    result.supersteps = 1;
    result.wall_seconds = timer.Seconds();
    return result;
  }

 private:
  int ColorOf(VertexId v) const {
    return static_cast<int>(Mix64(v) % cluster_->num_machines());
  }
  int BucketOwner(int i, int j) const {
    return (i * cluster_->num_machines() + j) % cluster_->num_machines();
  }
  static std::string BucketFile(int i, int j) {
    return "pte_E_" + std::to_string(i) + "_" + std::to_string(j) + ".bin";
  }

  // Reads bucket (i, j) from its owner: local disk read, plus a fabric
  // transfer when the owner is remote (both counted).
  Status FetchBucket(int m, int i, int j, std::vector<Edge>* out) {
    const int owner = BucketOwner(i, j);
    const int p = cluster_->num_machines();
    const uint64_t count = bucket_sizes_[i * p + j];
    if (count == 0) return Status::OK();
    std::vector<Edge> edges(count);
    TGPP_RETURN_IF_ERROR(cluster_->machine(owner)->disk()->Read(
        BucketFile(i, j), 0, edges.data(), count * sizeof(Edge)));
    if (owner != m) {
      // Ship the bucket across the fabric so network bytes are counted
      // (self-addressed round trip; the payload is the real data).
      std::vector<uint8_t> payload(count * sizeof(Edge));
      std::memcpy(payload.data(), edges.data(), payload.size());
      cluster_->fabric()->Send(owner, m, kTagBucket, std::move(payload));
      Message msg;
      if (!cluster_->fabric()->Recv(m, kTagBucket, &msg)) {
        return Status::Aborted("fabric shutdown");
      }
    }
    out->insert(out->end(), edges.begin(), edges.end());
    return Status::OK();
  }

  // Counts triangles (x < y < z) of `sub` whose sorted color triple is
  // exactly (i, j, k).
  uint64_t CountTriangles(const EdgeList& sub, int i, int j, int k) {
    const Csr csr = Csr::Build(sub, /*sort_neighbors=*/true);
    std::array<int, 3> want = {i, j, k};
    std::sort(want.begin(), want.end());
    uint64_t count = 0;
    std::vector<VertexId> common;
    for (const Edge& e : sub.edges) {
      const VertexId x = e.src;
      const VertexId y = e.dst;
      common.clear();
      SortedIntersection(csr.Neighbors(x), csr.Neighbors(y), &common);
      for (VertexId z : common) {
        if (z <= y) continue;
        std::array<int, 3> colors = {ColorOf(x), ColorOf(y), ColorOf(z)};
        std::sort(colors.begin(), colors.end());
        if (colors == want) ++count;
      }
    }
    return count;
  }

  uint64_t num_vertices_ = 0;
  std::vector<uint64_t> bucket_sizes_;
  bool loaded_ = false;
};

}  // namespace

std::unique_ptr<BaselineSystem> MakePte(Cluster* cluster) {
  return std::make_unique<PteSystem>(cluster);
}

}  // namespace tgpp
