// Gemini-like baseline: distributed *in-memory* graph processing with
// chunk-based partitioning (Zhu et al., OSDI'16).
//
// Fidelity notes (what drives the paper's comparisons):
//  - Vertices are placed in contiguous chunks balanced by edge count;
//    the whole graph is memory-resident (charged against the budget), and
//    preprocessing transiently needs a multiple of the graph size — the
//    paper repeatedly observes Gemini "crash during partitioning" on
//    graphs beyond Twitter scale.
//  - Dense push mode for PageRank: every machine accumulates contributions
//    into a full-length |V| array and ships per-chunk slices — fast CPU,
//    moderate network, memory-hungry.
//  - Sparse mode (frontier message passing) for SSSP/WCC.
//  - No triangle-counting API (paper §1: "Chaos and Gemini do not support
//    programming model APIs to implement it").

#include <algorithm>
#include <atomic>
#include <mutex>

#include "baselines/baseline.h"
#include "baselines/baseline_util.h"
#include "core/codec.h"
#include "graph/degree.h"
#include "util/timer.h"

namespace tgpp {
namespace {

using baseline_internal::AllreduceSum;
using baseline_internal::ChargeTracker;

constexpr uint32_t kTagDense = 9;
constexpr uint32_t kTagSparse = 10;

class GeminiLikeSystem : public BaselineSystem {
 public:
  explicit GeminiLikeSystem(Cluster* cluster) : BaselineSystem(cluster) {}
  ~GeminiLikeSystem() override { Unload(); }

  std::string name() const override { return "Gemini"; }
  OverlapModel overlap_model() const override {
    return OverlapModel::kFullOverlap;
  }

  Status Load(const EdgeList& graph) override {
    Unload();
    num_vertices_ = graph.num_vertices;
    const int p = cluster_->num_machines();

    // Chunk partitioning balanced by out-degree (Gemini's chunking).
    const std::vector<uint64_t> degrees = ComputeOutDegrees(graph);
    range_starts_.assign(p + 1, 0);
    {
      uint64_t total = graph.num_edges();
      uint64_t acc = 0;
      int next_cut = 1;
      for (VertexId v = 0; v < num_vertices_ && next_cut < p; ++v) {
        acc += degrees[v];
        if (acc * p >= total * static_cast<uint64_t>(next_cut)) {
          range_starts_[next_cut++] = v + 1;
        }
      }
      for (; next_cut < p; ++next_cut) {
        range_starts_[next_cut] = num_vertices_;
      }
      range_starts_[p] = num_vertices_;
    }

    std::vector<std::vector<Edge>> buckets(p);
    for (const Edge& e : graph.edges) {
      buckets[OwnerOf(e.src)].push_back(e);
    }

    machines_.assign(p, {});
    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      MachineGraph& mg = machines_[m];
      mg.range = VertexRange{range_starts_[m], range_starts_[m + 1]};
      const uint64_t n_local = mg.range.size();
      std::vector<Edge>& edges = buckets[m];

      mg.offsets.assign(n_local + 1, 0);
      for (const Edge& e : edges) ++mg.offsets[e.src - mg.range.begin + 1];
      for (uint64_t v = 0; v < n_local; ++v) mg.offsets[v + 1] += mg.offsets[v];
      mg.neighbors.resize(edges.size());
      std::vector<uint64_t> cursor(mg.offsets.begin(), mg.offsets.end() - 1);
      for (const Edge& e : edges) {
        mg.neighbors[cursor[e.src - mg.range.begin]++] = e.dst;
      }

      const uint64_t graph_bytes =
          mg.neighbors.size() * sizeof(VertexId) +
          mg.offsets.size() * sizeof(uint64_t);
      // Resident: forward + backward CSR (dense pull needs in-edges).
      TGPP_RETURN_IF_ERROR(machine->budget()->TryCharge(graph_bytes * 2));
      mg.charged = graph_bytes * 2;
      // Preprocessing transiently builds shuffle/renumbering buffers *on
      // top of* the resident structures — Gemini's partitioning blow-up
      // (peak = 4x the local graph size).
      {
        ScopedCharge transient(machine->budget(), graph_bytes * 2);
        if (!transient.ok()) return transient.status();
      }
      return Status::OK();
    });
    if (!status.ok()) {
      Unload();
      return status;
    }
    loaded_ = true;
    return Status::OK();
  }

  void Unload() override {
    for (size_t m = 0; m < machines_.size(); ++m) {
      if (machines_[m].charged > 0) {
        cluster_->machine(m)->budget()->Release(machines_[m].charged);
      }
    }
    machines_.clear();
    loaded_ = false;
  }

  BaselineResult RunPageRank(int iterations) override {
    BaselineResult result;
    if (!loaded_) {
      result.status = Status::Internal("not loaded");
      return result;
    }
    WallTimer timer;
    const int p = cluster_->num_machines();
    std::vector<std::vector<double>> pr(p);
    std::mutex mu;
    Status failure;

    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      MachineGraph& mg = machines_[m];
      const uint64_t n_local = mg.range.size();
      ChargeTracker charges(machine->budget());
      // Dense push buffer spans all of |V| — Gemini's memory appetite.
      Status local_fail =
          charges.Charge(num_vertices_ * sizeof(double) +
                         n_local * 2 * sizeof(double));
      std::vector<double> dense;
      if (local_fail.ok()) {
        pr[m].assign(n_local, 1.0);
        dense.assign(num_vertices_, 0.0);
      }

      for (int step = 0; step < iterations; ++step) {
        if (local_fail.ok()) {
          obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
          std::fill(dense.begin(), dense.end(), 0.0);
          for (uint64_t v = 0; v < n_local; ++v) {
            const uint64_t deg = mg.offsets[v + 1] - mg.offsets[v];
            if (deg == 0) continue;
            const double c = pr[m][v] / static_cast<double>(deg);
            for (uint64_t e = mg.offsets[v]; e < mg.offsets[v + 1]; ++e) {
              dense[mg.neighbors[e]] += c;
            }
          }
        }
        // Ship each chunk slice to its owner.
        for (int dst = 0; dst < p; ++dst) {
          std::vector<uint8_t> payload;
          if (local_fail.ok()) {
            const VertexRange r{range_starts_[dst], range_starts_[dst + 1]};
            payload.resize(r.size() * sizeof(double));
            std::memcpy(payload.data(), dense.data() + r.begin,
                        payload.size());
          }
          cluster_->fabric()->Send(m, dst, kTagDense, std::move(payload));
        }
        if (local_fail.ok()) {
          obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
          std::vector<double> sums(n_local, 0.0);
          for (int src = 0; src < p; ++src) {
            Message msg;
            if (!cluster_->fabric()->Recv(m, kTagDense, &msg)) {
              return Status::Aborted("fabric shutdown");
            }
            if (msg.payload.size() == n_local * sizeof(double)) {
              const double* slice =
                  reinterpret_cast<const double*>(msg.payload.data());
              for (uint64_t v = 0; v < n_local; ++v) sums[v] += slice[v];
            }
          }
          for (uint64_t v = 0; v < n_local; ++v) {
            pr[m][v] = 0.15 + 0.85 * sums[v];
          }
        } else {
          for (int src = 0; src < p; ++src) {
            Message msg;
            if (!cluster_->fabric()->Recv(m, kTagDense, &msg)) {
              return Status::Aborted("fabric shutdown");
            }
          }
        }
        uint64_t reduce[1] = {local_fail.ok() ? 0u : 1u};
        TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
        if (reduce[0] > 0) break;
      }
      if (!local_fail.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (failure.ok()) failure = local_fail;
      }
      return Status::OK();
    });
    if (!status.ok()) {
      result.status = status;
      return result;
    }
    if (!failure.ok()) {
      result.status = failure;
      return result;
    }
    pagerank_.assign(num_vertices_, 0.0);
    for (int m = 0; m < p; ++m) {
      std::copy(pr[m].begin(), pr[m].end(),
                pagerank_.begin() + machines_[m].range.begin);
    }
    result.supersteps = iterations;
    result.wall_seconds = timer.Seconds();
    return result;
  }

  BaselineResult RunSssp(VertexId source) override {
    return RunSparseMin(/*sssp=*/true, source, &distances_);
  }
  BaselineResult RunWcc() override {
    return RunSparseMin(/*sssp=*/false, 0, &labels_);
  }

 private:
  struct MachineGraph {
    VertexRange range;
    std::vector<uint64_t> offsets;
    std::vector<VertexId> neighbors;
    uint64_t charged = 0;
  };

  int OwnerOf(VertexId v) const {
    const auto it = std::upper_bound(range_starts_.begin() + 1,
                                     range_starts_.end(), v);
    return static_cast<int>(it - range_starts_.begin() - 1);
  }

  // Sparse frontier-driven min-propagation (Gemini's sparse mode) shared
  // by SSSP (hop distances) and WCC (min labels).
  BaselineResult RunSparseMin(bool sssp, VertexId source,
                              std::vector<uint64_t>* out) {
    constexpr uint64_t kInf = ~0ull;
    BaselineResult result;
    if (!loaded_) {
      result.status = Status::Internal("not loaded");
      return result;
    }
    WallTimer timer;
    const int p = cluster_->num_machines();
    std::vector<std::vector<uint64_t>> values(p);
    std::atomic<int> supersteps{0};
    std::mutex mu;
    Status failure;

    Status status = cluster_->RunOnAll([&](int m) -> Status {
      Machine* machine = cluster_->machine(m);
      MachineGraph& mg = machines_[m];
      const uint64_t n_local = mg.range.size();
      ChargeTracker charges(machine->budget());
      Status local_fail = charges.Charge(n_local * 10);
      std::vector<uint8_t> active(n_local, 0);
      if (local_fail.ok()) {
        values[m].assign(n_local, kInf);
        for (uint64_t v = 0; v < n_local; ++v) {
          const VertexId vid = mg.range.begin + v;
          if (sssp) {
            if (vid == source) {
              values[m][v] = 0;
              active[v] = 1;
            }
          } else {
            values[m][v] = vid;
            active[v] = 1;
          }
        }
      }

      for (int step = 0; step < static_cast<int>(num_vertices_) + 1;
           ++step) {
        std::vector<std::vector<uint8_t>> out_bufs(p);
        if (local_fail.ok()) {
          obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
          for (uint64_t v = 0; v < n_local; ++v) {
            if (!active[v]) continue;
            const uint64_t send_val = sssp ? values[m][v] + 1 : values[m][v];
            for (uint64_t e = mg.offsets[v]; e < mg.offsets[v + 1]; ++e) {
              const VertexId w = mg.neighbors[e];
              std::vector<uint8_t>& buf = out_bufs[OwnerOf(w)];
              AppendPod<VertexId>(&buf, w);
              AppendPod<uint64_t>(&buf, send_val);
            }
          }
        }
        for (int dst = 0; dst < p; ++dst) {
          cluster_->fabric()->Send(m, dst, kTagSparse,
                                   std::move(out_bufs[dst]));
        }
        uint64_t next_active = 0;
        {
          obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
          std::fill(active.begin(), active.end(), 0);
          for (int src = 0; src < p; ++src) {
            Message msg;
            if (!cluster_->fabric()->Recv(m, kTagSparse, &msg)) {
              return Status::Aborted("fabric shutdown");
            }
            if (!local_fail.ok()) continue;
            PodReader reader(msg.payload);
            while (!reader.AtEnd()) {
              const VertexId w = reader.Read<VertexId>();
              const uint64_t val = reader.Read<uint64_t>();
              const uint64_t idx = w - mg.range.begin;
              if (val < values[m][idx]) {
                values[m][idx] = val;
                if (!active[idx]) {
                  active[idx] = 1;
                  ++next_active;
                }
              }
            }
          }
        }
        uint64_t reduce[2] = {next_active, local_fail.ok() ? 0u : 1u};
        TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
        if (m == 0) supersteps.fetch_add(1);
        if (reduce[1] > 0 || reduce[0] == 0) break;
      }
      if (!local_fail.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (failure.ok()) failure = local_fail;
      }
      return Status::OK();
    });
    if (!status.ok()) {
      result.status = status;
      return result;
    }
    if (!failure.ok()) {
      result.status = failure;
      return result;
    }
    out->assign(num_vertices_, kInf);
    for (int m = 0; m < p; ++m) {
      std::copy(values[m].begin(), values[m].end(),
                out->begin() + machines_[m].range.begin);
    }
    result.supersteps = supersteps.load();
    result.wall_seconds = timer.Seconds();
    return result;
  }

  uint64_t num_vertices_ = 0;
  std::vector<uint64_t> range_starts_;
  std::vector<MachineGraph> machines_;
  bool loaded_ = false;
};

}  // namespace

std::unique_ptr<BaselineSystem> MakeGeminiLike(Cluster* cluster) {
  return std::make_unique<GeminiLikeSystem>(cluster);
}

}  // namespace tgpp
