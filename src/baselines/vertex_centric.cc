#include "baselines/vertex_centric.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "baselines/baseline_util.h"
#include "core/codec.h"
#include "graph/csr.h"
#include "util/timer.h"

namespace tgpp {

using baseline_internal::AllreduceSum;
using baseline_internal::ChargeTracker;

namespace {
constexpr uint32_t kTagVcMessages = 8;
constexpr const char* kAdjFileName = "vc_adj.bin";
constexpr uint64_t kStreamBufferIds = 128 * 1024;  // 1 MB streaming window
}  // namespace

Status VertexCentricSystem::Load(const EdgeList& graph) {
  Unload();
  num_vertices_ = graph.num_vertices;
  const int p = cluster_->num_machines();
  machines_.assign(p, {});
  placement_.Init(num_vertices_, p);

  // Bucket edges by source owner (the shuffle of the loading phase).
  std::vector<std::vector<Edge>> buckets(p);
  for (const Edge& e : graph.edges) {
    buckets[placement_.Owner(e.src)].push_back(e);
  }

  Status status = cluster_->RunOnAll([&](int m) -> Status {
    Machine* machine = cluster_->machine(m);
    MachineGraph& mg = machines_[m];
    mg.num_local = placement_.LocalCount(m);

    // Build the local CSR (counting sort by local source index).
    std::vector<Edge>& edges = buckets[m];
    mg.offsets.assign(mg.num_local + 1, 0);
    for (const Edge& e : edges) ++mg.offsets[placement_.LocalIndex(e.src) + 1];
    for (uint64_t v = 0; v < mg.num_local; ++v) {
      mg.offsets[v + 1] += mg.offsets[v];
    }
    mg.neighbors.resize(edges.size());
    {
      std::vector<uint64_t> cursor(mg.offsets.begin(),
                                   mg.offsets.end() - 1);
      for (const Edge& e : edges) {
        mg.neighbors[cursor[placement_.LocalIndex(e.src)]++] = e.dst;
      }
    }
    mg.adj_bytes = mg.neighbors.size() * sizeof(VertexId);
    const uint64_t offsets_bytes = mg.offsets.size() * sizeof(uint64_t);

    // Loading-phase transient charge (shuffle/partition buffers). The
    // paper observes e.g. Gemini crashing *during partitioning*; this is
    // where such failures surface.
    const uint64_t transient = static_cast<uint64_t>(
        static_cast<double>(mg.adj_bytes + offsets_bytes) *
        options_.load_transient_factor);
    {
      ScopedCharge load_charge(machine->budget(), transient);
      if (!load_charge.ok()) return load_charge.status();
    }

    // Resident charge.
    uint64_t resident = static_cast<uint64_t>(
        static_cast<double>(mg.adj_bytes + offsets_bytes) *
        options_.resident_factor);
    if (options_.adjacency_on_disk) {
      // Out-of-core: the neighbor array lives on disk; only offsets (and
      // the lineage overhead, if any) stay resident.
      TGPP_RETURN_IF_ERROR(machine->disk()->Truncate(kAdjFileName, 0));
      TGPP_RETURN_IF_ERROR(machine->disk()->Write(
          kAdjFileName, 0, mg.neighbors.data(), mg.adj_bytes));
      mg.neighbors.clear();
      mg.neighbors.shrink_to_fit();
      resident = offsets_bytes;
    }
    TGPP_RETURN_IF_ERROR(machine->budget()->TryCharge(resident));
    mg.charged_bytes = resident;
    return Status::OK();
  });
  if (!status.ok()) {
    Unload();
    return status;
  }
  loaded_ = true;
  return Status::OK();
}

void VertexCentricSystem::Unload() {
  for (int m = 0; m < static_cast<int>(machines_.size()); ++m) {
    if (machines_[m].charged_bytes > 0) {
      cluster_->machine(m)->budget()->Release(machines_[m].charged_bytes);
    }
  }
  machines_.clear();
  loaded_ = false;
}

Status VertexCentricSystem::ForEachLocalAdjacency(
    int m,
    const std::function<void(uint64_t, std::span<const VertexId>)>& fn) {
  MachineGraph& mg = machines_[m];
  if (!options_.adjacency_on_disk) {
    for (uint64_t v = 0; v < mg.num_local; ++v) {
      fn(v, std::span<const VertexId>(
                mg.neighbors.data() + mg.offsets[v],
                mg.offsets[v + 1] - mg.offsets[v]));
    }
    return Status::OK();
  }
  // Stream the on-disk neighbor array in windows.
  Machine* machine = cluster_->machine(m);
  std::vector<VertexId> buffer;
  uint64_t v = 0;
  while (v < mg.num_local) {
    const uint64_t start = mg.offsets[v];
    uint64_t end_vertex = v;
    while (end_vertex < mg.num_local &&
           mg.offsets[end_vertex + 1] - start <= kStreamBufferIds) {
      ++end_vertex;
    }
    if (end_vertex == v) end_vertex = v + 1;  // single oversized list
    const uint64_t ids = mg.offsets[end_vertex] - start;
    buffer.resize(ids);
    if (ids > 0) {
      TGPP_RETURN_IF_ERROR(machine->disk()->Read(
          kAdjFileName, start * sizeof(VertexId), buffer.data(),
          ids * sizeof(VertexId)));
    }
    for (; v < end_vertex; ++v) {
      fn(v, std::span<const VertexId>(
                buffer.data() + (mg.offsets[v] - start),
                mg.offsets[v + 1] - mg.offsets[v]));
    }
  }
  return Status::OK();
}

Status VertexCentricSystem::ChargeSuperstepCopy(int m) {
  if (options_.per_superstep_copy <= 0.0) return Status::OK();
  Machine* machine = cluster_->machine(m);
  MachineGraph& mg = machines_[m];
  const uint64_t copy_bytes = static_cast<uint64_t>(
      static_cast<double>(mg.adj_bytes) * options_.per_superstep_copy);
  if (copy_bytes == 0) return Status::OK();
  ScopedCharge charge(machine->budget(), copy_bytes);
  if (charge.ok() && !options_.adjacency_on_disk) {
    // Immutable-RDD materialization: a real copy of the adjacency slice.
    const size_t ids = std::min<size_t>(copy_bytes / sizeof(VertexId),
                                        mg.neighbors.size());
    std::vector<VertexId> copy(mg.neighbors.begin(),
                               mg.neighbors.begin() + ids);
    // The copy is dropped immediately; the cost is the allocation+memcpy.
    (void)copy;
    return Status::OK();
  }
  // Under memory pressure the copy spills through disk (slower, but no
  // crash) — GraphX's MEMORY_AND_DISK persistence (paper §5.1).
  std::vector<uint8_t> chunk(1 << 20, 0);
  uint64_t remaining = copy_bytes;
  while (remaining > 0) {
    const uint64_t n = std::min<uint64_t>(remaining, chunk.size());
    TGPP_RETURN_IF_ERROR(
        machine->disk()->Write("rdd_spill.bin", 0, chunk.data(), n));
    TGPP_RETURN_IF_ERROR(
        machine->disk()->Read("rdd_spill.bin", 0, chunk.data(), n));
    remaining -= n;
  }
  return Status::OK();
}

template <typename T, typename ScatterVal, typename CombineFn,
          typename ApplyFn>
BaselineResult VertexCentricSystem::RunPropagation(
    int max_supersteps, bool all_active_always, const std::vector<T>& init,
    const ScatterVal& scatter_val, const CombineFn& combine,
    const ApplyFn& apply, std::vector<T>* final_values) {
  BaselineResult result;
  if (!loaded_) {
    result.status = Status::Internal("not loaded");
    return result;
  }
  WallTimer timer;
  const int p = cluster_->num_machines();

  // Per-machine value/flag arrays.
  std::vector<std::vector<T>> values(p);
  std::vector<std::vector<T>> incoming(p);
  std::vector<std::vector<uint8_t>> has_incoming(p);
  std::vector<std::vector<uint8_t>> active(p);
  std::atomic<int> supersteps{0};
  std::mutex status_mu;
  Status failure;

  Status status = cluster_->RunOnAll([&](int m) -> Status {
    Machine* machine = cluster_->machine(m);
    MachineGraph& mg = machines_[m];
    ChargeTracker charges(machine->budget());
    Status local_fail = charges.Charge(mg.num_local * (2 * sizeof(T) + 2));
    if (local_fail.ok()) {
      values[m].resize(mg.num_local);
      incoming[m].assign(mg.num_local, T{});
      has_incoming[m].assign(mg.num_local, 0);
      active[m].assign(mg.num_local, 1);
      for (uint64_t v = 0; v < mg.num_local; ++v) {
        values[m][v] = init[placement_.GlobalId(v, m)];
      }
    }

    for (int step = 0; step < max_supersteps; ++step) {
      // Scatter/compute: build per-destination message buffers.
      std::vector<std::vector<uint8_t>> out(p);
      uint64_t out_bytes = 0;
      if (local_fail.ok()) {
        obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
        Status copy_status = ChargeSuperstepCopy(m);
        if (!copy_status.ok()) local_fail = copy_status;
        if (local_fail.ok()) {
          Status s = ForEachLocalAdjacency(
              m, [&](uint64_t v, std::span<const VertexId> nbrs) {
                if (!active[m][v]) return;
                const T msg = scatter_val(placement_.GlobalId(v, m), values[m][v]);
                for (VertexId w : nbrs) {
                  std::vector<uint8_t>& buf = out[placement_.Owner(w)];
                  AppendPod<VertexId>(&buf, w);
                  AppendPod<T>(&buf, msg);
                }
              });
          if (!s.ok()) local_fail = s;
        }
        for (const auto& buf : out) out_bytes += buf.size();
        if (local_fail.ok()) {
          if (options_.messages_on_disk) {
            // External-memory systems batch outgoing messages through
            // disk blocks instead of holding them resident (HybridGraph's
            // pull/push switching, Giraph's out-of-core messaging): the
            // memory cost is one block, the price is a disk round trip.
            Status s = machine->disk()->Truncate("msg_spill.bin", 0);
            for (const auto& buf : out) {
              if (!s.ok() || buf.empty()) continue;
              uint64_t off;
              s = machine->disk()->Append("msg_spill.bin", buf.data(),
                                          buf.size(), &off);
            }
            if (s.ok() && out_bytes > 0) {
              std::vector<uint8_t> readback(out_bytes);
              s = machine->disk()->Read("msg_spill.bin", 0,
                                        readback.data(), out_bytes);
            }
            if (!s.ok()) local_fail = s;
          } else {
            // In-memory systems hold the full outgoing buffers resident
            // for the superstep.
            Status s = machine->budget()->TryCharge(out_bytes);
            if (s.ok()) {
              machine->budget()->Release(out_bytes);
            } else {
              local_fail = s;
            }
          }
        }
      }
      // Exchange: exactly one message to every machine (possibly empty)
      // keeps the protocol symmetric even under failure.
      for (int dst = 0; dst < p; ++dst) {
        cluster_->fabric()->Send(m, dst, kTagVcMessages,
                                 std::move(out[dst]));
      }
      uint64_t next_active = 0;
      {
        obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
        std::fill(has_incoming[m].begin(), has_incoming[m].end(), 0);
        for (int src = 0; src < p; ++src) {
          Message msg;
          if (!cluster_->fabric()->Recv(m, kTagVcMessages, &msg)) {
            return Status::Aborted("fabric shutdown");
          }
          if (!local_fail.ok()) continue;  // drain only
          PodReader reader(msg.payload);
          while (!reader.AtEnd()) {
            const VertexId w = reader.Read<VertexId>();
            const T val = reader.Read<T>();
            const uint64_t idx = placement_.LocalIndex(w);
            if (has_incoming[m][idx]) {
              combine(incoming[m][idx], val);
            } else {
              incoming[m][idx] = val;
              has_incoming[m][idx] = 1;
            }
          }
        }
        // Apply.
        if (local_fail.ok()) {
          for (uint64_t v = 0; v < mg.num_local; ++v) {
            const T* in = has_incoming[m][v] ? &incoming[m][v] : nullptr;
            const bool act = apply(placement_.GlobalId(v, m), values[m][v], in);
            active[m][v] = all_active_always || act ? 1 : 0;
            if (active[m][v]) ++next_active;
          }
        }
      }
      // Allreduce: [active, failed].
      uint64_t reduce[2] = {next_active, local_fail.ok() ? 0u : 1u};
      TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
      if (m == 0) supersteps.fetch_add(1);
      if (reduce[1] > 0) break;       // some machine failed
      if (reduce[0] == 0) break;      // converged
      if (all_active_always && step + 1 >= max_supersteps) break;
    }
    if (!local_fail.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      if (failure.ok()) failure = local_fail;
    }
    return Status::OK();
  });

  if (!status.ok()) {
    result.status = status;
    return result;
  }
  if (!failure.ok()) {
    result.status = failure;
    return result;
  }
  result.supersteps = supersteps.load();
  result.wall_seconds = timer.Seconds();
  if (final_values != nullptr) {
    final_values->assign(num_vertices_, T{});
    for (int m = 0; m < p; ++m) {
      for (uint64_t v = 0; v < machines_[m].num_local; ++v) {
        (*final_values)[placement_.GlobalId(v, m)] = values[m][v];
      }
    }
  }
  return result;
}

BaselineResult VertexCentricSystem::RunPageRank(int iterations) {
  std::vector<double> init(num_vertices_, 1.0);
  // Degrees for the scatter value.
  const int p = cluster_->num_machines();
  std::vector<std::vector<uint64_t>> degree(p);
  for (int m = 0; m < p; ++m) {
    degree[m].resize(machines_[m].num_local);
    for (uint64_t v = 0; v < machines_[m].num_local; ++v) {
      degree[m][v] = machines_[m].offsets[v + 1] - machines_[m].offsets[v];
    }
  }
  BaselineResult result = RunPropagation<double>(
      iterations, /*all_active_always=*/true, init,
      [&](VertexId v, double pr) {
        const uint64_t d = degree[placement_.Owner(v)][placement_.LocalIndex(v)];
        return d > 0 ? pr / static_cast<double>(d) : 0.0;
      },
      [](double& acc, double in) { acc += in; },
      [](VertexId, double& pr, const double* in) {
        pr = 0.15 + 0.85 * (in != nullptr ? *in : 0.0);
        return true;
      },
      &pagerank_);
  return result;
}

BaselineResult VertexCentricSystem::RunSssp(VertexId source) {
  constexpr uint64_t kInf = ~0ull;
  std::vector<uint64_t> init(num_vertices_, kInf);
  init[source] = 0;
  // Only the source is initially active: emulate by masking scatter for
  // vertices at infinity (they send nothing).
  BaselineResult result = RunPropagation<uint64_t>(
      static_cast<int>(num_vertices_) + 1, /*all_active_always=*/false,
      init,
      [](VertexId, uint64_t dist) {
        return dist == kInf ? kInf : dist + 1;
      },
      [](uint64_t& acc, uint64_t in) { acc = std::min(acc, in); },
      [](VertexId, uint64_t& dist, const uint64_t* in) {
        if (in != nullptr && *in < dist) {
          dist = *in;
          return true;
        }
        return false;
      },
      &distances_);
  return result;
}

BaselineResult VertexCentricSystem::RunWcc() {
  std::vector<uint64_t> init(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) init[v] = v;
  return RunPropagation<uint64_t>(
      static_cast<int>(num_vertices_) + 1, /*all_active_always=*/false,
      init, [](VertexId, uint64_t label) { return label; },
      [](uint64_t& acc, uint64_t in) { acc = std::min(acc, in); },
      [](VertexId, uint64_t& label, const uint64_t* in) {
        if (in != nullptr && *in < label) {
          label = *in;
          return true;
        }
        return false;
      },
      &labels_);
}

BaselineResult VertexCentricSystem::RunTriangleCount() {
  BaselineResult result;
  if (!options_.supports_tc) return NotSupported("TC");
  if (!loaded_) {
    result.status = Status::Internal("not loaded");
    return result;
  }
  WallTimer timer;
  const int p = cluster_->num_machines();
  std::mutex status_mu;
  Status failure;
  std::atomic<uint64_t> total_triangles{0};

  Status status = cluster_->RunOnAll([&](int m) -> Status {
    Machine* machine = cluster_->machine(m);
    MachineGraph& mg = machines_[m];
    ChargeTracker charges(machine->budget());
    Status local_fail;

    // Superstep 1: every vertex v sends, to each larger neighbor w, the
    // suffix of its (sorted, order-filtered) neighbor list above w. This
    // is the neighborhood-encoding workaround (paper §1): total message
    // volume ~ sum d_i^2. The sender buffers the outgoing volume before
    // shipping, so it is pre-charged from a cheap upper bound — failing
    // fast instead of allocating gigabytes first.
    {
      uint64_t estimate = 0;
      Status s = ForEachLocalAdjacency(
          m, [&](uint64_t, std::span<const VertexId> nbrs) {
            estimate += nbrs.size() * nbrs.size() * sizeof(VertexId) / 2;
          });
      if (!s.ok()) local_fail = s;
      if (local_fail.ok()) {
        Status charge = charges.Charge(estimate);
        if (!charge.ok()) local_fail = charge;
      }
    }
    std::vector<std::vector<uint8_t>> out(p);
    if (local_fail.ok()) {
      obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
      std::vector<VertexId> larger;
      Status s = ForEachLocalAdjacency(
          m, [&](uint64_t v, std::span<const VertexId> nbrs) {
            const VertexId vid = placement_.GlobalId(v, m);
            larger.assign(nbrs.begin(), nbrs.end());
            std::sort(larger.begin(), larger.end());
            larger.erase(
                std::unique(larger.begin(), larger.end()), larger.end());
            auto first =
                std::upper_bound(larger.begin(), larger.end(), vid);
            for (auto it = first; it != larger.end(); ++it) {
              const size_t suffix = larger.end() - (it + 1);
              if (suffix == 0) continue;
              std::vector<uint8_t>& buf = out[placement_.Owner(*it)];
              AppendPod<VertexId>(&buf, *it);
              AppendPod<uint64_t>(&buf, suffix);
              AppendPodSpan<VertexId>(
                  &buf, std::span<const VertexId>(&*(it + 1), suffix));
            }
          });
      if (!s.ok()) local_fail = s;
    }
    for (int dst = 0; dst < p; ++dst) {
      cluster_->fabric()->Send(m, dst, kTagVcMessages, std::move(out[dst]));
    }

    // Receive and buffer all messages (Pregel semantics: messages are held
    // until the next superstep) — charged against the budget as they
    // arrive; this is where the OOM of Fig 1(b) happens.
    std::vector<Message> inbox;
    for (int src = 0; src < p; ++src) {
      Message msg;
      if (!cluster_->fabric()->Recv(m, kTagVcMessages, &msg)) {
        return Status::Aborted("fabric shutdown");
      }
      if (local_fail.ok()) {
        Status s = charges.Charge(msg.payload.size());
        if (!s.ok()) {
          local_fail = s;
          continue;
        }
        inbox.push_back(std::move(msg));
      }
    }

    // Superstep 2: intersect each message list with the receiver's
    // adjacency list.
    uint64_t local_triangles = 0;
    if (local_fail.ok()) {
      obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
      // Sorted local adjacency for intersection.
      std::vector<std::pair<uint64_t, std::vector<VertexId>>> msgs;
      for (const Message& msg : inbox) {
        PodReader reader(msg.payload);
        while (!reader.AtEnd()) {
          const VertexId w = reader.Read<VertexId>();
          const uint64_t len = reader.Read<uint64_t>();
          std::vector<VertexId> list(len);
          reader.ReadSpan(list.data(), len);
          msgs.emplace_back(placement_.LocalIndex(w), std::move(list));
        }
      }
      std::sort(msgs.begin(), msgs.end(),
                [](const auto& a, const auto& b) {
                  return a.first < b.first;
                });
      size_t cursor = 0;
      std::vector<VertexId> sorted_nbrs;
      Status s = ForEachLocalAdjacency(
          m, [&](uint64_t v, std::span<const VertexId> nbrs) {
            if (cursor >= msgs.size() || msgs[cursor].first != v) return;
            sorted_nbrs.assign(nbrs.begin(), nbrs.end());
            std::sort(sorted_nbrs.begin(), sorted_nbrs.end());
            while (cursor < msgs.size() && msgs[cursor].first == v) {
              local_triangles += SortedIntersectionCount(
                  msgs[cursor].second, sorted_nbrs);
              ++cursor;
            }
          });
      if (!s.ok()) local_fail = s;
    }

    uint64_t reduce[2] = {local_triangles, local_fail.ok() ? 0u : 1u};
    TGPP_RETURN_IF_ERROR(AllreduceSum(cluster_, m, reduce));
    if (m == 0) total_triangles.store(reduce[0]);
    if (!local_fail.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      if (failure.ok()) failure = local_fail;
    }
    return Status::OK();
  });

  if (!status.ok()) {
    result.status = status;
    return result;
  }
  if (!failure.ok()) {
    result.status = failure;
    return result;
  }
  result.supersteps = 2;
  result.wall_seconds = timer.Seconds();
  result.aggregate = total_triangles.load();
  return result;
}

// --- factories ---------------------------------------------------------

std::unique_ptr<BaselineSystem> MakePregelLike(Cluster* cluster) {
  VertexCentricOptions options;
  options.name = "Pregel+";
  options.overlap = OverlapModel::kFullOverlap;
  return std::make_unique<VertexCentricSystem>(cluster, options);
}

std::unique_ptr<BaselineSystem> MakeGraphxLike(Cluster* cluster) {
  VertexCentricOptions options;
  options.name = "GraphX";
  options.overlap = OverlapModel::kSerialized;
  options.resident_factor = 2.0;        // RDD lineage/cache
  options.load_transient_factor = 2.0;  // shuffle
  options.per_superstep_copy = 1.0;     // immutable RDDs
  return std::make_unique<VertexCentricSystem>(cluster, options);
}

std::unique_ptr<BaselineSystem> MakeGiraphLike(Cluster* cluster) {
  VertexCentricOptions options;
  options.name = "Giraph(ooc)";
  options.overlap = OverlapModel::kSerialized;
  options.adjacency_on_disk = true;   // out-of-core partitions
  options.load_transient_factor = 0.5;  // spills during load
  return std::make_unique<VertexCentricSystem>(cluster, options);
}

std::unique_ptr<BaselineSystem> MakeHybridGraphLike(Cluster* cluster) {
  VertexCentricOptions options;
  options.name = "HybridGraph";
  options.overlap = OverlapModel::kSerialized;
  options.adjacency_on_disk = true;  // external-memory adjacency
  options.messages_on_disk = true;   // hybrid message switching
  // GraphDataServerDisk holds the adjacency in memory *while loading*
  // (paper §5.4.1) — the transient charge below is what fails for the
  // largest graphs.
  options.load_transient_factor = 1.0;
  return std::make_unique<VertexCentricSystem>(cluster, options);
}

}  // namespace tgpp
