// DiskDevice: a per-machine storage device abstraction.
//
// All reads/writes go to real files under the machine's directory, and every
// byte is counted. The device carries a *nominal bandwidth* profile (PCIe
// SSD or HDD RAID, matching the paper's two clusters in §5.1); the
// decomposed-time figures (9/10) compute disk I/O time as
// total bytes / aggregate nominal bandwidth, exactly as the paper does.

#ifndef TGPP_STORAGE_DISK_DEVICE_H_
#define TGPP_STORAGE_DISK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tgpp {

struct DiskProfile {
  const char* name;
  double bandwidth_bytes_per_sec;
};

// Paper §5.1: PCIe SSD max 1.5 GB/s; 4xHDD RAID-0 max 300 MB/s.
inline constexpr DiskProfile kPcieSsdProfile{"PCIeSSD", 1.5e9};
inline constexpr DiskProfile kHddRaidProfile{"HDD-RAID0", 300e6};

// How the device retries *transient* I/O failures (syscall errors and
// injected `disk.*:io_error` faults). Reading past EOF is permanent and
// never retried; injected `timeout` faults bypass retry entirely.
struct IoRetryPolicy {
  int max_attempts = 4;                // 1 = no retry
  int64_t initial_backoff_micros = 50;
  double backoff_multiplier = 4.0;     // 50us, 200us, 800us, ...
};

class DiskDevice {
 public:
  // Creates `dir` if needed. All file names are relative to it.
  DiskDevice(std::string dir, DiskProfile profile);
  ~DiskDevice();

  DiskDevice(const DiskDevice&) = delete;
  DiskDevice& operator=(const DiskDevice&) = delete;

  const std::string& dir() const { return dir_; }
  const DiskProfile& profile() const { return profile_; }

  // Stable small integer identifying `file` on this device (used as a
  // buffer-pool key component; survives reopening the file).
  uint32_t StableFileId(const std::string& file);

  Status Read(const std::string& file, uint64_t offset, void* data,
              size_t n);
  Status Write(const std::string& file, uint64_t offset, const void* data,
               size_t n);
  // Appends and reports the offset the data landed at.
  Status Append(const std::string& file, const void* data, size_t n,
                uint64_t* offset_out);
  Result<uint64_t> FileSize(const std::string& file);
  Status Truncate(const std::string& file, uint64_t size);
  Status Remove(const std::string& file);
  bool Exists(const std::string& file);
  Status Sync(const std::string& file);

  uint64_t bytes_read() const { return bytes_read_.value(); }
  uint64_t bytes_written() const { return bytes_written_.value(); }
  void ResetCounters();

  // Wall-clock latency distributions of whole operations (including
  // retries and injected delays), in nanoseconds.
  const obs::LatencyHistogram& read_latency() const { return read_latency_; }
  const obs::LatencyHistogram& write_latency() const {
    return write_latency_;
  }
  // Operations currently in flight on this device.
  int64_t queue_depth() const { return queue_depth_.value(); }

  // Registers this device's instruments under "disk.*" for `machine`,
  // appending the RAII handles to `out` (names already taken are skipped).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out);

  // The simulated machine this device belongs to, for machine-scoped
  // fault rules (common/fault_injector.h). -1 = unattributed.
  void set_fault_machine(int machine) { fault_machine_ = machine; }
  int fault_machine() const { return fault_machine_; }

  void set_retry_policy(const IoRetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const IoRetryPolicy& retry_policy() const { return retry_policy_; }

  // Observability for the chaos tests and bench output: transient
  // failures the device absorbed (retries that happened) and injected
  // faults it saw at its sites.
  uint64_t io_retries() const { return io_retries_.value(); }
  uint64_t injected_faults() const { return injected_faults_.value(); }

  // bytes / nominal bandwidth — the paper's disk I/O time model.
  double ModeledIoSeconds() const {
    return static_cast<double>(bytes_read() + bytes_written()) /
           profile_.bandwidth_bytes_per_sec;
  }

 private:
  // Returns an open fd for the file, creating it on demand.
  Result<int> GetFd(const std::string& file);

  // Runs `attempt` up to retry_policy_.max_attempts times with
  // exponential backoff; `attempt(&transient)` reports whether a failure
  // is retryable. Defined in the .cc (only instantiated there).
  template <typename Attempt>
  Status RunWithRetry(Attempt&& attempt);

  // Consults the fault injector at `site`. Returns an error to fail the
  // attempt with (setting *transient), or OK to proceed (delays are
  // served in place).
  Status CheckFault(const char* site, bool* transient);

  std::string dir_;
  DiskProfile profile_;
  int fault_machine_ = -1;
  IoRetryPolicy retry_policy_;

  std::mutex mu_;
  std::map<std::string, int> fds_;
  std::map<std::string, uint32_t> file_ids_;

  obs::Counter bytes_read_;
  obs::Counter bytes_written_;
  obs::Counter io_retries_;
  obs::Counter injected_faults_;
  obs::LatencyHistogram read_latency_;
  obs::LatencyHistogram write_latency_;
  obs::Gauge queue_depth_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_DISK_DEVICE_H_
