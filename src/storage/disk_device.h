// DiskDevice: a per-machine storage device abstraction.
//
// All reads/writes go to real files under the machine's directory, and every
// byte is counted. The device carries a *nominal bandwidth* profile (PCIe
// SSD or HDD RAID, matching the paper's two clusters in §5.1); the
// decomposed-time figures (9/10) compute disk I/O time as
// total bytes / aggregate nominal bandwidth, exactly as the paper does.
//
// A profile may declare `stripe = N` to spread a logical file across N
// backing files (RAID-0 style, `name.s0` .. `name.s<N-1>`), one
// `stripe_unit_bytes` unit at a time — the software analogue of the
// paper's 4xHDD RAID-0 cluster, and the substrate FlashGraph-style
// request merging runs on: with the unit equal to the page size, logical
// pages p and p+N are physically adjacent on stripe p%N, so a striped
// scan still produces large sequential per-device reads.
//
// Asynchronous reads go through SubmitReads(), which maps page requests
// to physical extents, sorts them, merges physically adjacent ones into
// single vectored requests (counted in `disk.merged_reads`), and hands
// them to an IoBackend (io_backend.h). Fault injection on that path is
// rolled once per *merged* request at submit time; a failed merged read
// falls back to synchronous per-page Read() — which carries the full
// retry/fault semantics — on the completion thread.

#ifndef TGPP_STORAGE_DISK_DEVICE_H_
#define TGPP_STORAGE_DISK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/io_backend.h"

namespace tgpp {

struct DiskProfile {
  const char* name;
  double bandwidth_bytes_per_sec;  // per backing device
  // Number of backing files a logical file is striped across (RAID-0).
  // 1 = no striping (plain file per logical name).
  int stripe = 1;
  // Striping granularity. Defaults to the slotted-page size so one page
  // maps to exactly one stripe unit on one device.
  uint64_t stripe_unit_bytes = 64 * 1024;

  // Whole-device bandwidth: per-backing-device bandwidth times fan-out.
  constexpr double aggregate_bandwidth_bytes_per_sec() const {
    return bandwidth_bytes_per_sec * (stripe < 1 ? 1 : stripe);
  }
};

// Paper §5.1: PCIe SSD max 1.5 GB/s; 4xHDD RAID-0 max 300 MB/s aggregate
// (modeled as 4 spindles at 75 MB/s each).
inline constexpr DiskProfile kPcieSsdProfile{"PCIeSSD", 1.5e9};
inline constexpr DiskProfile kHddRaidProfile{"HDD-RAID0", 75e6, 4};

// How the device retries *transient* I/O failures (syscall errors and
// injected `disk.*:io_error` faults). Reading past EOF is permanent and
// never retried; injected `timeout` faults bypass retry entirely.
struct IoRetryPolicy {
  int max_attempts = 4;                // 1 = no retry
  int64_t initial_backoff_micros = 50;
  double backoff_multiplier = 4.0;     // 50us, 200us, 800us, ...
};

// One asynchronous page-read request for SubmitReads. `done` is invoked
// exactly once — possibly inline on the submitting thread (submit-time
// rejection), usually on a backend completion thread.
struct AsyncPageRead {
  uint64_t offset = 0;
  void* data = nullptr;
  size_t len = 0;
  std::function<void(Status)> done;
};

struct AsyncReadGroup;

class DiskDevice {
 public:
  // Creates `dir` if needed. All file names are relative to it.
  DiskDevice(std::string dir, DiskProfile profile);
  ~DiskDevice();

  DiskDevice(const DiskDevice&) = delete;
  DiskDevice& operator=(const DiskDevice&) = delete;

  const std::string& dir() const { return dir_; }
  const DiskProfile& profile() const { return profile_; }
  int stripe() const { return stripe_; }

  // Stable small integer identifying `file` on this device (used as a
  // buffer-pool key component; survives reopening the file).
  uint32_t StableFileId(const std::string& file);

  // Reading a missing file is a clean IOError — the device never
  // materializes files on read paths (Read/FileSize/Sync). Use Touch()
  // or any write operation to create one.
  Status Read(const std::string& file, uint64_t offset, void* data,
              size_t n);
  Status Write(const std::string& file, uint64_t offset, const void* data,
               size_t n);
  // Appends and reports the offset the data landed at.
  Status Append(const std::string& file, const void* data, size_t n,
                uint64_t* offset_out);
  Result<uint64_t> FileSize(const std::string& file);
  Status Truncate(const std::string& file, uint64_t size);
  Status Remove(const std::string& file);
  bool Exists(const std::string& file);
  Status Sync(const std::string& file);
  // Creates the file (all stripe parts) if missing; no-op otherwise.
  Status Touch(const std::string& file);

  // Submits a batch of page reads through `backend`, merging physically
  // adjacent extents into single vectored requests. Each request's
  // `done` fires exactly once. Injected delays at the `disk.read` site
  // become per-request completion deadlines (overlapping in-flight
  // requests overlap their delays, like a real device); injected errors
  // are resolved on the completion thread (transient + retries left →
  // per-page synchronous fallback, else the error is delivered).
  void SubmitReads(const std::string& file, std::vector<AsyncPageRead> reads,
                   IoBackend* backend);

  uint64_t bytes_read() const { return bytes_read_.value(); }
  uint64_t bytes_written() const { return bytes_written_.value(); }
  void ResetCounters();

  // Wall-clock latency distributions of whole operations (including
  // retries and injected delays), in nanoseconds.
  const obs::LatencyHistogram& read_latency() const { return read_latency_; }
  const obs::LatencyHistogram& write_latency() const {
    return write_latency_;
  }
  // Operations currently in flight on this device (a merged async read
  // counts once, for the lifetime of the merged request).
  int64_t queue_depth() const { return queue_depth_.value(); }
  // In-flight operations on one stripe (0 <= d < stripe()).
  int64_t stripe_queue_depth(int d) const {
    return stripe_queue_depth_[static_cast<size_t>(d)].value();
  }
  // Pages that rode along in a merged request instead of being issued
  // individually (group of k adjacent pages → k-1 merged).
  uint64_t merged_reads() const { return merged_reads_.value(); }

  // Registers this device's instruments under "disk.*" for `machine`,
  // appending the RAII handles to `out` (names already taken are skipped).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out);

  // The simulated machine this device belongs to, for machine-scoped
  // fault rules (common/fault_injector.h). -1 = unattributed.
  void set_fault_machine(int machine) { fault_machine_ = machine; }
  int fault_machine() const { return fault_machine_; }

  void set_retry_policy(const IoRetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const IoRetryPolicy& retry_policy() const { return retry_policy_; }

  // Observability for the chaos tests and bench output: transient
  // failures the device absorbed (retries that happened) and injected
  // faults it saw at its sites.
  uint64_t io_retries() const { return io_retries_.value(); }
  uint64_t injected_faults() const { return injected_faults_.value(); }

  // bytes / aggregate nominal bandwidth — the paper's disk I/O time
  // model. Striping multiplies the aggregate (RAID-0).
  double ModeledIoSeconds() const {
    return static_cast<double>(bytes_read() + bytes_written()) /
           (profile_.bandwidth_bytes_per_sec * stripe_);
  }

 private:
  // One physical chunk of a logical [offset, offset+n) range.
  struct Extent {
    std::string part;      // physical file name (== logical if stripe 1)
    int stripe_index;      // which backing device
    uint64_t offset;       // physical offset within `part`
    char* data;
    size_t len;
  };

  std::string PartName(const std::string& file, int d) const;
  std::vector<Extent> SplitExtents(const std::string& file, uint64_t offset,
                                   const void* data, size_t n) const;

  // Returns a refcounted fd for a *physical* file. Never O_CREATs unless
  // `create`; callers hold the FdRef across the whole operation so a
  // concurrent Remove() cannot close the fd underneath them.
  Result<FdRef> GetFdRef(const std::string& part, bool create);

  // Runs `attempt` up to retry_policy_.max_attempts times with
  // exponential backoff; `attempt(&transient)` reports whether a failure
  // is retryable. Defined in the .cc (only instantiated there).
  template <typename Attempt>
  Status RunWithRetry(Attempt&& attempt);

  // Consults the fault injector at `site`. Returns an error to fail the
  // attempt with (setting *transient), or OK to proceed. Injected delays
  // are served in place, unless `delay_ms_out` is non-null — then they
  // are accumulated there for the caller to model asynchronously (the
  // merged-read path turns them into a completion deadline).
  Status CheckFault(const char* site, bool* transient,
                    int64_t* delay_ms_out = nullptr);

  // Retry loop shared by Write and Append (no ScopedDiskOp of its own:
  // the caller decides when the operation is "in the device").
  Status WriteAttempts(const char* site,
                       const std::vector<Extent>& extents,
                       const std::vector<FdRef>& fds, size_t n);

  // Completion of one merged async read, on the backend thread.
  void FinishAsyncReadGroup(const std::shared_ptr<AsyncReadGroup>& group,
                            Status status);
  friend struct AsyncReadGroup;

  std::string dir_;
  DiskProfile profile_;
  int stripe_;  // max(1, profile_.stripe)
  int fault_machine_ = -1;
  IoRetryPolicy retry_policy_;

  std::mutex mu_;  // guards fds_ and file_ids_
  std::map<std::string, FdRef> fds_;
  std::map<std::string, uint32_t> file_ids_;
  // Serializes appends so (size probe, write) is atomic per device.
  std::mutex append_mu_;

  obs::Counter bytes_read_;
  obs::Counter bytes_written_;
  obs::Counter io_retries_;
  obs::Counter injected_faults_;
  obs::Counter merged_reads_;
  obs::LatencyHistogram read_latency_;
  obs::LatencyHistogram write_latency_;
  obs::Gauge queue_depth_;
  std::vector<obs::Gauge> stripe_queue_depth_;  // sized stripe_
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_DISK_DEVICE_H_
