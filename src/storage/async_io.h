// AsyncIoService: background page reads for 3-LPO overlap (paper §4.1).
//
// The engine issues AsyncRead batches for the next adjacency-list window
// while compute threads drain the current one; completion callbacks run on
// the I/O threads and typically enqueue pinned pages into a bounded queue
// consumed by the scatter workers.

#ifndef TGPP_STORAGE_ASYNC_IO_H_
#define TGPP_STORAGE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "util/thread_pool.h"

namespace tgpp {

class AsyncIoService {
 public:
  // `trace_machine` tags I/O-thread trace events with the owning simulated
  // machine (util/trace.h); -1 leaves them untagged.
  explicit AsyncIoService(int num_io_threads, int trace_machine = -1)
      : pool_(num_io_threads,
              trace_machine >= 0 ? "m" + std::to_string(trace_machine) + ".io"
                                 : "io",
              trace_machine) {}

  // Tracks completion of one batch of reads.
  class Ticket {
   public:
    Ticket() = default;

    // Blocks until all reads in the batch have completed, returning the
    // first error encountered (if any).
    Status Wait();

    bool valid() const { return state_ != nullptr; }

   private:
    friend class AsyncIoService;
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining = 0;
      Status first_error;
    };
    std::shared_ptr<State> state_;
  };

  // Reads `pages` of `file` through `buffer_pool`, calling
  // cb(page_no, handle) on an I/O thread as each page becomes available.
  // The callback owns the pinned handle. The callback runs for EVERY
  // submitted page — on a failed read it receives an invalid handle
  // (`!handle.valid()`; the error is reported by Ticket::Wait) — so
  // consumers counting completions never wait forever on a failure.
  //
  // All reads land in shared pool frames, pinned on arrival. `prefetch`
  // marks them as read-ahead (BufferPool::Prefetch): they show up in
  // ResidentSubset immediately and their first reuse counts toward
  // `bufferpool.prefetch_hits`.
  Ticket SubmitReads(BufferPool* buffer_pool, const PageFile* file,
                     std::vector<uint64_t> pages,
                     std::function<void(uint64_t, PageHandle)> cb,
                     bool prefetch = false);

  ThreadPool* pool() { return &pool_; }

 private:
  ThreadPool pool_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_ASYNC_IO_H_
