// AsyncIoService: background page reads for 3-LPO overlap (paper §4.1).
//
// The engine issues AsyncRead batches for the next adjacency-list window
// while compute threads drain the current one; completion callbacks run
// as pages arrive and typically enqueue pinned pages into a bounded queue
// consumed by the scatter workers.
//
// A batch is resolved per page against the buffer pool
// (BufferPool::TryStartRead):
//  - resident pages are delivered inline on the submitting thread;
//  - missing pages are claimed as in-flight frames and issued through
//    DiskDevice::SubmitReads, which merges physically adjacent pages
//    into vectored requests and hands them to the configured IoBackend
//    (io_uring when available, thread-pool preadv otherwise);
//  - pages already being read by someone else (or not claimable without
//    blocking) fall back to a blocking Fetch on an I/O thread.
// Either way the callback runs exactly once per page.

#ifndef TGPP_STORAGE_ASYNC_IO_H_
#define TGPP_STORAGE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/io_backend.h"
#include "util/thread_pool.h"

namespace tgpp {

class AsyncIoService {
 public:
  // `trace_machine` tags I/O-thread trace events with the owning simulated
  // machine (util/trace.h); -1 leaves them untagged. `backend_kind`
  // selects the submission engine (kAuto → TGPP_IO_BACKEND env → uring if
  // available); `queue_depth` bounds the uring backend's in-flight
  // requests.
  explicit AsyncIoService(int num_io_threads, int trace_machine = -1,
                          IoBackendKind backend_kind = IoBackendKind::kAuto,
                          unsigned queue_depth = 64)
      : pool_(num_io_threads,
              trace_machine >= 0 ? "m" + std::to_string(trace_machine) + ".io"
                                 : "io",
              trace_machine),
        backend_(MakeIoBackend(backend_kind, &pool_, queue_depth)) {}

  // Tracks completion of one batch of reads.
  class Ticket {
   public:
    Ticket() = default;

    // Blocks until all reads in the batch have completed, returning the
    // first error encountered (if any).
    Status Wait();

    bool valid() const { return state_ != nullptr; }

   private:
    friend class AsyncIoService;
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining = 0;
      Status first_error;
    };
    std::shared_ptr<State> state_;
  };

  // Reads `pages` of `file` through `buffer_pool`, calling
  // cb(page_no, handle) as each page becomes available — inline on the
  // submitting thread for pool hits, on a backend/IO thread otherwise.
  // The callback owns the pinned handle. The callback runs for EVERY
  // submitted page — on a failed read it receives an invalid handle
  // (`!handle.valid()`; the error is reported by Ticket::Wait) — so
  // consumers counting completions never wait forever on a failure.
  //
  // All reads land in shared pool frames, pinned on arrival. `prefetch`
  // marks them as read-ahead (bufferpool.prefetch_hits on first reuse).
  // Submitting several pages in one call lets the device merge adjacent
  // ones into single vectored requests (disk.merged_reads).
  Ticket SubmitReads(BufferPool* buffer_pool, const PageFile* file,
                     std::vector<uint64_t> pages,
                     std::function<void(uint64_t, PageHandle)> cb,
                     bool prefetch = false);

  ThreadPool* pool() { return &pool_; }
  IoBackend* backend() { return backend_.get(); }
  const char* backend_name() const { return backend_->name(); }

  // Registers backend-specific instruments (e.g. disk.uring_submits).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out) {
    backend_->RegisterMetrics(registry, machine, out);
  }

 private:
  // Delivers one completed page to the user callback and settles its
  // slot in the ticket (defined in async_io.cc).
  static void Deliver(const std::shared_ptr<Ticket::State>& state,
                      const std::function<void(uint64_t, PageHandle)>& cb,
                      uint64_t page_no, Result<PageHandle> handle);

  ThreadPool pool_;
  std::unique_ptr<IoBackend> backend_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_ASYNC_IO_H_
