#include "storage/buffer_pool.h"

#include <thread>

#include "common/logging.h"
#include "obs/events.h"
#include "util/trace.h"

namespace tgpp {

void PageHandle::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(size_t num_frames) : num_frames_(num_frames) {
  TGPP_CHECK(num_frames > 0);
  frames_ = std::make_unique<Frame[]>(num_frames);
  for (size_t i = 0; i < num_frames_; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
  }
}

bool BufferPool::TryPinShared(Frame* f) {
  int32_t pc = f->pin_count.load(std::memory_order_relaxed);
  while (pc >= 0) {
    if (f->pin_count.compare_exchange_weak(pc, pc + 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

int BufferPool::TryClaimVictim() {
  std::lock_guard<std::mutex> lock(clock_mu_);
  // Two full sweeps: the first clears ref bits, the second must find a
  // frame unless everything is pinned, claimed, or in flight.
  for (size_t step = 0; step < num_frames_ * 2; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_frames_;
    if (f.pin_count.load(std::memory_order_relaxed) != 0) continue;
    if (f.ref.exchange(false, std::memory_order_relaxed)) continue;
    int32_t expected = 0;
    if (f.pin_count.compare_exchange_strong(expected, -1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      return static_cast<int>(idx);
    }
  }
  return -1;
}

void BufferPool::ReleaseFrame(Frame* f) {
  f->state.store(kFree, std::memory_order_relaxed);
  f->prefetched = false;
  f->pin_count.store(0, std::memory_order_release);
  if (stall_waiters_.load(std::memory_order_relaxed) > 0) {
    unpin_cv_.notify_all();
  }
}

Result<PageHandle> BufferPool::Fetch(const PageFile* file, uint64_t page_no) {
  return FetchImpl(file, page_no, /*prefetch=*/false);
}

Result<PageHandle> BufferPool::Prefetch(const PageFile* file,
                                        uint64_t page_no) {
  return FetchImpl(file, page_no, /*prefetch=*/true);
}

Result<PageHandle> BufferPool::FetchImpl(const PageFile* file,
                                         uint64_t page_no, bool prefetch) {
  const PageKey key{file->device(), file->file_id(), page_no};
  Shard& shard = ShardFor(key);
  // Stall bookkeeping for the all-frames-pinned path (set lazily; this is
  // exactly the window-budget pressure the memory model is meant to
  // avoid, so it is surfaced in traces as bufferpool.pin_stall).
  int64_t stall_start = -1;
  std::chrono::steady_clock::time_point deadline{};

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      auto it = shard.table.find(key);
      // Another fetcher is reading this page right now: wait on the frame
      // state instead of issuing a duplicate read. Completion (and
      // failure, which erases the entry) notifies under the shard latch,
      // so the table MUST be re-probed after every wake.
      while (it != shard.table.end() &&
             frames_[it->second].state.load(std::memory_order_relaxed) ==
                 kIoInProgress) {
        shard.io_cv.wait(lock);
        it = shard.table.find(key);
      }
      if (it != shard.table.end()) {
        Frame& f = frames_[it->second];
        if (TryPinShared(&f)) {
          f.ref.store(true, std::memory_order_relaxed);
          hits_.Add(1);
          if (f.prefetched) {
            f.prefetched = false;
            prefetch_hits_.Add(1);
          }
          if (stall_start >= 0) {
            trace::Complete("bufferpool.pin_stall", "storage", stall_start,
                            "page", page_no);
          }
          return PageHandle(this, it->second, f.data.get());
        }
        // The frame is claimed for eviction; its table entry is about to
        // disappear. Let the evictor finish, then retry from scratch.
        lock.unlock();
        std::this_thread::yield();
        continue;
      }
    }

    // Miss: claim a victim frame with no latch held.
    const int victim = TryClaimVictim();
    if (victim < 0) {
      // All frames pinned or in flight. Wait in short slices and loop
      // back to the table probe: the page may be brought in by another
      // fetcher while we stall, in which case we must join that frame
      // rather than read a duplicate.
      if (stall_start < 0) {
        stall_start = trace::NowNanos();
        deadline = std::chrono::steady_clock::now() + stall_timeout_;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::Timeout(
            "buffer pool exhausted: all frames pinned (pool of " +
            std::to_string(num_frames_) + " frames)");
      }
      std::unique_lock<std::mutex> lock(stall_mu_);
      stall_waiters_.fetch_add(1, std::memory_order_relaxed);
      unpin_cv_.wait_for(lock, std::chrono::milliseconds(10));
      stall_waiters_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (stall_start >= 0) {
      trace::Complete("bufferpool.pin_stall", "storage", stall_start, "page",
                      page_no);
      stall_start = -1;
    }

    // We own the frame exclusively (pin_count == -1). Evict its old
    // contents (writing them back first if dirty), then publish the new
    // key as in-flight.
    Frame& f = frames_[victim];
    if (f.state.load(std::memory_order_relaxed) == kValid) {
      if (f.dirty.load(std::memory_order_acquire)) {
        const Status wb = WriteBackFrame(&f);
        if (!wb.ok()) {
          // The frame's bytes are the only copy of the mutation; keep it
          // resident and dirty, un-claim, and surface the error (a later
          // flush or WAL replay can redo the write).
          f.pin_count.store(0, std::memory_order_release);
          if (stall_waiters_.load(std::memory_order_relaxed) > 0) {
            unpin_cv_.notify_all();
          }
          return wb;
        }
      }
      Shard& old_shard = ShardFor(f.key);
      std::lock_guard<std::mutex> old_lock(old_shard.mu);
      trace::Instant("bufferpool.evict", "storage", "page", f.key.page_no);
      evictions_.Add(1);
      resident_pages_.Add(-1);
      old_shard.table.erase(f.key);
      f.state.store(kFree, std::memory_order_relaxed);
    }
    f.key = key;
    f.wb_device = file->device();
    f.wb_name = file->name();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.table.count(key) > 0) {
        // Another fetcher published this page while we claimed the
        // victim: return the frame and join them through the fast path.
        ReleaseFrame(&f);
        continue;
      }
      const bool inserted =
          shard.table.emplace(key, static_cast<uint32_t>(victim)).second;
      TGPP_CHECK(inserted);  // a silent no-op here would orphan the frame
      f.state.store(kIoInProgress, std::memory_order_relaxed);
      io_in_flight_.Add(1);
    }

    // The read happens with NO latch held — this is the whole point:
    // misses on distinct pages overlap with each other and with hit-path
    // fetches, instead of serializing behind one pool mutex.
    const Status read = file->ReadPage(page_no, f.data.get());

    std::lock_guard<std::mutex> lock(shard.mu);
    io_in_flight_.Add(-1);
    if (!read.ok()) {
      shard.table.erase(key);
      ReleaseFrame(&f);
      shard.io_cv.notify_all();  // waiters re-probe, miss, and retry
      // Job id rides in ambient thread-local state (the engine stamps its
      // worker threads), so the event joins to the job that hit the error.
      obs::EmitEvent(obs::EventType::kPoolReadFailed, 0,
                     trace::CurrentMachine(), -1, nullptr, "page", page_no);
      return read;
    }
    misses_.Add(1);
    resident_pages_.Add(1);
    f.prefetched = prefetch;
    f.ref.store(true, std::memory_order_relaxed);
    f.state.store(kValid, std::memory_order_relaxed);
    // The publishing store: waiters and later hitters pin via acquire CAS
    // on pin_count, which pairs with this release (and with the release
    // fetch_sub in Unpin) to make the page bytes visible.
    f.pin_count.store(1, std::memory_order_release);
    shard.io_cv.notify_all();
    return PageHandle(this, static_cast<uint32_t>(victim), f.data.get());
  }
}

BufferPool::StartRead BufferPool::TryStartRead(const PageFile* file,
                                               uint64_t page_no,
                                               bool prefetch) {
  const PageKey key{file->device(), file->file_id(), page_no};
  Shard& shard = ShardFor(key);
  StartRead out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      Frame& f = frames_[it->second];
      if (f.state.load(std::memory_order_relaxed) == kIoInProgress) {
        // Someone else is already reading this page; joining that read
        // requires blocking on the shard CV — the caller's business.
        return out;
      }
      if (TryPinShared(&f)) {
        f.ref.store(true, std::memory_order_relaxed);
        hits_.Add(1);
        if (f.prefetched) {
          f.prefetched = false;
          prefetch_hits_.Add(1);
        }
        out.kind = StartRead::kHit;
        out.handle = PageHandle(this, it->second, f.data.get());
        return out;
      }
      // Claimed for eviction; the entry is about to disappear. A
      // blocking retry loop sorts it out.
      return out;
    }
  }

  const int victim = TryClaimVictim();
  if (victim < 0) return out;  // pool full: the blocking path can stall

  // Exclusive owner of the frame (pin_count == -1) — same publish
  // sequence as FetchImpl's miss path.
  Frame& f = frames_[victim];
  if (f.state.load(std::memory_order_relaxed) == kValid) {
    if (f.dirty.load(std::memory_order_acquire) &&
        !WriteBackFrame(&f).ok()) {
      // Cannot persist the victim here; keep it resident and dirty and
      // fall back to the blocking path, which surfaces the error.
      f.pin_count.store(0, std::memory_order_release);
      if (stall_waiters_.load(std::memory_order_relaxed) > 0) {
        unpin_cv_.notify_all();
      }
      return out;
    }
    Shard& old_shard = ShardFor(f.key);
    std::lock_guard<std::mutex> old_lock(old_shard.mu);
    trace::Instant("bufferpool.evict", "storage", "page", f.key.page_no);
    evictions_.Add(1);
    resident_pages_.Add(-1);
    old_shard.table.erase(f.key);
    f.state.store(kFree, std::memory_order_relaxed);
  }
  f.key = key;
  f.wb_device = file->device();
  f.wb_name = file->name();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.table.count(key) > 0) {
      // Lost the publish race: another fetcher owns the read now.
      ReleaseFrame(&f);
      return out;
    }
    const bool inserted =
        shard.table.emplace(key, static_cast<uint32_t>(victim)).second;
    TGPP_CHECK(inserted);
    f.state.store(kIoInProgress, std::memory_order_relaxed);
    io_in_flight_.Add(1);
  }
  out.kind = StartRead::kClaimed;
  out.frame = static_cast<uint32_t>(victim);
  out.data = f.data.get();
  return out;
}

Result<PageHandle> BufferPool::FinishRead(uint32_t frame, bool prefetch,
                                          const Status& read_status) {
  Frame& f = frames_[frame];
  TGPP_DCHECK(f.state.load(std::memory_order_relaxed) == kIoInProgress);
  Shard& shard = ShardFor(f.key);
  const uint64_t page_no = f.key.page_no;
  std::lock_guard<std::mutex> lock(shard.mu);
  io_in_flight_.Add(-1);
  if (!read_status.ok()) {
    shard.table.erase(f.key);
    ReleaseFrame(&f);
    shard.io_cv.notify_all();  // waiters re-probe, miss, and retry
    obs::EmitEvent(obs::EventType::kPoolReadFailed, 0,
                   trace::CurrentMachine(), -1, nullptr, "page", page_no);
    return read_status;
  }
  misses_.Add(1);
  resident_pages_.Add(1);
  f.prefetched = prefetch;
  f.ref.store(true, std::memory_order_relaxed);
  f.state.store(kValid, std::memory_order_relaxed);
  // Pairs with the acquire CAS in TryPinShared: later pinners see the
  // externally written page bytes.
  f.pin_count.store(1, std::memory_order_release);
  shard.io_cv.notify_all();
  return PageHandle(this, frame, f.data.get());
}

void BufferPool::Unpin(uint32_t frame) {
  Frame& f = frames_[frame];
  const int32_t prev = f.pin_count.fetch_sub(1, std::memory_order_release);
  TGPP_DCHECK(prev > 0);
  if (prev == 1 && stall_waiters_.load(std::memory_order_relaxed) > 0) {
    unpin_cv_.notify_all();
  }
}

std::vector<uint64_t> BufferPool::ResidentSubset(
    const PageFile* file, std::span<const uint64_t> pages) {
  std::vector<uint64_t> resident;
  for (uint64_t p : pages) {
    const PageKey key{file->device(), file->file_id(), p};
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.table.count(key) > 0) resident.push_back(p);
  }
  return resident;
}

void BufferPool::DropAll() {
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    int32_t expected = 0;
    if (!f.pin_count.compare_exchange_strong(expected, -1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      continue;  // pinned or in flight: not droppable
    }
    if (f.state.load(std::memory_order_relaxed) == kValid) {
      Shard& shard = ShardFor(f.key);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.table.erase(f.key);
      resident_pages_.Add(-1);
    }
    // Un-flushed mutations are deliberately DISCARDED, not written back:
    // DropAll models losing volatile state (kill/recovery, cache drops
    // between bench runs). Durability comes from the WAL, not the pool.
    f.dirty.store(false, std::memory_order_relaxed);
    f.ref.store(false, std::memory_order_relaxed);
    ReleaseFrame(&f);
  }
}

Status BufferPool::Overwrite(const PageFile* file, uint64_t page_no,
                             const uint8_t* page) {
  // Route through Fetch so residency, single-read, and eviction races are
  // handled by the existing machinery; the shared pin plus the mutation
  // path's external serialization (update jobs run exclusively) make the
  // copy race-free.
  auto handle = Fetch(file, page_no);
  if (!handle.ok()) return handle.status();
  Frame& f = frames_[handle->frame_];
  std::memcpy(f.data.get(), page, kPageSize);
  f.dirty.store(true, std::memory_order_release);
  return Status::OK();
}

Result<uint64_t> BufferPool::FlushDirty(PageFile* file) {
  uint64_t flushed = 0;
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (!f.dirty.load(std::memory_order_acquire)) continue;
    // Pin the frame so it cannot be evicted or re-claimed mid-write.
    if (!TryPinShared(&f)) continue;  // exclusively owned: evictor flushes
    if (f.state.load(std::memory_order_relaxed) == kValid &&
        f.dirty.load(std::memory_order_relaxed) &&
        f.key.device == file->device() && f.key.file_id == file->file_id()) {
      const Status wb = file->WritePage(f.key.page_no, f.data.get());
      if (!wb.ok()) {
        Unpin(static_cast<uint32_t>(i));
        return wb;
      }
      f.dirty.store(false, std::memory_order_release);
      dirty_writebacks_.Add(1);
      ++flushed;
    }
    Unpin(static_cast<uint32_t>(i));
  }
  return flushed;
}

Status BufferPool::WriteBackFrame(Frame* f) {
  TGPP_DCHECK(f->wb_device != nullptr);
  const Status wb =
      f->wb_device->Write(f->wb_name, f->key.page_no * kPageSize,
                          f->data.get(), kPageSize);
  if (wb.ok()) {
    f->dirty.store(false, std::memory_order_release);
    dirty_writebacks_.Add(1);
  }
  return wb;
}

void BufferPool::ResetCounters() {
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
  prefetch_hits_.Reset();
  dirty_writebacks_.Reset();
  // resident_pages_ and io_in_flight_ are levels, not counts: they still
  // reflect the frames actually cached / reads actually in flight, so
  // resets leave them alone (DropAll and completions adjust them).
}

void BufferPool::RegisterMetrics(obs::Registry* registry, int machine,
                                 std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, "bufferpool.hits", machine, &hits_);
  obs::TryRegister(registry, out, "bufferpool.misses", machine, &misses_);
  obs::TryRegister(registry, out, "bufferpool.evictions", machine,
                   &evictions_);
  obs::TryRegister(registry, out, "bufferpool.prefetch_hits", machine,
                   &prefetch_hits_);
  obs::TryRegister(registry, out, "bufferpool.dirty_writebacks", machine,
                   &dirty_writebacks_);
  obs::TryRegister(registry, out, "bufferpool.resident_pages", machine,
                   &resident_pages_);
  obs::TryRegister(registry, out, "bufferpool.io_in_flight", machine,
                   &io_in_flight_);
}

}  // namespace tgpp
