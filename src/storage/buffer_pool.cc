#include "storage/buffer_pool.h"

#include <chrono>

#include "common/logging.h"
#include "util/trace.h"

namespace tgpp {

void PageHandle::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(size_t num_frames) {
  TGPP_CHECK(num_frames > 0);
  frames_.resize(num_frames);
  for (auto& f : frames_) {
    f.data = std::make_unique<uint8_t[]>(kPageSize);
  }
}

int BufferPool::FindVictimLocked() {
  // Two full sweeps: the first clears ref bits, the second must find a
  // frame unless everything is pinned.
  for (size_t step = 0; step < frames_.size() * 2; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.pin_count > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    return static_cast<int>(idx);
  }
  return -1;
}

Result<PageHandle> BufferPool::Fetch(const PageFile* file, uint64_t page_no) {
  std::unique_lock<std::mutex> lock(mu_);
  const PageKey key{file->device(), file->file_id(), page_no};
  auto it = table_.find(key);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.ref = true;
    hits_.Add(1);
    return PageHandle(this, it->second, f.data.get());
  }

  // Miss: claim a victim frame (waiting for an unpin if necessary).
  int victim = FindVictimLocked();
  if (victim < 0) {
    // All frames pinned: this stall is exactly the window-budget pressure
    // the memory model is meant to avoid, so make it visible in traces.
    const int64_t stall_start = trace::NowNanos();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (victim < 0) {
      if (unpin_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return Status::Timeout(
            "buffer pool exhausted: all frames pinned (pool of " +
            std::to_string(frames_.size()) + " frames)");
      }
      victim = FindVictimLocked();
    }
    trace::Complete("bufferpool.pin_stall", "storage", stall_start, "page",
                    page_no);
  }
  Frame& f = frames_[victim];
  if (f.valid) {
    trace::Instant("bufferpool.evict", "storage", "page", f.key.page_no);
    evictions_.Add(1);
    resident_pages_.Add(-1);
    table_.erase(f.key);
    f.valid = false;
  }
  // Read under the pool latch: this serializes the device like a single
  // I/O queue, which is the behaviour we model on this host.
  TGPP_RETURN_IF_ERROR(file->ReadPage(page_no, f.data.get()));
  misses_.Add(1);
  resident_pages_.Add(1);
  f.key = key;
  f.pin_count = 1;
  f.ref = true;
  f.valid = true;
  table_.emplace(key, static_cast<uint32_t>(victim));
  return PageHandle(this, static_cast<uint32_t>(victim), f.data.get());
}

void BufferPool::Unpin(uint32_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  TGPP_DCHECK(f.pin_count > 0);
  if (--f.pin_count == 0) unpin_cv_.notify_all();
}

std::vector<uint64_t> BufferPool::ResidentSubset(
    const PageFile* file, std::span<const uint64_t> pages) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> resident;
  for (uint64_t p : pages) {
    if (table_.count(PageKey{file->device(), file->file_id(), p}) > 0) {
      resident.push_back(p);
    }
  }
  return resident;
}

void BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.pin_count == 0) {
      table_.erase(f.key);
      f.valid = false;
      f.ref = false;
      resident_pages_.Add(-1);
    }
  }
}

void BufferPool::ResetCounters() {
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
  // resident_pages_ is a level, not a count: it still reflects the frames
  // actually cached, so resets leave it alone (DropAll adjusts it).
}

void BufferPool::RegisterMetrics(obs::Registry* registry, int machine,
                                 std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, "bufferpool.hits", machine, &hits_);
  obs::TryRegister(registry, out, "bufferpool.misses", machine, &misses_);
  obs::TryRegister(registry, out, "bufferpool.evictions", machine,
                   &evictions_);
  obs::TryRegister(registry, out, "bufferpool.resident_pages", machine,
                   &resident_pages_);
}

}  // namespace tgpp
