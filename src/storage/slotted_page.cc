#include "storage/slotted_page.h"

namespace tgpp {

SlottedPageBuilder::SlottedPageBuilder(uint8_t* buffer) : buffer_(buffer) {
  Reset();
}

void SlottedPageBuilder::Reset() {
  std::memset(buffer_, 0, kPageSize);
  header()->num_slots = 0;
  header()->free_offset = sizeof(PageHeader);
}

size_t SlottedPageBuilder::RemainingCapacity() const {
  const size_t slots_bytes =
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot);
  const size_t used = header()->free_offset + slots_bytes;
  if (used >= kPageSize) return 0;
  return (kPageSize - used) / sizeof(uint64_t);
}

bool SlottedPageBuilder::AddRecord(uint64_t src,
                                   std::span<const uint64_t> dsts) {
  const size_t record_bytes = dsts.size() * sizeof(uint64_t);
  const size_t slots_bytes =
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot);
  if (header()->free_offset + record_bytes + slots_bytes > kPageSize) {
    return false;
  }
  const uint32_t offset = header()->free_offset;
  if (record_bytes > 0) {  // empty span may have a null data()
    std::memcpy(buffer_ + offset, dsts.data(), record_bytes);
  }
  PageSlot* slot = reinterpret_cast<PageSlot*>(
      buffer_ + kPageSize -
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot));
  slot->src = src;
  slot->offset = offset;
  slot->count = static_cast<uint32_t>(dsts.size());
  header()->free_offset = offset + static_cast<uint32_t>(record_bytes);
  ++header()->num_slots;
  return true;
}

uint32_t SlottedPageBuilder::num_slots() const { return header()->num_slots; }

Status SlottedPageReader::Validate() const {
  const PageHeader* h = reinterpret_cast<const PageHeader*>(buffer_);
  if (h->free_offset > kPageSize ||
      static_cast<size_t>(h->num_slots) * sizeof(PageSlot) >
          kPageSize - sizeof(PageHeader)) {
    return Status::Corruption("slotted page header out of bounds");
  }
  for (uint32_t i = 0; i < h->num_slots; ++i) {
    const PageSlot* slot = SlotAt(i);
    const uint64_t end = static_cast<uint64_t>(slot->offset) +
                         static_cast<uint64_t>(slot->count) * sizeof(uint64_t);
    if (slot->offset < sizeof(PageHeader) || end > h->free_offset) {
      return Status::Corruption("slot " + std::to_string(i) +
                                " record out of bounds");
    }
  }
  return Status::OK();
}

}  // namespace tgpp
