#include "storage/slotted_page.h"

namespace tgpp {

SlottedPageBuilder::SlottedPageBuilder(uint8_t* buffer) : buffer_(buffer) {
  Reset();
}

void SlottedPageBuilder::Reset() {
  std::memset(buffer_, 0, kPageSize);
  header()->num_slots = 0;
  header()->free_offset = sizeof(PageHeader);
}

size_t SlottedPageBuilder::RemainingCapacity() const {
  const size_t slots_bytes =
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot);
  const size_t used = header()->free_offset + slots_bytes;
  if (used >= kPageSize) return 0;
  return (kPageSize - used) / sizeof(uint64_t);
}

bool SlottedPageBuilder::AddRecord(uint64_t src,
                                   std::span<const uint64_t> dsts) {
  const size_t record_bytes = dsts.size() * sizeof(uint64_t);
  const size_t slots_bytes =
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot);
  if (header()->free_offset + record_bytes + slots_bytes > kPageSize) {
    return false;
  }
  const uint32_t offset = header()->free_offset;
  if (record_bytes > 0) {  // empty span may have a null data()
    std::memcpy(buffer_ + offset, dsts.data(), record_bytes);
  }
  PageSlot* slot = reinterpret_cast<PageSlot*>(
      buffer_ + kPageSize -
      (static_cast<size_t>(header()->num_slots) + 1) * sizeof(PageSlot));
  slot->src = src;
  slot->offset = offset;
  slot->count = static_cast<uint32_t>(dsts.size());
  header()->free_offset = offset + static_cast<uint32_t>(record_bytes);
  ++header()->num_slots;
  return true;
}

uint32_t SlottedPageBuilder::num_slots() const { return header()->num_slots; }

Status SlottedPageReader::Validate() const {
  const PageHeader* h = reinterpret_cast<const PageHeader*>(buffer_);
  if (h->free_offset < sizeof(PageHeader) || h->free_offset > kPageSize ||
      static_cast<size_t>(h->num_slots) * sizeof(PageSlot) >
          kPageSize - sizeof(PageHeader)) {
    return Status::Corruption("slotted page header out of bounds");
  }
  // The record area and the slot directory must not overlap; a header
  // claiming otherwise would make SlotAt read record bytes as slots.
  if (static_cast<uint64_t>(h->free_offset) +
          static_cast<uint64_t>(h->num_slots) * sizeof(PageSlot) >
      kPageSize) {
    return Status::Corruption("slotted page records overlap slot directory");
  }
  for (uint32_t i = 0; i < h->num_slots; ++i) {
    const PageSlot* slot = SlotAt(i);
    const uint64_t end = static_cast<uint64_t>(slot->offset) +
                         static_cast<uint64_t>(slot->count) * sizeof(uint64_t);
    if (slot->offset < sizeof(PageHeader) || end > h->free_offset) {
      return Status::Corruption("slot " + std::to_string(i) +
                                " record out of bounds");
    }
  }
  return Status::OK();
}

size_t SlottedPageMutator::FreeBytes() const {
  const size_t slots_bytes =
      static_cast<size_t>(header()->num_slots) * sizeof(PageSlot);
  const size_t used = header()->free_offset + slots_bytes;
  return used >= kPageSize ? 0 : kPageSize - used;
}

bool SlottedPageMutator::Contains(uint64_t src, uint64_t dst) const {
  for (uint32_t i = 0; i < header()->num_slots; ++i) {
    const PageSlot* slot = SlotAt(i);
    if (slot->src != src) continue;
    const uint64_t* dsts =
        reinterpret_cast<const uint64_t*>(buffer_ + slot->offset);
    for (uint32_t j = 0; j < slot->count; ++j) {
      if (dsts[j] == dst) return true;
    }
  }
  return false;
}

bool SlottedPageMutator::TryExtendRecord(uint32_t i, uint64_t dst) {
  PageSlot* slot = SlotAt(i);
  const uint32_t end =
      slot->offset + slot->count * static_cast<uint32_t>(sizeof(uint64_t));
  if (end != header()->free_offset) return false;  // not the tail record
  if (FreeBytes() < sizeof(uint64_t)) return false;
  std::memcpy(buffer_ + end, &dst, sizeof(uint64_t));
  ++slot->count;
  header()->free_offset = end + sizeof(uint64_t);
  return true;
}

bool SlottedPageMutator::TryAppendRecord(uint64_t src, uint64_t dst) {
  if (FreeBytes() < sizeof(uint64_t) + sizeof(PageSlot)) return false;
  const uint32_t offset = header()->free_offset;
  std::memcpy(buffer_ + offset, &dst, sizeof(uint64_t));
  PageSlot* slot = SlotAt(header()->num_slots);
  slot->src = src;
  slot->offset = offset;
  slot->count = 1;
  header()->free_offset = offset + sizeof(uint64_t);
  ++header()->num_slots;
  return true;
}

bool SlottedPageMutator::RemoveDst(uint64_t src, uint64_t dst) {
  for (uint32_t i = 0; i < header()->num_slots; ++i) {
    PageSlot* slot = SlotAt(i);
    if (slot->src != src) continue;
    uint64_t* dsts = reinterpret_cast<uint64_t*>(buffer_ + slot->offset);
    for (uint32_t j = 0; j < slot->count; ++j) {
      if (dsts[j] != dst) continue;
      std::memmove(dsts + j, dsts + j + 1,
                   (slot->count - j - 1) * sizeof(uint64_t));
      --slot->count;
      const uint32_t end =
          slot->offset + (slot->count + 1) * sizeof(uint64_t);
      if (end == header()->free_offset) {
        header()->free_offset -= sizeof(uint64_t);  // reclaim tail bytes
      }
      return true;
    }
  }
  return false;
}

}  // namespace tgpp
