#include "storage/io_backend.h"

#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "util/thread_pool.h"

namespace tgpp {

FdHolder::~FdHolder() {
  if (fd_ >= 0) ::close(fd_);
}

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kAuto:
      return "auto";
    case IoBackendKind::kThreads:
      return "threads";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "?";
}

Result<IoBackendKind> ParseIoBackendKind(const std::string& name) {
  if (name == "auto") return IoBackendKind::kAuto;
  if (name == "threads") return IoBackendKind::kThreads;
  if (name == "uring") return IoBackendKind::kUring;
  return Status::InvalidArgument("unknown io backend \"" + name +
                                 "\" (want auto|threads|uring)");
}

IoBackendKind IoBackendKindFromEnv() {
  const char* env = std::getenv("TGPP_IO_BACKEND");
  if (env == nullptr || env[0] == '\0') return IoBackendKind::kAuto;
  Result<IoBackendKind> kind = ParseIoBackendKind(env);
  TGPP_CHECK(kind.ok()) << "TGPP_IO_BACKEND rejected: "
                        << kind.status().ToString();
  return *kind;
}

namespace io_internal {

// Shared by both backends (and the uring backend's partial-completion
// path): synchronously reads the request's segments with preadv, looping
// over short counts. Returns IOError on EOF inside the request.
Status PreadvFull(const IoRead& read, size_t skip) {
  std::vector<struct iovec> iov;
  iov.reserve(read.segs.size());
  uint64_t offset = read.offset + skip;
  size_t skipped = skip;
  for (const IoSeg& seg : read.segs) {
    if (skipped >= seg.len) {
      skipped -= seg.len;
      continue;
    }
    iov.push_back({static_cast<char*>(seg.data) + skipped,
                   seg.len - skipped});
    skipped = 0;
  }
  while (!iov.empty()) {
    const ssize_t r = ::preadv(read.file->fd(), iov.data(),
                               static_cast<int>(iov.size()),
                               static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("preadv: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError("short read at offset " +
                             std::to_string(offset));
    }
    offset += static_cast<uint64_t>(r);
    size_t advanced = static_cast<size_t>(r);
    while (advanced > 0 && !iov.empty()) {
      if (advanced >= iov.front().iov_len) {
        advanced -= iov.front().iov_len;
        iov.erase(iov.begin());
      } else {
        iov.front().iov_base =
            static_cast<char*>(iov.front().iov_base) + advanced;
        iov.front().iov_len -= advanced;
        advanced = 0;
      }
    }
  }
  return Status::OK();
}

}  // namespace io_internal

namespace {

// Owns its workers: completion callbacks publish buffer-pool frames that
// blocking fallback fetches (parked on the AsyncIoService pool) wait on.
// Running reads on that same FIFO pool deadlocks once every worker is a
// parked fetch queued ahead of the very reads that would wake it.
class ThreadPoolIoBackend : public IoBackend {
 public:
  ThreadPoolIoBackend(int num_threads, int trace_machine)
      : pool_(num_threads,
              trace_machine >= 0
                  ? "m" + std::to_string(trace_machine) + ".iodev"
                  : "iodev",
              trace_machine) {}

  const char* name() const override { return "threads"; }

  void Submit(std::vector<IoRead> reads) override {
    for (IoRead& read : reads) {
      auto shared = std::make_shared<IoRead>(std::move(read));
      pool_.Submit([shared] {
        shared->done(io_internal::PreadvFull(*shared, 0));
      });
    }
  }

 private:
  ThreadPool pool_;
};

}  // namespace

std::unique_ptr<IoBackend> MakeThreadPoolIoBackend(int num_threads,
                                                   int trace_machine) {
  TGPP_CHECK(num_threads > 0);
  return std::make_unique<ThreadPoolIoBackend>(num_threads, trace_machine);
}

std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind,
                                         ThreadPool* fallback_pool,
                                         unsigned queue_depth) {
  if (kind == IoBackendKind::kAuto) kind = IoBackendKindFromEnv();
  if (kind == IoBackendKind::kUring || kind == IoBackendKind::kAuto) {
    std::unique_ptr<IoBackend> uring = MakeUringIoBackend(queue_depth);
    if (uring != nullptr) return uring;
    if (kind == IoBackendKind::kUring) {
      TGPP_LOG(Warning) << "io_uring backend unavailable "
                        << "(kernel/headers missing); "
                        << "falling back to the thread-pool backend";
    }
  }
  TGPP_CHECK(fallback_pool != nullptr);
  return MakeThreadPoolIoBackend(fallback_pool->num_threads(),
                                 fallback_pool->trace_machine());
}

}  // namespace tgpp
