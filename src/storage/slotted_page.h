// Slotted pages storing adjacency-list records (paper Appendix A.3).
//
// Each 64 KB page holds forward-growing *records* and backward-growing
// *slots*. A record is the (possibly partial) adjacency list of one source
// vertex: a contiguous array of destination vertex IDs. A slot is the pair
// (source vertex ID, record offset/length). Long adjacency lists span
// multiple records — the partial list mode consumes them as-is; the full
// list mode merges them by source ID (see AdjacencyService).
//
// Page layout:
//   [PageHeader][record 0][record 1]...      ...[slot 1][slot 0]
//                 ^ free space grows toward the middle ^

#ifndef TGPP_STORAGE_SLOTTED_PAGE_H_
#define TGPP_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "common/status.h"

namespace tgpp {

inline constexpr size_t kPageSize = 64 * 1024;  // paper default: 64 KB

struct PageHeader {
  uint32_t num_slots;
  uint32_t free_offset;  // byte offset of the first free record byte
};

struct PageSlot {
  uint64_t src;       // source vertex ID of this record
  uint32_t offset;    // byte offset of the record within the page
  uint32_t count;     // number of uint64 destination IDs in the record
};

static_assert(sizeof(PageHeader) == 8);
static_assert(sizeof(PageSlot) == 16);

// Builds a slotted page in a caller-provided kPageSize buffer.
class SlottedPageBuilder {
 public:
  explicit SlottedPageBuilder(uint8_t* buffer);

  // Resets the buffer to an empty page.
  void Reset();

  // Number of destination IDs that still fit in a fresh record.
  size_t RemainingCapacity() const;

  // Appends a record (src, dsts). Returns false if it does not fit —
  // the caller should flush and retry, possibly with a split record.
  bool AddRecord(uint64_t src, std::span<const uint64_t> dsts);

  uint32_t num_slots() const;
  bool empty() const { return num_slots() == 0; }

 private:
  uint8_t* buffer_;
  PageHeader* header() { return reinterpret_cast<PageHeader*>(buffer_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(buffer_);
  }
};

// Read-only view over a slotted page buffer.
class SlottedPageReader {
 public:
  explicit SlottedPageReader(const uint8_t* buffer) : buffer_(buffer) {}

  uint32_t num_slots() const {
    return reinterpret_cast<const PageHeader*>(buffer_)->num_slots;
  }

  // Slot i's source vertex.
  uint64_t SrcAt(uint32_t i) const { return SlotAt(i)->src; }

  // Slot i's destination IDs.
  std::span<const uint64_t> DstsAt(uint32_t i) const {
    const PageSlot* slot = SlotAt(i);
    return {reinterpret_cast<const uint64_t*>(buffer_ + slot->offset),
            slot->count};
  }

  // Sanity-checks offsets and counts against page bounds: the header must
  // describe a page whose record area and slot directory stay disjoint and
  // inside kPageSize, and every slot's record must lie inside the record
  // area. Read paths call this before trusting on-disk bytes and surface
  // the Status::Corruption instead of indexing with them.
  Status Validate() const;

 private:
  const PageSlot* SlotAt(uint32_t i) const {
    // Slot 0 occupies the last sizeof(PageSlot) bytes of the page.
    return reinterpret_cast<const PageSlot*>(
        buffer_ + kPageSize - (static_cast<size_t>(i) + 1) * sizeof(PageSlot));
  }
  const uint8_t* buffer_;
};

// In-place mutation of an existing slotted page (dynamic-graph path,
// docs/DYNAMIC.md). All operations keep the page layout invariants that
// SlottedPageReader::Validate checks; deletes compact the record in place
// (no sentinel values), so every existing reader keeps working unchanged.
// Freed bytes in the middle of the record area stay dead ("tombstoned"
// space); bytes at the tail are reclaimed.
class SlottedPageMutator {
 public:
  explicit SlottedPageMutator(uint8_t* buffer) : buffer_(buffer) {}

  uint32_t num_slots() const { return header()->num_slots; }

  // Bytes between the end of the record area and the slot directory.
  size_t FreeBytes() const;

  // True if some slot with source `src` contains `dst`.
  bool Contains(uint64_t src, uint64_t dst) const;

  // Appends `dst` to slot i's record. Only possible when that record is
  // the last one in the record area (it abuts free space) and one more
  // destination fits; returns false otherwise.
  bool TryExtendRecord(uint32_t i, uint64_t dst);

  // Appends a new single-destination record (src, [dst]). Returns false
  // if record + slot do not fit in the free space.
  bool TryAppendRecord(uint64_t src, uint64_t dst);

  // Removes one occurrence of `dst` from any record with source `src`,
  // compacting the record in place (count decreases by one; a tail record
  // also gives its freed bytes back to the page). Returns false if no
  // record with (src, dst) exists — deletes of absent edges are no-ops.
  bool RemoveDst(uint64_t src, uint64_t dst);

 private:
  PageHeader* header() { return reinterpret_cast<PageHeader*>(buffer_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(buffer_);
  }
  PageSlot* SlotAt(uint32_t i) {
    return reinterpret_cast<PageSlot*>(
        buffer_ + kPageSize - (static_cast<size_t>(i) + 1) * sizeof(PageSlot));
  }
  const PageSlot* SlotAt(uint32_t i) const {
    return reinterpret_cast<const PageSlot*>(
        buffer_ + kPageSize - (static_cast<size_t>(i) + 1) * sizeof(PageSlot));
  }
  uint8_t* buffer_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_SLOTTED_PAGE_H_
