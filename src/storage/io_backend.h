// IoBackend: the pluggable submission/completion engine under the async
// I/O path (ROADMAP item 4, FlashGraph-style).
//
// A backend executes *raw vectored reads* — (fd, offset) filling a list of
// caller-owned buffers — and invokes a completion callback exactly once
// per request, on a backend thread. Everything device-shaped (byte
// accounting, nominal bandwidth, fault injection, retry, striping,
// request merging) stays in DiskDevice, which builds IoRead requests and
// interprets their completions; everything pool-shaped (frames, pinning,
// the single-read guarantee) stays in BufferPool. The backends only move
// bytes, so swapping one for the other cannot change results — the
// backend-parity tests pin that down bit-for-bit.
//
// Two implementations:
//  - ThreadPoolIoBackend: preadv on a worker thread per request. The
//    portable fallback; one thread per in-flight request, exactly the
//    "async as a thread-pool simulation" the io_uring backend replaces.
//    It owns its worker threads: requests must never share a pool with
//    tasks that can block on their completions (AsyncIoService parks
//    blocking fallback fetches on its own pool, and those waits are only
//    satisfied once a backend read publishes the frame — sharing one FIFO
//    pool deadlocks when every worker is parked ahead of the reads).
//  - UringIoBackend: a raw-syscall io_uring (no liburing dependency)
//    with submit/complete rings, lazily registered fds, and a
//    configurable queue depth. Built when <linux/io_uring.h> is present
//    (TGPP_HAVE_IO_URING); MakeUringIoBackend returns null otherwise or
//    when the running kernel/seccomp profile refuses the setup syscall.

#ifndef TGPP_STORAGE_IO_BACKEND_H_
#define TGPP_STORAGE_IO_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tgpp {

class ThreadPool;

// Owns one open file descriptor; closes it when the last reference drops.
// The device fd table and every in-flight operation hold FdRefs, so
// DiskDevice::Remove() of a file mid-read revokes the *name* immediately
// while the pread keeps a valid fd until it completes (no EBADF burned as
// a spurious retry — see the fd-lifetime tests in tests/storage_test.cc).
class FdHolder {
 public:
  explicit FdHolder(int fd) : fd_(fd) {}
  ~FdHolder();

  FdHolder(const FdHolder&) = delete;
  FdHolder& operator=(const FdHolder&) = delete;

  int fd() const { return fd_; }

 private:
  int fd_;
};
using FdRef = std::shared_ptr<const FdHolder>;

// One destination buffer segment of a vectored read.
struct IoSeg {
  void* data;
  size_t len;
};

// One vectored read request: fill `segs` (in order) from `file` starting
// at `offset`. `done` is invoked exactly once, from a backend thread,
// with OK only if every byte was read (a short read — EOF inside the
// request — is an IOError, matching DiskDevice::Read semantics). The
// request owns an FdRef so the fd outlives the operation.
struct IoRead {
  FdRef file;
  uint64_t offset = 0;
  std::vector<IoSeg> segs;
  std::function<void(Status)> done;

  size_t total_len() const {
    size_t n = 0;
    for (const IoSeg& s : segs) n += s.len;
    return n;
  }
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  // "threads" or "uring" — selectable via --io-backend / TGPP_IO_BACKEND.
  virtual const char* name() const = 0;

  // Enqueues requests; never blocks on the device (the uring backend may
  // briefly block when the submission queue itself is full).
  virtual void Submit(std::vector<IoRead> reads) = 0;

  // Backend-specific instruments (the uring backend registers
  // `disk.uring_submits`); default none.
  virtual void RegisterMetrics(obs::Registry* registry, int machine,
                               std::vector<obs::Registration>* out) {}
};

enum class IoBackendKind { kAuto, kThreads, kUring };

const char* IoBackendKindName(IoBackendKind kind);

// Parses "auto" | "threads" | "uring" (the --io-backend grammar).
Result<IoBackendKind> ParseIoBackendKind(const std::string& name);

// TGPP_IO_BACKEND environment override; kAuto when unset. An unparsable
// value is a hard error (CHECK), like a misspelled fault spec — silently
// running the wrong backend would invalidate a measurement.
IoBackendKind IoBackendKindFromEnv();

// True if the io_uring backend is compiled in AND the running kernel
// accepts io_uring_setup (containers often filter it via seccomp).
bool UringAvailable();

// The fallback backend: one preadv per request on a dedicated pool of
// `num_threads` owned workers (trace-tagged with `trace_machine`, -1 for
// untagged — see util/trace.h).
std::unique_ptr<IoBackend> MakeThreadPoolIoBackend(int num_threads,
                                                   int trace_machine = -1);

// Null if io_uring is compiled out or unavailable at runtime.
// `queue_depth` bounds in-flight requests (rounded up to a power of two).
std::unique_ptr<IoBackend> MakeUringIoBackend(unsigned queue_depth);

// Resolves `kind` (kAuto → env → uring if available, else threads) into a
// live backend. Never returns null: requests for an unavailable uring
// fall back to the thread-pool backend, sized and trace-tagged to match
// `fallback_pool` (which it does NOT run on — see ThreadPoolIoBackend
// above for why the backend owns separate workers).
std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind,
                                         ThreadPool* fallback_pool,
                                         unsigned queue_depth);

}  // namespace tgpp

#endif  // TGPP_STORAGE_IO_BACKEND_H_
