#include "storage/disk_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace tgpp {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

// Tracks one in-flight operation: bumps the queue-depth gauge for the
// duration and records wall latency (retries and injected delays
// included) into the histogram on completion.
class ScopedDiskOp {
 public:
  ScopedDiskOp(obs::Gauge* depth, obs::LatencyHistogram* latency)
      : depth_(depth), timer_(latency) {
    depth_->Add(1);
  }
  ~ScopedDiskOp() { depth_->Add(-1); }

 private:
  obs::Gauge* depth_;
  obs::ScopedLatencyTimer timer_;
};

// Reads exactly [offset, offset+n) from fd, looping over short counts.
// EOF inside the range is a permanent error; syscall errors are
// transient.
Status PreadFull(int fd, const std::string& name, uint64_t offset,
                 char* data, size_t n, bool* transient) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, data + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      *transient = true;  // device-level errors may clear on retry
      return Status::IOError(Errno("pread", name));
    }
    if (r == 0) {
      // EOF: the bytes genuinely are not there; retrying cannot help.
      return Status::IOError("short read from " + name + " at offset " +
                             std::to_string(offset + done));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PwriteFull(int fd, const std::string& name, uint64_t offset,
                  const char* data, size_t n, bool* transient) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, data + done, n - done,
                               static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      *transient = true;
      return Status::IOError(Errno("pwrite", name));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// A merged async read may carry at most this many pages; beyond it, a
// new request is started (bounds per-request latency and iovec length).
constexpr size_t kMaxMergedPages = 16;

}  // namespace

// One merged in-flight async read: the pages it serves, the submit-time
// fault roll, and the accounting closed out in FinishAsyncReadGroup.
struct AsyncReadGroup {
  std::string file;                  // logical name, for the fallback path
  std::vector<AsyncPageRead> pages;  // in physical order
  size_t total_bytes = 0;
  int stripe_index = 0;
  Status injected = Status::OK();    // submit-time disk.read fault roll
  bool injected_transient = false;
  std::chrono::steady_clock::time_point start;
  // Injected delays on the async path model *device* latency: instead of
  // sleeping at submit (which would serialize every in-flight request on
  // the submitting thread), the delay becomes an absolute completion
  // deadline. Concurrent merged requests overlap their injected
  // latencies — the queue-depth scaling the io_uring backend exists to
  // exploit — while serial submissions still pay them back to back.
  std::chrono::steady_clock::time_point not_before;
};

Status DiskDevice::CheckFault(const char* site, bool* transient,
                              int64_t* delay_ms_out) {
  auto injected = fault::Hit(site, fault_machine_);
  if (!injected.has_value()) return Status::OK();
  injected_faults_.Add(1);
  switch (injected->action) {
    case fault::Action::kDelay:
      if (delay_ms_out != nullptr) {
        *delay_ms_out += injected->param_ms;  // deferred to completion
      } else {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(injected->param_ms));
      }
      return Status::OK();
    case fault::Action::kTimeout:
      *transient = false;  // timeouts model a hung device; retry won't help
      return Status::Timeout(std::string("injected timeout at ") + site);
    default:
      *transient = true;
      return Status::IOError(std::string("injected fault at ") + site);
  }
}

template <typename Attempt>
Status DiskDevice::RunWithRetry(Attempt&& attempt) {
  int64_t backoff_us = retry_policy_.initial_backoff_micros;
  Status last = Status::OK();
  const int attempts = std::max(1, retry_policy_.max_attempts);
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      io_retries_.Add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = static_cast<int64_t>(
          static_cast<double>(backoff_us) * retry_policy_.backoff_multiplier);
    }
    bool transient = false;
    last = attempt(&transient);
    if (last.ok() || !transient) return last;
  }
  return last;
}

DiskDevice::DiskDevice(std::string dir, DiskProfile profile)
    : dir_(std::move(dir)),
      profile_(profile),
      stripe_(std::max(1, profile.stripe)),
      stripe_queue_depth_(static_cast<size_t>(std::max(1, profile.stripe))) {
  TGPP_CHECK(profile_.stripe_unit_bytes > 0);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  TGPP_CHECK(!ec) << "cannot create storage dir " << dir_ << ": "
                  << ec.message();
}

DiskDevice::~DiskDevice() = default;

std::string DiskDevice::PartName(const std::string& file, int d) const {
  if (stripe_ == 1) return file;
  return file + ".s" + std::to_string(d);
}

std::vector<DiskDevice::Extent> DiskDevice::SplitExtents(
    const std::string& file, uint64_t offset, const void* data,
    size_t n) const {
  std::vector<Extent> extents;
  char* p = static_cast<char*>(const_cast<void*>(data));
  if (stripe_ == 1) {
    extents.push_back({file, 0, offset, p, n});
    return extents;
  }
  const uint64_t unit = profile_.stripe_unit_bytes;
  uint64_t logical = offset;
  size_t remaining = n;
  while (remaining > 0) {
    const uint64_t u = logical / unit;        // logical stripe unit
    const uint64_t in_unit = logical % unit;
    const int d = static_cast<int>(u % static_cast<uint64_t>(stripe_));
    const uint64_t phys =
        (u / static_cast<uint64_t>(stripe_)) * unit + in_unit;
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(unit - in_unit, remaining));
    extents.push_back({PartName(file, d), d, phys, p, take});
    logical += take;
    p += take;
    remaining -= take;
  }
  return extents;
}

Result<FdRef> DiskDevice::GetFdRef(const std::string& part, bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(part);
  if (it != fds_.end()) return it->second;
  const std::string path = dir_ + "/" + part;
  const int flags = create ? (O_CREAT | O_RDWR) : O_RDWR;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IOError(Errno("open", path));
  FdRef ref = std::make_shared<const FdHolder>(fd);
  fds_.emplace(part, ref);
  return ref;
}

uint32_t DiskDevice::StableFileId(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = file_ids_.find(file);
  if (it != file_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(file_ids_.size());
  file_ids_.emplace(file, id);
  return id;
}

Status DiskDevice::Read(const std::string& file, uint64_t offset, void* data,
                        size_t n) {
  const std::vector<Extent> extents = SplitExtents(file, offset, data, n);
  std::vector<FdRef> fds;
  fds.reserve(extents.size());
  for (const Extent& e : extents) {
    TGPP_ASSIGN_OR_RETURN(FdRef fd, GetFdRef(e.part, /*create=*/false));
    fds.push_back(std::move(fd));
  }
  ScopedDiskOp op(&queue_depth_, &read_latency_);
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.read", transient));
    for (size_t i = 0; i < extents.size(); ++i) {
      const Extent& e = extents[i];
      TGPP_RETURN_IF_ERROR(PreadFull(fds[i]->fd(), e.part, e.offset, e.data,
                                     e.len, transient));
    }
    bytes_read_.Add(n);
    return Status::OK();
  });
}

Status DiskDevice::WriteAttempts(const char* site,
                                 const std::vector<Extent>& extents,
                                 const std::vector<FdRef>& fds, size_t n) {
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault(site, transient));
    for (size_t i = 0; i < extents.size(); ++i) {
      const Extent& e = extents[i];
      TGPP_RETURN_IF_ERROR(PwriteFull(fds[i]->fd(), e.part, e.offset,
                                      e.data, e.len, transient));
    }
    bytes_written_.Add(n);
    return Status::OK();
  });
}

Status DiskDevice::Write(const std::string& file, uint64_t offset,
                         const void* data, size_t n) {
  const std::vector<Extent> extents = SplitExtents(file, offset, data, n);
  std::vector<FdRef> fds;
  fds.reserve(extents.size());
  for (const Extent& e : extents) {
    TGPP_ASSIGN_OR_RETURN(FdRef fd, GetFdRef(e.part, /*create=*/true));
    fds.push_back(std::move(fd));
  }
  ScopedDiskOp op(&queue_depth_, &write_latency_);
  return WriteAttempts("disk.write", extents, fds, n);
}

Status DiskDevice::Append(const std::string& file, const void* data, size_t n,
                          uint64_t* offset_out) {
  // Serializing appends per device keeps (size probe, write) atomic; the
  // lock stays held across retries so a failed attempt is redone at the
  // same offset (a re-probe after a partial write would append past the
  // torn bytes).
  std::lock_guard<std::mutex> lock(append_mu_);
  uint64_t offset = 0;
  if (Result<uint64_t> size = FileSize(file); size.ok()) offset = *size;
  const std::vector<Extent> extents = SplitExtents(file, offset, data, n);
  std::vector<FdRef> fds;
  fds.reserve(extents.size());
  for (const Extent& e : extents) {
    TGPP_ASSIGN_OR_RETURN(FdRef fd, GetFdRef(e.part, /*create=*/true));
    fds.push_back(std::move(fd));
  }
  // The op scope starts only now, after the offset probe: appenders
  // queued on append_mu_ are waiting, not "in the device", so
  // disk.queue_depth and disk.write_latency_ns must not include their
  // lock wait (see AppendQueueDepthExcludesLockWait).
  ScopedDiskOp op(&queue_depth_, &write_latency_);
  TGPP_RETURN_IF_ERROR(WriteAttempts("disk.append", extents, fds, n));
  if (offset_out != nullptr) *offset_out = offset;
  return Status::OK();
}

Result<uint64_t> DiskDevice::FileSize(const std::string& file) {
  const uint64_t unit = profile_.stripe_unit_bytes;
  bool any = false;
  uint64_t logical = 0;
  for (int d = 0; d < stripe_; ++d) {
    const std::string path = dir_ + "/" + PartName(file, d);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) continue;
      return Status::IOError(Errno("stat", path));
    }
    any = true;
    const uint64_t s = static_cast<uint64_t>(st.st_size);
    if (stripe_ == 1) return s;
    if (s == 0) continue;
    // Reconstruct the logical end this part implies: its last byte lives
    // in its (s/unit)-th stripe unit, which is logical unit
    // (s/unit)*stripe + d (or one earlier when the part ends on a unit
    // boundary).
    const uint64_t full = s / unit;
    const uint64_t rem = s % unit;
    const uint64_t end =
        rem > 0 ? (full * stripe_ + d) * unit + rem
                : ((full - 1) * stripe_ + d) * unit + unit;
    logical = std::max(logical, end);
  }
  if (!any) {
    return Status::IOError("stat " + dir_ + "/" + file +
                           ": No such file or directory");
  }
  return logical;
}

Status DiskDevice::Truncate(const std::string& file, uint64_t size) {
  const uint64_t unit = profile_.stripe_unit_bytes;
  for (int d = 0; d < stripe_; ++d) {
    uint64_t part_size = size;
    if (stripe_ > 1) {
      // Full units 0..g-1 round-robin over the parts; the partial unit g
      // (if any) lands on part g % stripe.
      const uint64_t g = size / unit;
      const uint64_t partial = size % unit;
      const uint64_t full_units =
          g / stripe_ + ((static_cast<uint64_t>(d) < g % stripe_) ? 1 : 0);
      part_size = full_units * unit +
                  ((g % stripe_ == static_cast<uint64_t>(d)) ? partial : 0);
    }
    TGPP_ASSIGN_OR_RETURN(FdRef fd,
                          GetFdRef(PartName(file, d), /*create=*/true));
    if (::ftruncate(fd->fd(), static_cast<off_t>(part_size)) != 0) {
      return Status::IOError(Errno("ftruncate", PartName(file, d)));
    }
  }
  return Status::OK();
}

Status DiskDevice::Remove(const std::string& file) {
  // Dropping the FdRefs revokes the *name*; any operation mid-flight
  // still holds its own reference, so its fd stays valid until it
  // completes (no EBADF burned as a spurious transient retry).
  std::vector<FdRef> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int d = 0; d < stripe_; ++d) {
      auto it = fds_.find(PartName(file, d));
      if (it != fds_.end()) {
        dropped.push_back(std::move(it->second));
        fds_.erase(it);
      }
    }
  }
  for (int d = 0; d < stripe_; ++d) {
    const std::string path = dir_ + "/" + PartName(file, d);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(Errno("unlink", path));
    }
  }
  return Status::OK();
}

bool DiskDevice::Exists(const std::string& file) {
  const std::string part0 = PartName(file, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fds_.count(part0) > 0) return true;
  }
  struct stat st;
  return ::stat((dir_ + "/" + part0).c_str(), &st) == 0;
}

Status DiskDevice::Sync(const std::string& file) {
  std::vector<FdRef> fds;
  for (int d = 0; d < stripe_; ++d) {
    const std::string part = PartName(file, d);
    struct stat st;
    bool cached;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cached = fds_.count(part) > 0;
    }
    if (!cached && ::stat((dir_ + "/" + part).c_str(), &st) != 0) continue;
    TGPP_ASSIGN_OR_RETURN(FdRef fd, GetFdRef(part, /*create=*/false));
    fds.push_back(std::move(fd));
  }
  // Syncing a file that was never written is a no-op, not a create.
  if (fds.empty()) return Status::OK();
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.sync", transient));
    for (const FdRef& fd : fds) {
      if (::fsync(fd->fd()) != 0) {
        *transient = true;
        return Status::IOError(Errno("fsync", file));
      }
    }
    return Status::OK();
  });
}

Status DiskDevice::Touch(const std::string& file) {
  for (int d = 0; d < stripe_; ++d) {
    TGPP_ASSIGN_OR_RETURN(FdRef fd,
                          GetFdRef(PartName(file, d), /*create=*/true));
    (void)fd;
  }
  return Status::OK();
}

void DiskDevice::SubmitReads(const std::string& file,
                             std::vector<AsyncPageRead> reads,
                             IoBackend* backend) {
  struct Claimed {
    AsyncPageRead req;
    FdRef fd;
    int stripe_index;
    uint64_t phys_offset;
  };
  std::vector<Claimed> claimed;
  claimed.reserve(reads.size());
  for (AsyncPageRead& r : reads) {
    std::vector<Extent> extents = SplitExtents(file, r.offset, r.data, r.len);
    if (extents.size() != 1) {
      // Crosses a stripe-unit boundary (never the case for page-sized,
      // page-aligned requests): serve synchronously.
      Status s = Read(file, r.offset, r.data, r.len);
      r.done(s);
      continue;
    }
    Result<FdRef> fd = GetFdRef(extents[0].part, /*create=*/false);
    if (!fd.ok()) {
      r.done(fd.status());
      continue;
    }
    claimed.push_back({std::move(r), std::move(fd).value(),
                       extents[0].stripe_index, extents[0].offset});
  }
  if (claimed.empty()) return;

  // Physically adjacent pages (same backing file, contiguous offsets)
  // coalesce into one vectored request — with the stripe unit equal to
  // the page size, a striped sequential scan degenerates into per-device
  // sequential runs, which is the whole point of the RAID-0 layout.
  std::sort(claimed.begin(), claimed.end(),
            [](const Claimed& a, const Claimed& b) {
              if (a.fd.get() != b.fd.get()) return a.fd.get() < b.fd.get();
              return a.phys_offset < b.phys_offset;
            });

  std::vector<IoRead> batch;
  size_t i = 0;
  while (i < claimed.size()) {
    size_t j = i + 1;
    while (j < claimed.size() && j - i < kMaxMergedPages &&
           claimed[j].fd.get() == claimed[i].fd.get() &&
           claimed[j].phys_offset ==
               claimed[j - 1].phys_offset + claimed[j - 1].req.len) {
      ++j;
    }
    if (j - i > 1) merged_reads_.Add(j - i - 1);

    auto group = std::make_shared<AsyncReadGroup>();
    group->file = file;
    group->stripe_index = claimed[i].stripe_index;
    group->start = std::chrono::steady_clock::now();
    IoRead io;
    io.file = claimed[i].fd;
    io.offset = claimed[i].phys_offset;
    for (size_t k = i; k < j; ++k) {
      io.segs.push_back({claimed[k].req.data, claimed[k].req.len});
      group->total_bytes += claimed[k].req.len;
      group->pages.push_back(std::move(claimed[k].req));
    }
    // One fault roll per *merged* request, at submit time. Errors are
    // resolved at completion; delays become a completion deadline so
    // overlapping requests overlap their injected latencies.
    bool transient = false;
    int64_t delay_ms = 0;
    group->injected = CheckFault("disk.read", &transient, &delay_ms);
    group->injected_transient = transient;
    if (delay_ms > 0) {
      group->not_before =
          group->start + std::chrono::milliseconds(delay_ms);
    }
    queue_depth_.Add(1);
    stripe_queue_depth_[static_cast<size_t>(group->stripe_index)].Add(1);
    io.done = [this, group](Status s) {
      FinishAsyncReadGroup(group, std::move(s));
    };
    batch.push_back(std::move(io));
    i = j;
  }
  backend->Submit(std::move(batch));
}

void DiskDevice::FinishAsyncReadGroup(
    const std::shared_ptr<AsyncReadGroup>& group, Status status) {
  // Serve any injected latency as a deadline: requests submitted
  // together wait out a single overlapped delay, not a sum of them.
  if (group->not_before.time_since_epoch().count() != 0) {
    std::this_thread::sleep_until(group->not_before);
  }
  // The merged request itself is over once the backend completed: close
  // out its latency sample and queue-depth slots before delivering pages
  // (a waiter woken by a page callback must not observe the device still
  // busy; the per-page fallback reads below do their own accounting).
  read_latency_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - group->start)
          .count()));
  stripe_queue_depth_[static_cast<size_t>(group->stripe_index)].Add(-1);
  queue_depth_.Add(-1);
  if (!group->injected.ok()) {
    // The submit-time fault roll failed the merged request as one
    // attempt. With retries left, each page falls back to a synchronous
    // Read() that carries the full retry/fault semantics.
    if (group->injected_transient && retry_policy_.max_attempts > 1) {
      io_retries_.Add(1);
      std::this_thread::sleep_for(
          std::chrono::microseconds(retry_policy_.initial_backoff_micros));
      for (AsyncPageRead& p : group->pages) {
        p.done(Read(group->file, p.offset, p.data, p.len));
      }
    } else {
      for (AsyncPageRead& p : group->pages) p.done(group->injected);
    }
  } else if (!status.ok()) {
    // The raw vectored read failed (EOF, device error): retry per page
    // synchronously so partial groups (some pages readable, some past
    // EOF) resolve each page to its own status.
    for (AsyncPageRead& p : group->pages) {
      p.done(Read(group->file, p.offset, p.data, p.len));
    }
  } else {
    bytes_read_.Add(group->total_bytes);
    for (AsyncPageRead& p : group->pages) p.done(Status::OK());
  }
}

void DiskDevice::ResetCounters() {
  bytes_read_.Reset();
  bytes_written_.Reset();
}

void DiskDevice::RegisterMetrics(obs::Registry* registry, int machine,
                                 std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, "disk.read_bytes", machine, &bytes_read_);
  obs::TryRegister(registry, out, "disk.write_bytes", machine,
                   &bytes_written_);
  obs::TryRegister(registry, out, "disk.retries", machine, &io_retries_);
  obs::TryRegister(registry, out, "disk.injected_faults", machine,
                   &injected_faults_);
  obs::TryRegister(registry, out, "disk.merged_reads", machine,
                   &merged_reads_);
  obs::TryRegister(registry, out, "disk.read_latency_ns", machine,
                   &read_latency_);
  obs::TryRegister(registry, out, "disk.write_latency_ns", machine,
                   &write_latency_);
  obs::TryRegister(registry, out, "disk.queue_depth", machine,
                   &queue_depth_);
  if (stripe_ > 1) {
    for (int d = 0; d < stripe_; ++d) {
      obs::TryRegister(registry, out,
                       "disk.queue_depth.s" + std::to_string(d), machine,
                       &stripe_queue_depth_[static_cast<size_t>(d)]);
    }
  }
}

}  // namespace tgpp
