#include "storage/disk_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace tgpp {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

// Tracks one in-flight operation: bumps the queue-depth gauge for the
// duration and records wall latency (retries and injected delays
// included) into the histogram on completion.
class ScopedDiskOp {
 public:
  ScopedDiskOp(obs::Gauge* depth, obs::LatencyHistogram* latency)
      : depth_(depth), timer_(latency) {
    depth_->Add(1);
  }
  ~ScopedDiskOp() { depth_->Add(-1); }

 private:
  obs::Gauge* depth_;
  obs::ScopedLatencyTimer timer_;
};
}  // namespace

Status DiskDevice::CheckFault(const char* site, bool* transient) {
  auto injected = fault::Hit(site, fault_machine_);
  if (!injected.has_value()) return Status::OK();
  injected_faults_.Add(1);
  switch (injected->action) {
    case fault::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injected->param_ms));
      return Status::OK();
    case fault::Action::kTimeout:
      *transient = false;  // timeouts model a hung device; retry won't help
      return Status::Timeout(std::string("injected timeout at ") + site);
    default:
      *transient = true;
      return Status::IOError(std::string("injected fault at ") + site);
  }
}

template <typename Attempt>
Status DiskDevice::RunWithRetry(Attempt&& attempt) {
  int64_t backoff_us = retry_policy_.initial_backoff_micros;
  Status last = Status::OK();
  const int attempts = std::max(1, retry_policy_.max_attempts);
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      io_retries_.Add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = static_cast<int64_t>(
          static_cast<double>(backoff_us) * retry_policy_.backoff_multiplier);
    }
    bool transient = false;
    last = attempt(&transient);
    if (last.ok() || !transient) return last;
  }
  return last;
}

DiskDevice::DiskDevice(std::string dir, DiskProfile profile)
    : dir_(std::move(dir)), profile_(profile) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  TGPP_CHECK(!ec) << "cannot create storage dir " << dir_ << ": "
                  << ec.message();
}

DiskDevice::~DiskDevice() {
  for (auto& [name, fd] : fds_) ::close(fd);
}

Result<int> DiskDevice::GetFd(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(file);
  if (it != fds_.end()) return it->second;
  const std::string path = dir_ + "/" + file;
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return Status::IOError(Errno("open", path));
  fds_.emplace(file, fd);
  return fd;
}

uint32_t DiskDevice::StableFileId(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = file_ids_.find(file);
  if (it != file_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(file_ids_.size());
  file_ids_.emplace(file, id);
  return id;
}

Status DiskDevice::Read(const std::string& file, uint64_t offset, void* data,
                        size_t n) {
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  ScopedDiskOp op(&queue_depth_, &read_latency_);
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.read", transient));
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd, static_cast<char*>(data) + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        *transient = true;  // device-level errors may clear on retry
        return Status::IOError(Errno("pread", file));
      }
      if (r == 0) {
        // EOF: the bytes genuinely are not there; retrying cannot help.
        return Status::IOError("short read from " + file + " at offset " +
                               std::to_string(offset + done));
      }
      done += static_cast<size_t>(r);
    }
    bytes_read_.Add(n);
    return Status::OK();
  });
}

Status DiskDevice::Write(const std::string& file, uint64_t offset,
                         const void* data, size_t n) {
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  ScopedDiskOp op(&queue_depth_, &write_latency_);
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.write", transient));
    size_t done = 0;
    while (done < n) {
      const ssize_t r =
          ::pwrite(fd, static_cast<const char*>(data) + done, n - done,
                   static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        *transient = true;
        return Status::IOError(Errno("pwrite", file));
      }
      done += static_cast<size_t>(r);
    }
    bytes_written_.Add(n);
    return Status::OK();
  });
}

Status DiskDevice::Append(const std::string& file, const void* data, size_t n,
                          uint64_t* offset_out) {
  // Serializing appends per device keeps (size probe, write) atomic; the
  // lock stays held across retries so a failed attempt is redone at the
  // same offset (a re-probe after a partial write would append past the
  // torn bytes).
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  ScopedDiskOp op(&queue_depth_, &write_latency_);
  std::lock_guard<std::mutex> lock(mu_);
  struct stat st;
  if (::fstat(fd, &st) != 0) return Status::IOError(Errno("fstat", file));
  const uint64_t offset = static_cast<uint64_t>(st.st_size);
  TGPP_RETURN_IF_ERROR(RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.append", transient));
    size_t done = 0;
    while (done < n) {
      const ssize_t r =
          ::pwrite(fd, static_cast<const char*>(data) + done, n - done,
                   static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        *transient = true;
        return Status::IOError(Errno("pwrite", file));
      }
      done += static_cast<size_t>(r);
    }
    bytes_written_.Add(n);
    return Status::OK();
  }));
  if (offset_out != nullptr) *offset_out = offset;
  return Status::OK();
}

Result<uint64_t> DiskDevice::FileSize(const std::string& file) {
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  struct stat st;
  if (::fstat(fd, &st) != 0) return Status::IOError(Errno("fstat", file));
  return static_cast<uint64_t>(st.st_size);
}

Status DiskDevice::Truncate(const std::string& file, uint64_t size) {
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return Status::IOError(Errno("ftruncate", file));
  }
  return Status::OK();
}

Status DiskDevice::Remove(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(file);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
  const std::string path = dir_ + "/" + file;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink", path));
  }
  return Status::OK();
}

bool DiskDevice::Exists(const std::string& file) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fds_.count(file) > 0) return true;
  }
  struct stat st;
  return ::stat((dir_ + "/" + file).c_str(), &st) == 0;
}

Status DiskDevice::Sync(const std::string& file) {
  TGPP_ASSIGN_OR_RETURN(int fd, GetFd(file));
  return RunWithRetry([&](bool* transient) -> Status {
    TGPP_RETURN_IF_ERROR(CheckFault("disk.sync", transient));
    if (::fsync(fd) != 0) {
      *transient = true;
      return Status::IOError(Errno("fsync", file));
    }
    return Status::OK();
  });
}

void DiskDevice::ResetCounters() {
  bytes_read_.Reset();
  bytes_written_.Reset();
}

void DiskDevice::RegisterMetrics(obs::Registry* registry, int machine,
                                 std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, "disk.read_bytes", machine, &bytes_read_);
  obs::TryRegister(registry, out, "disk.write_bytes", machine,
                   &bytes_written_);
  obs::TryRegister(registry, out, "disk.retries", machine, &io_retries_);
  obs::TryRegister(registry, out, "disk.injected_faults", machine,
                   &injected_faults_);
  obs::TryRegister(registry, out, "disk.read_latency_ns", machine,
                   &read_latency_);
  obs::TryRegister(registry, out, "disk.write_latency_ns", machine,
                   &write_latency_);
  obs::TryRegister(registry, out, "disk.queue_depth", machine,
                   &queue_depth_);
}

}  // namespace tgpp
