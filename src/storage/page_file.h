// PageFile: a named, append-only sequence of fixed-size pages on a
// DiskDevice. Edge chunks are stored as page files; the buffer pool reads
// through this interface.

#ifndef TGPP_STORAGE_PAGE_FILE_H_
#define TGPP_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/disk_device.h"
#include "storage/slotted_page.h"

namespace tgpp {

class PageFile {
 public:
  // Opens (or creates) `name` on `device`. Page count is derived from the
  // current file size.
  static Result<PageFile> Open(DiskDevice* device, std::string name);

  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;

  const std::string& name() const { return name_; }
  DiskDevice* device() const { return device_; }
  uint64_t num_pages() const { return num_pages_; }
  // Stable across re-opens of the same file — the buffer pool caches by
  // (device, file_id, page_no), so pages stay warm across supersteps.
  uint32_t file_id() const { return file_id_; }

  // Appends one kPageSize page; returns its page number.
  Result<uint64_t> AppendPage(const uint8_t* page);

  // Reads page `page_no` into `out` (kPageSize bytes).
  Status ReadPage(uint64_t page_no, uint8_t* out) const;

  // Rewrites an existing page in place (used by checkpointing).
  Status WritePage(uint64_t page_no, const uint8_t* page);

  // Discards all pages.
  Status Clear();

 private:
  PageFile(DiskDevice* device, std::string name, uint64_t num_pages,
           uint32_t file_id)
      : device_(device),
        name_(std::move(name)),
        num_pages_(num_pages),
        file_id_(file_id) {}

  DiskDevice* device_;
  std::string name_;
  uint64_t num_pages_;
  uint32_t file_id_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_PAGE_FILE_H_
