#include "storage/async_io.h"

#include "util/trace.h"

namespace tgpp {

Status AsyncIoService::Ticket::Wait() {
  if (state_ == nullptr) return Status::OK();
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->remaining == 0; });
  return state_->first_error;
}

AsyncIoService::Ticket AsyncIoService::SubmitReads(
    BufferPool* buffer_pool, const PageFile* file,
    std::vector<uint64_t> pages, std::function<void(uint64_t, PageHandle)> cb,
    bool prefetch) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  ticket.state_->remaining = pages.size();
  if (pages.empty()) return ticket;

  auto state = ticket.state_;
  auto shared_cb =
      std::make_shared<std::function<void(uint64_t, PageHandle)>>(
          std::move(cb));
  for (uint64_t page_no : pages) {
    pool_.Submit([buffer_pool, file, page_no, state, shared_cb, prefetch] {
      trace::TraceSpan span("io.read_page", "io");
      span.AddArg("page", page_no);
      Result<PageHandle> handle = prefetch
                                      ? buffer_pool->Prefetch(file, page_no)
                                      : buffer_pool->Fetch(file, page_no);
      // Deliver even on failure (invalid handle): the consumer may be
      // counting completions, and a skipped callback would strand it.
      (*shared_cb)(page_no,
                   handle.ok() ? std::move(handle).value() : PageHandle());
      std::lock_guard<std::mutex> lock(state->mu);
      if (!handle.ok() && state->first_error.ok()) {
        state->first_error = handle.status();
      }
      if (--state->remaining == 0) state->cv.notify_all();
    });
  }
  return ticket;
}

}  // namespace tgpp
