#include "storage/async_io.h"

#include "util/trace.h"

namespace tgpp {

// The ok/status check happens BEFORE the handle is moved out — `handle`
// is consumed by the callback, so nothing may touch it afterwards.
void AsyncIoService::Deliver(
    const std::shared_ptr<Ticket::State>& state,
    const std::function<void(uint64_t, PageHandle)>& cb, uint64_t page_no,
    Result<PageHandle> handle) {
  const Status status = handle.ok() ? Status::OK() : handle.status();
  // Deliver even on failure (invalid handle): the consumer may be
  // counting completions, and a skipped callback would strand it.
  cb(page_no, status.ok() ? std::move(handle).value() : PageHandle());
  std::lock_guard<std::mutex> lock(state->mu);
  if (!status.ok() && state->first_error.ok()) {
    state->first_error = status;
  }
  if (--state->remaining == 0) state->cv.notify_all();
}

Status AsyncIoService::Ticket::Wait() {
  if (state_ == nullptr) return Status::OK();
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->remaining == 0; });
  return state_->first_error;
}

AsyncIoService::Ticket AsyncIoService::SubmitReads(
    BufferPool* buffer_pool, const PageFile* file,
    std::vector<uint64_t> pages, std::function<void(uint64_t, PageHandle)> cb,
    bool prefetch) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  ticket.state_->remaining = pages.size();
  if (pages.empty()) return ticket;

  auto state = ticket.state_;
  auto shared_cb =
      std::make_shared<std::function<void(uint64_t, PageHandle)>>(
          std::move(cb));

  std::vector<AsyncPageRead> batch;
  for (uint64_t page_no : pages) {
    BufferPool::StartRead sr =
        buffer_pool->TryStartRead(file, page_no, prefetch);
    switch (sr.kind) {
      case BufferPool::StartRead::kHit:
        // Resident: deliver inline, no thread hop.
        Deliver(state, *shared_cb, page_no, std::move(sr.handle));
        break;
      case BufferPool::StartRead::kClaimed: {
        // We own the in-flight frame; the device reads straight into it
        // and FinishRead publishes it (or undoes the claim on error).
        const uint32_t frame = sr.frame;
        AsyncPageRead read;
        read.offset = page_no * kPageSize;
        read.data = sr.data;
        read.len = kPageSize;
        read.done = [buffer_pool, frame, prefetch, state, shared_cb,
                     page_no](Status s) {
          trace::TraceSpan span("io.finish_page", "io");
          span.AddArg("page", page_no);
          Deliver(state, *shared_cb, page_no,
                  buffer_pool->FinishRead(frame, prefetch, s));
        };
        batch.push_back(std::move(read));
        break;
      }
      case BufferPool::StartRead::kFallback:
        // In flight elsewhere or pool momentarily full: the blocking
        // fetch on an I/O thread joins (or stalls for) the frame.
        pool_.Submit([buffer_pool, file, page_no, state, shared_cb,
                      prefetch] {
          trace::TraceSpan span("io.read_page", "io");
          span.AddArg("page", page_no);
          Deliver(state, *shared_cb, page_no,
                  prefetch ? buffer_pool->Prefetch(file, page_no)
                           : buffer_pool->Fetch(file, page_no));
        });
        break;
    }
  }
  if (!batch.empty()) {
    file->device()->SubmitReads(file->name(), std::move(batch),
                                backend_.get());
  }
  return ticket;
}

}  // namespace tgpp
