#include "storage/page_file.h"

#include "common/logging.h"

namespace tgpp {

Result<PageFile> PageFile::Open(DiskDevice* device, std::string name) {
  // Opening creates the file explicitly; the device itself never
  // materializes files on read paths (FileSize of a missing file is an
  // error, not a silently created zero-byte file).
  if (!device->Exists(name)) {
    TGPP_RETURN_IF_ERROR(device->Touch(name));
  }
  TGPP_ASSIGN_OR_RETURN(uint64_t size, device->FileSize(name));
  if (size % kPageSize != 0) {
    return Status::Corruption("page file " + name +
                              " size is not a multiple of the page size");
  }
  const uint32_t file_id = device->StableFileId(name);
  return PageFile(device, std::move(name), size / kPageSize, file_id);
}

Result<uint64_t> PageFile::AppendPage(const uint8_t* page) {
  const uint64_t page_no = num_pages_;
  TGPP_RETURN_IF_ERROR(
      device_->Write(name_, page_no * kPageSize, page, kPageSize));
  ++num_pages_;
  return page_no;
}

Status PageFile::ReadPage(uint64_t page_no, uint8_t* out) const {
  if (page_no >= num_pages_) {
    return Status::InvalidArgument("page " + std::to_string(page_no) +
                                   " out of range in " + name_);
  }
  return device_->Read(name_, page_no * kPageSize, out, kPageSize);
}

Status PageFile::WritePage(uint64_t page_no, const uint8_t* page) {
  if (page_no >= num_pages_) {
    return Status::InvalidArgument("page " + std::to_string(page_no) +
                                   " out of range in " + name_);
  }
  return device_->Write(name_, page_no * kPageSize, page, kPageSize);
}

Status PageFile::Clear() {
  TGPP_RETURN_IF_ERROR(device_->Truncate(name_, 0));
  num_pages_ = 0;
  return Status::OK();
}

}  // namespace tgpp
