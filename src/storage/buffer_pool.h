// BufferPool: fixed set of 64 KB frames with CLOCK replacement, pinning,
// and a sharded page table (paper Appendix A.3, "Buffer Management").
//
// The paper's buffer manager is a variant of non-blocking GCLOCK
// (NbGCLOCK), chosen so page I/O overlaps with computation (the 3-LPO
// model of §4.1). This pool reproduces that overlap with a per-frame
// state machine and a sharded latch, instead of NbGCLOCK's fully
// lock-free fast path:
//
//  - The page table is split into power-of-two shards keyed by
//    PageKeyHash, so hit-path pin/unpin on different pages contend on
//    different latches (the pin itself is an atomic CAS on the frame).
//  - A miss claims a victim frame (CAS pin_count 0 -> -1), publishes the
//    key as in-flight under the shard latch, then performs ReadPage with
//    NO latch held: misses on distinct pages proceed in parallel, and
//    concurrent fetchers of the same page wait on the shard CV for the
//    one in-flight read instead of issuing duplicates (exactly one
//    ReadPage per unique page; the waiters count as hits).
//
// Frame state machine (docs/ARCHITECTURE.md, "buffer manager"):
//
//     kFree --claim (pin 0->-1)--> exclusive --publish--> kIoInProgress
//       kIoInProgress --read ok--> kValid (pin = 1, holder's handle)
//       kIoInProgress --read fail--> kFree (entry erased; waiters re-probe
//                                    and retry the read themselves)
//     kValid --CLOCK evict (pin 0->-1)--> exclusive --> reused for a miss
//
// A frame whose pin_count is -1 is exclusively owned by one miss/evict
// path; pinned (> 0) and in-flight frames are never victims.

#ifndef TGPP_STORAGE_BUFFER_POOL_H_
#define TGPP_STORAGE_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace tgpp {

class BufferPool;

// RAII pin on a buffer frame. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t frame, const uint8_t* data)
      : pool_(pool), frame_(frame), data_(data) {}
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this == &other) return *this;  // self-move must not drop the pin
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    return *this;
  }

  bool valid() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }

  void Release();

 private:
  friend class BufferPool;  // Overwrite reaches the pinned frame index
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  const uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  explicit BufferPool(size_t num_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pinned handle on the page, reading it from disk on a miss.
  // Concurrent fetchers of the same missing page issue exactly one read;
  // the rest block on the frame state and count as hits. Fails with
  // kTimeout if every frame stays pinned past the stall timeout (which
  // indicates an engine bug: windows must be sized within the pool).
  Result<PageHandle> Fetch(const PageFile* file, uint64_t page_no);

  // Same as Fetch, but marks the frame as populated by read-ahead: the
  // first later fetch served by that frame counts as a prefetch hit
  // (`bufferpool.prefetch_hits`). Used by AsyncIoService so the engine's
  // read-ahead lands in shared pool frames, pinned on arrival.
  Result<PageHandle> Prefetch(const PageFile* file, uint64_t page_no);

  // Non-blocking first half of an *externally performed* read, used by
  // AsyncIoService to route misses through an IoBackend instead of a
  // blocking ReadPage on a pool thread:
  //
  //  - kHit: the page was resident; `handle` is the pinned handle (hit
  //    bookkeeping, including prefetch-hit consumption, already done).
  //  - kClaimed: a frame was claimed and published as in-flight; the
  //    caller MUST read kPageSize bytes into `data` and then call
  //    FinishRead(frame, ...) exactly once with the read's status.
  //  - kFallback: the page is being read by someone else right now, or
  //    no frame could be claimed without blocking. The caller should
  //    fall back to a blocking Fetch/Prefetch.
  struct StartRead {
    enum Kind { kHit, kClaimed, kFallback };
    Kind kind = kFallback;
    PageHandle handle;        // kHit
    uint32_t frame = 0;       // kClaimed
    uint8_t* data = nullptr;  // kClaimed: the destination frame buffer
  };
  StartRead TryStartRead(const PageFile* file, uint64_t page_no,
                         bool prefetch);

  // Second half: publishes a kClaimed frame after the external read
  // finished. On success returns the pinned handle (the frame becomes
  // kValid and visible to waiters); on failure the claim is undone, the
  // read error is returned, and waiters re-probe. Must be called from
  // the thread that observed the read's completion (the release store on
  // pin_count is what makes the page bytes visible to later pinners).
  Result<PageHandle> FinishRead(uint32_t frame, bool prefetch,
                                const Status& read_status);

  // Of `pages`, returns the subset currently resident (paper A.3: at the
  // beginning of a superstep, resident pages are pre-pinned and processed
  // first to avoid sequential flooding). In-flight (prefetched) pages
  // count as resident: they are pinned on arrival, so the resident-first
  // pass will find them.
  std::vector<uint64_t> ResidentSubset(const PageFile* file,
                                       std::span<const uint64_t> pages);

  // Copies `page` (kPageSize bytes) over the cached contents of
  // (file, page_no) and marks the frame dirty — the write path of the
  // dynamic-graph mutator (docs/DYNAMIC.md). The page is fetched into the
  // pool first if absent. Writeback is deferred: dirty frames reach disk
  // on FlushDirty (the mutation epoch's commit point) or when evicted.
  // Callers serialize mutations against readers of the same pages — the
  // job service runs update jobs exclusively.
  Status Overwrite(const PageFile* file, uint64_t page_no,
                   const uint8_t* page);

  // Writes every dirty frame belonging to `file` back via WritePage and
  // clears its dirty bit. Returns the number of pages written.
  Result<uint64_t> FlushDirty(PageFile* file);

  // Drops all unpinned frames (used between benchmark runs to emulate the
  // paper's page-cache drop, and by WAL recovery to model the loss of
  // volatile state on a kill: un-flushed dirty frames are DISCARDED, not
  // written back). In-flight frames are left alone.
  void DropAll();

  size_t num_frames() const { return num_frames_; }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t prefetch_hits() const { return prefetch_hits_.value(); }
  uint64_t dirty_writebacks() const { return dirty_writebacks_.value(); }
  int64_t resident_pages() const { return resident_pages_.value(); }
  int64_t io_in_flight() const { return io_in_flight_.value(); }
  // Cumulative hit rate in [0, 1]; 0 before any Fetch.
  double HitRate() const {
    const uint64_t h = hits(), m = misses();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }
  void ResetCounters();

  // How long a fetch may stall waiting for an unpinned frame before
  // failing with kTimeout (default 30 s; tests shrink it).
  void set_stall_timeout(std::chrono::milliseconds timeout) {
    stall_timeout_ = timeout;
  }

  // Registers this pool's instruments under "bufferpool.*" for `machine`,
  // appending the RAII handles to `out` (names already taken are skipped).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out);

  // Memory footprint of the frame array.
  uint64_t size_bytes() const { return num_frames_ * kPageSize; }

 private:
  friend class PageHandle;

  // Pages are keyed by (device, stable file id, page number) so cached
  // contents survive reopening the same file (PageFile objects are cheap
  // transient handles).
  struct PageKey {
    const DiskDevice* device;
    uint32_t file_id;
    uint64_t page_no;
    bool operator==(const PageKey& o) const {
      return device == o.device && file_id == o.file_id &&
             page_no == o.page_no;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return (std::hash<const void*>()(k.device) * 1000003u) ^
             (static_cast<size_t>(k.file_id) * 2654435761u) ^
             std::hash<uint64_t>()(k.page_no);
    }
  };

  enum FrameState : uint8_t { kFree = 0, kIoInProgress = 1, kValid = 2 };

  // pin_count is the frame's whole synchronization story: -1 means one
  // miss/evict path owns the frame exclusively, 0 means evictable, > 0
  // counts shared pins. `key`, `data` contents and `prefetched` are only
  // written by the exclusive owner (or read under the shard latch while
  // the frame is published), so the release/acquire edges on pin_count
  // plus the shard mutex make them race-free.
  struct Frame {
    PageKey key{nullptr, 0, 0};
    std::atomic<int32_t> pin_count{0};
    std::atomic<bool> ref{false};
    std::atomic<uint8_t> state{kFree};
    bool prefetched = false;
    // Deferred-writeback state: `dirty` is set by Overwrite and cleared by
    // FlushDirty / eviction writeback / DropAll (which discards).
    // `wb_device`/`wb_name` identify the backing file for an eviction
    // writeback; they are written at claim time by the exclusive owner.
    std::atomic<bool> dirty{false};
    DiskDevice* wb_device = nullptr;
    std::string wb_name;
    std::unique_ptr<uint8_t[]> data;
  };

  // One page-table shard: `table` maps keys to frame indices (including
  // in-flight frames); `io_cv` wakes fetchers waiting on an in-flight
  // read of a page in this shard.
  struct Shard {
    std::mutex mu;
    std::condition_variable io_cv;
    std::unordered_map<PageKey, uint32_t, PageKeyHash> table;
  };

  static constexpr size_t kNumShards = 16;  // power of two
  Shard& ShardFor(const PageKey& key) {
    return shards_[PageKeyHash()(key) & (kNumShards - 1)];
  }

  Result<PageHandle> FetchImpl(const PageFile* file, uint64_t page_no,
                               bool prefetch);

  // Pins a published frame if it is not exclusively claimed (CAS-increment
  // while pin_count >= 0). Returns false if an evictor owns it.
  static bool TryPinShared(Frame* f);

  // One CLOCK scan (two sweeps: the first clears ref bits) claiming an
  // evictable frame via CAS pin_count 0 -> -1. Returns -1 if every frame
  // is pinned or in flight — the caller must re-probe the table before
  // trying again (the wanted page may have landed meanwhile).
  int TryClaimVictim();

  // Returns an exclusively claimed frame to the free state and wakes
  // fetchers stalled on a full pool.
  void ReleaseFrame(Frame* f);

  // Writes an exclusively owned dirty frame back to its backing file and
  // clears the dirty bit (eviction path; FlushDirty goes through
  // PageFile::WritePage instead).
  Status WriteBackFrame(Frame* f);

  void Unpin(uint32_t frame);

  size_t num_frames_;
  std::unique_ptr<Frame[]> frames_;
  std::array<Shard, kNumShards> shards_;

  std::mutex clock_mu_;  // clock hand only; never held across I/O
  size_t clock_hand_ = 0;

  // Full-pool stalls wait here in short slices; Unpin/ReleaseFrame notify
  // without taking the mutex (a missed wakeup costs one slice).
  std::mutex stall_mu_;
  std::condition_variable unpin_cv_;
  std::atomic<int> stall_waiters_{0};
  std::chrono::milliseconds stall_timeout_{30000};

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter prefetch_hits_;
  obs::Counter dirty_writebacks_;
  obs::Gauge resident_pages_;
  obs::Gauge io_in_flight_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_BUFFER_POOL_H_
