// BufferPool: fixed set of 64 KB frames with CLOCK replacement, pinning,
// and a page table (paper Appendix A.3, "Buffer Management").
//
// The paper uses a variant of the non-blocking CLOCK (NbGCLOCK) algorithm;
// we implement a latch-guarded CLOCK with the same policy behaviour (ref
// bits, pin counts, pre-pinning of resident pages at superstep start). The
// lock-free fast path of NbGCLOCK is a constant-factor optimization that is
// irrelevant on this substrate (single-core host) and does not change any
// measured quantity we report (hits, misses, bytes moved).

#ifndef TGPP_STORAGE_BUFFER_POOL_H_
#define TGPP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace tgpp {

class BufferPool;

// RAII pin on a buffer frame. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t frame, const uint8_t* data)
      : pool_(pool), frame_(frame), data_(data) {}
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    return *this;
  }

  bool valid() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  const uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  explicit BufferPool(size_t num_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pinned handle on the page, reading it from disk on a miss.
  // Fails with kTimeout if every frame stays pinned for too long (which
  // indicates an engine bug: windows must be sized within the pool).
  Result<PageHandle> Fetch(const PageFile* file, uint64_t page_no);

  // Of `pages`, returns the subset currently resident (paper A.3: at the
  // beginning of a superstep, resident pages are pre-pinned and processed
  // first to avoid sequential flooding).
  std::vector<uint64_t> ResidentSubset(const PageFile* file,
                                       std::span<const uint64_t> pages);

  // Drops all unpinned frames (used between benchmark runs to emulate the
  // paper's page-cache drop).
  void DropAll();

  size_t num_frames() const { return frames_.size(); }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  int64_t resident_pages() const { return resident_pages_.value(); }
  // Cumulative hit rate in [0, 1]; 0 before any Fetch.
  double HitRate() const {
    const uint64_t h = hits(), m = misses();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }
  void ResetCounters();

  // Registers this pool's instruments under "bufferpool.*" for `machine`,
  // appending the RAII handles to `out` (names already taken are skipped).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out);

  // Memory footprint of the frame array.
  uint64_t size_bytes() const { return frames_.size() * kPageSize; }

 private:
  friend class PageHandle;

  // Pages are keyed by (device, stable file id, page number) so cached
  // contents survive reopening the same file (PageFile objects are cheap
  // transient handles).
  struct PageKey {
    const DiskDevice* device;
    uint32_t file_id;
    uint64_t page_no;
    bool operator==(const PageKey& o) const {
      return device == o.device && file_id == o.file_id &&
             page_no == o.page_no;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return (std::hash<const void*>()(k.device) * 1000003u) ^
             (static_cast<size_t>(k.file_id) * 2654435761u) ^
             std::hash<uint64_t>()(k.page_no);
    }
  };

  struct Frame {
    PageKey key{nullptr, 0, 0};
    int pin_count = 0;
    bool ref = false;
    bool valid = false;
    std::unique_ptr<uint8_t[]> data;
  };

  void Unpin(uint32_t frame);

  // Advances the clock hand to an evictable frame. Caller holds mu_.
  // Returns -1 if every frame is pinned after two sweeps.
  int FindVictimLocked();

  std::mutex mu_;
  std::condition_variable unpin_cv_;
  std::vector<Frame> frames_;
  std::unordered_map<PageKey, uint32_t, PageKeyHash> table_;
  size_t clock_hand_ = 0;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Gauge resident_pages_;
};

}  // namespace tgpp

#endif  // TGPP_STORAGE_BUFFER_POOL_H_
