// Raw-syscall io_uring backend (no liburing dependency).
//
// One submission/completion ring pair per backend instance. Submitters
// write READV SQEs under a mutex and io_uring_enter() them; a dedicated
// reaper thread blocks in io_uring_enter(GETEVENTS) and runs completion
// callbacks. In-flight requests are bounded by the configured queue
// depth. Frequently used fds are placed in a registered-file table
// (IOSQE_FIXED_FILE) keyed by FdHolder identity — not by fd number,
// which the kernel reuses — and each registered slot holds an FdRef so
// registration cannot outlive the descriptor.

#include "storage/io_backend.h"

#if defined(TGPP_HAVE_IO_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.h"

namespace tgpp {

namespace io_internal {
Status PreadvFull(const IoRead& read, size_t skip);
}  // namespace io_internal

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

unsigned RoundUpPow2(unsigned v) {
  unsigned p = 1;
  while (p < v && p < (1u << 15)) p <<= 1;
  return p;
}

// Size of the registered-file table. Small: a machine touches a handful
// of page files plus stripe parts; slots are recycled round-robin.
constexpr unsigned kRegisteredFdSlots = 64;

// One in-flight request. sqe->user_data carries a nonzero sequence id;
// the request itself is parked in a mu_-protected table keyed by that
// id. Routing ownership through the mutex (rather than smuggling the
// pointer through the ring) gives the reaper a synchronized handoff —
// the kernel's CQE delivery is not a visible happens-before edge — and
// makes a stray or already-reclaimed completion harmless: an unknown id
// simply misses the table.
struct Pending {
  IoRead read;
  std::vector<struct iovec> iov;
  size_t total = 0;
};

class UringIoBackend : public IoBackend {
 public:
  // On any setup failure the instance reports !ok() and the factory
  // discards it (callers fall back to the thread-pool backend).
  explicit UringIoBackend(unsigned queue_depth) {
    depth_ = RoundUpPow2(queue_depth == 0 ? 64 : queue_depth);
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(depth_, &params);
    if (ring_fd_ < 0) return;
    if (!MapRings(params)) {
      ::close(ring_fd_);
      ring_fd_ = -1;
      return;
    }
    RegisterSparseFileTable();
    reaper_ = std::thread([this] { ReapLoop(); });
  }

  ~UringIoBackend() override {
    if (ring_fd_ < 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      // NOP SQE with user_data 0 wakes the reaper out of GETEVENTS.
      struct io_uring_sqe* sqe = AcquireSqeLocked();
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_NOP;
      sqe->user_data = 0;
      PublishTailLocked(1);
      while (SysIoUringEnter(ring_fd_, 1, 0, 0) < 0 && errno == EINTR) {
      }
    }
    reaper_.join();
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_len_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_len_);
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_len_);
    ::close(ring_fd_);
  }

  bool ok() const { return ring_fd_ >= 0; }

  const char* name() const override { return "uring"; }

  void Submit(std::vector<IoRead> reads) override {
    for (IoRead& read : reads) {
      auto p = std::make_unique<Pending>();
      p->read = std::move(read);
      p->iov.reserve(p->read.segs.size());
      for (const IoSeg& seg : p->read.segs) {
        p->iov.push_back({seg.data, seg.len});
        p->total += seg.len;
      }
      std::unique_lock<std::mutex> lock(mu_);
      // Bound in-flight requests to the ring size; completions free slots.
      slot_cv_.wait(lock, [this] { return inflight_ < depth_; });
      ++inflight_;
      struct io_uring_sqe* sqe = AcquireSqeLocked();
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READV;
      int slot = RegisteredSlotLocked(p->read.file);
      if (slot >= 0) {
        sqe->fd = slot;
        sqe->flags |= IOSQE_FIXED_FILE;
      } else {
        sqe->fd = p->read.file->fd();
      }
      sqe->addr = reinterpret_cast<uint64_t>(p->iov.data());
      sqe->len = static_cast<uint32_t>(p->iov.size());
      sqe->off = p->read.offset;
      const uint64_t id = ++next_id_;  // 0 is reserved for the NOP wake
      sqe->user_data = id;
      pending_.emplace(id, std::move(p));
      PublishTailLocked(1);
      int rc;
      while ((rc = SysIoUringEnter(ring_fd_, 1, 0, 0)) < 0 &&
             errno == EINTR) {
      }
      submits_.Add(1);
      if (rc < 0) {
        // Submission itself failed (should not happen once setup
        // succeeded); complete synchronously so `done` still fires. Take
        // the request back out of the table — if the kernel somehow
        // completes the published SQE anyway, the reaper finds no entry
        // and drops the CQE.
        auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // reaper beat us to it
        std::unique_ptr<Pending> mine = std::move(it->second);
        pending_.erase(it);
        --inflight_;
        lock.unlock();
        mine->read.done(io_internal::PreadvFull(mine->read, 0));
      }
    }
  }

  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out) override {
    obs::TryRegister(registry, out, "disk.uring_submits", machine,
                     &submits_);
  }

 private:
  bool MapRings(const struct io_uring_params& params) {
    sq_len_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_len_ =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_len_ > sq_len_) sq_len_ = cq_len_;
    sq_ptr_ = ::mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
      cq_len_ = sq_len_;
    } else {
      cq_ptr_ = ::mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_,
                       IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return false;
      }
    }
    sqes_len_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }
    auto* sq = static_cast<uint8_t*>(sq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  void RegisterSparseFileTable() {
    std::vector<int32_t> fds(kRegisteredFdSlots, -1);
    files_registered_ =
        SysIoUringRegister(ring_fd_, IORING_REGISTER_FILES, fds.data(),
                           kRegisteredFdSlots) == 0;
    slot_refs_.resize(kRegisteredFdSlots);
  }

  // Returns the registered-file slot for `file`, installing it via
  // FILES_UPDATE on first use (round-robin eviction). -1 → use plain fd.
  // Keyed by holder identity: a reused fd *number* on a fresh FdHolder
  // does not alias a stale registration. Caller holds mu_.
  int RegisteredSlotLocked(const FdRef& file) {
    if (!files_registered_) return -1;
    auto it = slot_of_.find(file.get());
    if (it != slot_of_.end()) return it->second;
    const unsigned slot = next_slot_++ % kRegisteredFdSlots;
    struct io_uring_files_update update;
    std::memset(&update, 0, sizeof(update));
    int32_t fd = file->fd();
    update.offset = slot;
    update.fds = reinterpret_cast<uint64_t>(&fd);
    if (SysIoUringRegister(ring_fd_, IORING_REGISTER_FILES_UPDATE, &update,
                           1) != 1) {
      return -1;
    }
    if (slot_refs_[slot] != nullptr) slot_of_.erase(slot_refs_[slot].get());
    slot_refs_[slot] = file;
    slot_of_[file.get()] = static_cast<int>(slot);
    return static_cast<int>(slot);
  }

  // Caller holds mu_ and must follow with PublishTailLocked. The ring
  // cannot be full here: inflight_ < depth_ == sq_entries.
  struct io_uring_sqe* AcquireSqeLocked() {
    const unsigned tail = sq_tail_local_;
    const unsigned idx = tail & sq_mask_;
    sq_array_[idx] = idx;
    return &sqes_[idx];
  }

  void PublishTailLocked(unsigned n) {
    sq_tail_local_ += n;
    __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
  }

  void ReapLoop() {
    for (;;) {
      unsigned head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        const int rc =
            SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (rc < 0 && errno != EINTR && errno != EAGAIN) {
          // Transient enter failure (e.g. resource pressure): degrade to
          // a 1 ms poll of the CQ ring instead of exiting. A dead reaper
          // would strand every in-flight ticket and wedge submitters on
          // the slot gate forever; a polling one stays correct.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        continue;
      }
      bool saw_stop = false;
      while (head != tail) {
        const struct io_uring_cqe& cqe = cqes_[head & cq_mask_];
        const uint64_t id = cqe.user_data;
        const int32_t res = cqe.res;
        ++head;
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
        if (id == 0) {  // shutdown NOP
          saw_stop = true;
          continue;
        }
        // Claim the request under mu_ (the synchronized half of the
        // submit→reap handoff). The ring slot is free as soon as the CQE
        // is consumed, so the in-flight slot is released here rather
        // than after the callback.
        std::unique_ptr<Pending> p;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(id);
          if (it != pending_.end()) {
            p = std::move(it->second);
            pending_.erase(it);
            --inflight_;
          }
        }
        if (p == nullptr) continue;  // reclaimed by a failed submit
        slot_cv_.notify_one();
        Status status = Status::OK();
        if (res < 0) {
          status = Status::IOError(std::string("io_uring readv: ") +
                                   std::strerror(-res));
        } else if (res == 0) {
          status = Status::IOError("short read at offset " +
                                   std::to_string(p->read.offset));
        } else if (static_cast<size_t>(res) < p->total) {
          // Partial completion: finish the remainder synchronously.
          status = io_internal::PreadvFull(p->read,
                                           static_cast<size_t>(res));
        }
        p->read.done(status);
      }
      if (saw_stop) return;
    }
  }

  int ring_fd_ = -1;
  unsigned depth_ = 0;

  void* sq_ptr_ = nullptr;
  size_t sq_len_ = 0;
  void* cq_ptr_ = nullptr;
  size_t cq_len_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_len_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;

  std::mutex mu_;
  std::condition_variable slot_cv_;
  unsigned sq_tail_local_ = 0;
  unsigned inflight_ = 0;
  bool stopping_ = false;
  uint64_t next_id_ = 0;  // guarded by mu_; user_data 0 = NOP wake
  std::unordered_map<uint64_t, std::unique_ptr<Pending>> pending_;

  bool files_registered_ = false;
  unsigned next_slot_ = 0;
  std::unordered_map<const FdHolder*, int> slot_of_;
  std::vector<FdRef> slot_refs_;

  obs::Counter submits_;

  std::thread reaper_;
};

}  // namespace

bool UringAvailable() {
  static const bool available = [] {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(1, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

std::unique_ptr<IoBackend> MakeUringIoBackend(unsigned queue_depth) {
  auto backend = std::make_unique<UringIoBackend>(queue_depth);
  if (!backend->ok()) return nullptr;
  return backend;
}

}  // namespace tgpp

#else  // !TGPP_HAVE_IO_URING

namespace tgpp {

bool UringAvailable() { return false; }

std::unique_ptr<IoBackend> MakeUringIoBackend(unsigned /*queue_depth*/) {
  return nullptr;
}

}  // namespace tgpp

#endif  // TGPP_HAVE_IO_URING
