// DynamicGraph: the mutation façade of the dynamic-graph subsystem
// (docs/DYNAMIC.md). Owns the epoch counter and a per-machine WAL, and
// applies UpdateBatches to the partitioned on-disk graph through the
// buffer pool's dirty-page write path.
//
// Apply protocol for one batch (epoch E = current + 1):
//   1. durability — append the batch to the WAL of every machine that
//      owns mutated sources, fsync (kBatch records).
//   2. apply — for each mutation, locate the (src, dst) edge chunk and
//      edit its slotted pages in place via BufferPool::Overwrite:
//      inserts extend/append records in free space or allocate overflow
//      delta pages (kDeltaPage records), deletes compact records in
//      place. Inserting a present edge / deleting an absent one is a
//      counted no-op, which makes replay idempotent.
//   3. commit — flush dirty frames, fsync the edge file, append kCommit.
//
// A machine killed between (1) and (3) loses its un-flushed page writes
// (volatile state); Recover() drops the pool, replays uncommitted WAL
// batches, recounts the out-degrees of touched sources from disk, and
// commits — converging to the same bytes as a fault-free apply.
//
// Consistency: callers serialize ApplyBatch against queries (the job
// service runs update jobs exclusively), so every query sees the graph
// at exactly one epoch.

#ifndef TGPP_DYN_DYNAMIC_GRAPH_H_
#define TGPP_DYN_DYNAMIC_GRAPH_H_

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "dyn/update_batch.h"
#include "dyn/wal.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"

namespace tgpp::dyn {

class DynamicGraph {
 public:
  // `pg` must outlive this object and stay pinned (no repartition while
  // mutations exist: Repartition rewrites the pages from the original
  // edge list and would silently drop applied batches).
  DynamicGraph(Cluster* cluster, PartitionedGraph* pg);

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  // Applies one batch as a new epoch. On Status::MachineLost the batch is
  // durable in the WAL but incompletely applied — call
  // Cluster::ReviveAllMachines() + Recover() to finish it.
  Status ApplyBatch(const UpdateBatch& batch, ApplyStats* stats = nullptr);

  // Replays uncommitted WAL batches on every machine after a kill (drops
  // each pool's un-flushed state first, to model the volatile loss).
  // Safe to call when there is nothing to do.
  Status Recover(ApplyStats* stats = nullptr);

  // Epoch of the last committed batch; 0 = pristine graph.
  uint64_t epoch() const { return pg_->mutation_epoch; }

  PartitionedGraph* pg() { return pg_; }

 private:
  // Applies one machine's mutations (NEW-id space) to its pages.
  // `count_metadata` is false during replay, where degrees are recounted
  // from disk afterwards instead of trusted increments.
  Status ApplyMachine(int m, uint64_t epoch,
                      std::span<const EdgeMutation> muts_new_ids,
                      bool count_metadata, ApplyStats* stats,
                      std::unordered_set<VertexId>* touched_srcs);

  Status ApplyOneInsert(int m, PageFile* file, uint64_t epoch,
                        VertexId src, VertexId dst, bool count_metadata,
                        ApplyStats* stats);
  Status ApplyOneDelete(int m, PageFile* file, VertexId src, VertexId dst,
                        bool count_metadata, ApplyStats* stats);

  // Chunk ordinal (index into machines[m].chunks) owning (src, dst).
  int ChunkOrdinalFor(int m, VertexId src, VertexId dst) const;

  // Rebuilds out_degree for `srcs` and num_edges for the chunks that
  // contain them by scanning the machine's pages (recovery path).
  Status RecountDegrees(int m, const std::unordered_set<VertexId>& srcs);

  // Flush + fsync + kCommit on one machine.
  Status CommitMachine(int m, uint64_t epoch, ApplyStats* stats);

  Cluster* cluster_;
  PartitionedGraph* pg_;
  std::vector<std::unique_ptr<Wal>> wals_;  // one per machine

  obs::Counter edges_inserted_;
  obs::Counter edges_deleted_;
  obs::Counter wal_bytes_;
  obs::Counter delta_pages_;
  obs::Counter affected_frontier_;
  std::vector<obs::Registration> registrations_;
};

}  // namespace tgpp::dyn

#endif  // TGPP_DYN_DYNAMIC_GRAPH_H_
