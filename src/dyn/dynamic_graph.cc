#include "dyn/dynamic_graph.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "obs/events.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"

namespace tgpp::dyn {

namespace {

bool InRange(const VertexRange& r, VertexId v) {
  return v >= r.begin && v < r.end;
}

// Widens a page-index entry to cover `src` (entries are pruning hints:
// wider is always safe, narrower would hide records).
void WidenEntry(PageIndexEntry* entry, VertexId src) {
  if (entry->src_min > entry->src_max) {  // dummy "never matches" entry
    entry->src_min = src;
    entry->src_max = src;
    return;
  }
  entry->src_min = std::min(entry->src_min, src);
  entry->src_max = std::max(entry->src_max, src);
}

}  // namespace

DynamicGraph::DynamicGraph(Cluster* cluster, PartitionedGraph* pg)
    : cluster_(cluster), pg_(pg) {
  wals_.reserve(pg_->machines.size());
  for (size_t m = 0; m < pg_->machines.size(); ++m) {
    wals_.push_back(
        std::make_unique<Wal>(cluster_->machine(static_cast<int>(m))->disk()));
  }
  obs::Registry& reg = obs::Registry::Global();
  obs::TryRegister(&reg, &registrations_, "dyn.edges_inserted", -1,
                   &edges_inserted_);
  obs::TryRegister(&reg, &registrations_, "dyn.edges_deleted", -1,
                   &edges_deleted_);
  obs::TryRegister(&reg, &registrations_, "dyn.wal_bytes", -1, &wal_bytes_);
  obs::TryRegister(&reg, &registrations_, "dyn.delta_pages", -1,
                   &delta_pages_);
  obs::TryRegister(&reg, &registrations_, "dyn.affected_frontier", -1,
                   &affected_frontier_);
}

int DynamicGraph::ChunkOrdinalFor(int m, VertexId src, VertexId dst) const {
  const MachinePartition& part = pg_->machines[m];
  // The recorded sub-chunk dst_ranges are TIGHT — there are gaps between
  // them and empty sub-chunks record {b, b} — so containment tests cannot
  // route an arbitrary (src, dst). Instead recompute the (i, j) grid cell
  // with the same ceil arithmetic the partitioner used to assign edges
  // (partition_internal::WriteMachineChunks), then pick a sub-chunk.
  const auto chunk_index = [](VertexId v, const VertexRange& range,
                              int parts) {
    const uint64_t chunk =
        (range.size() + static_cast<uint64_t>(parts) - 1) / parts;
    return chunk == 0 ? 0 : static_cast<int>((v - range.begin) / chunk);
  };
  if (!InRange(pg_->MachineRange(m), src)) return -1;
  const int i = chunk_index(src, pg_->MachineRange(m), pg_->q);
  const int owner = pg_->OwnerOf(dst);
  if (owner < 0 || owner >= pg_->p) return -1;
  const int j =
      owner * pg_->q + chunk_index(dst, pg_->MachineRange(owner), pg_->q);
  const size_t base =
      (static_cast<size_t>(i) * (pg_->p * pg_->q) + static_cast<size_t>(j)) *
      static_cast<size_t>(pg_->r);
  if (base + static_cast<size_t>(pg_->r) > part.chunks.size()) return -1;
  // Within the cell the r sub-chunks hold ascending, disjoint dst runs.
  // Route to the first sub whose run end is still above dst (an existing
  // (src, dst) record can only live there), else the last sub — whose
  // range widens when the insert lands (see ApplyOneInsert).
  for (int sub = 0; sub < pg_->r; ++sub) {
    if (dst < part.chunks[base + sub].dst_range.end) {
      return static_cast<int>(base + sub);
    }
  }
  return static_cast<int>(base + pg_->r - 1);
}

Status DynamicGraph::ApplyOneInsert(int m, PageFile* file, uint64_t epoch,
                                    VertexId src, VertexId dst,
                                    bool count_metadata, ApplyStats* stats) {
  MachinePartition& part = pg_->machines[m];
  const int ord = ChunkOrdinalFor(m, src, dst);
  if (ord < 0) {
    return Status::Internal("no edge chunk covers (" + std::to_string(src) +
                            ", " + std::to_string(dst) + ")");
  }
  EdgeChunkInfo& chunk = part.chunks[ord];
  // Keep the tight recorded run honest for future routing: once this
  // insert lands, the sub-chunk really does cover dst. Widening never
  // reroutes earlier dsts (routing only compares against `end`, and the
  // end only grows here when dst was already routed to this sub-chunk).
  chunk.dst_range.begin = std::min(chunk.dst_range.begin, dst);
  chunk.dst_range.end = std::max(chunk.dst_range.end, dst + 1);
  Machine* machine = cluster_->machine(m);
  BufferPool* pool = machine->buffer_pool();

  // Idempotence: scan the pages whose index range covers src for an
  // existing (src, dst) record.
  const std::vector<uint64_t> pages = chunk.PageNumbers();
  for (const uint64_t page_no : pages) {
    const PageIndexEntry& entry = part.page_index[page_no];
    if (entry.src_max < src || entry.src_min > src) continue;
    TGPP_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(file, page_no));
    SlottedPageReader reader(handle.data());
    TGPP_RETURN_IF_ERROR(reader.Validate());
    for (uint32_t s = 0; s < reader.num_slots(); ++s) {
      if (reader.SrcAt(s) != src) continue;
      const std::span<const uint64_t> dsts = reader.DstsAt(s);
      if (std::find(dsts.begin(), dsts.end(), dst) != dsts.end()) {
        ++stats->skipped;
        return Status::OK();
      }
    }
  }

  // Heap-file append policy: only the LAST page of the chunk accepts new
  // records (earlier pages are sealed); when it is full, allocate an
  // overflow delta page.
  std::vector<uint8_t> scratch(kPageSize);
  if (!pages.empty()) {
    const uint64_t page_no = pages.back();
    TGPP_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(file, page_no));
    std::memcpy(scratch.data(), handle.data(), kPageSize);
    handle.Release();
    SlottedPageMutator mut(scratch.data());
    SlottedPageReader reader(scratch.data());
    bool placed = false;
    for (uint32_t s = 0; s < mut.num_slots() && !placed; ++s) {
      if (reader.SrcAt(s) == src) placed = mut.TryExtendRecord(s, dst);
    }
    if (!placed) placed = mut.TryAppendRecord(src, dst);
    if (placed) {
      TGPP_RETURN_IF_ERROR(pool->Overwrite(file, page_no, scratch.data()));
      WidenEntry(&part.page_index[page_no], src);
      if (count_metadata) {
        ++pg_->out_degree[src];
        ++chunk.num_edges;
        ++part.num_edges;
        ++pg_->num_edges;
      }
      ++stats->inserted;
      return Status::OK();
    }
  }

  // Allocate a fresh delta page holding just this record. The page lands
  // on disk before the WAL references it, so a crash in between leaves
  // an orphan page (dead bytes, never scanned) — replay re-inserts.
  SlottedPageBuilder builder(scratch.data());
  const uint64_t one[1] = {dst};
  TGPP_CHECK(builder.AddRecord(src, one));
  TGPP_ASSIGN_OR_RETURN(const uint64_t page_no,
                        file->AppendPage(scratch.data()));
  TGPP_RETURN_IF_ERROR(wals_[m]->AppendDeltaPage(
      epoch, {static_cast<uint32_t>(ord), page_no}, &stats->wal_bytes));
  chunk.delta_pages.push_back(page_no);
  while (part.page_index.size() < page_no) {
    // Dense index repair (src_min > src_max never matches a lookup).
    part.page_index.push_back(
        {part.page_index.size(), kInvalidVertex, 0});
  }
  part.page_index.push_back({page_no, src, src});
  ++stats->delta_pages;
  delta_pages_.Add(1);
  if (count_metadata) {
    ++pg_->out_degree[src];
    ++chunk.num_edges;
    ++part.num_edges;
    ++pg_->num_edges;
  }
  ++stats->inserted;
  return Status::OK();
}

Status DynamicGraph::ApplyOneDelete(int m, PageFile* file, VertexId src,
                                    VertexId dst, bool count_metadata,
                                    ApplyStats* stats) {
  MachinePartition& part = pg_->machines[m];
  const int ord = ChunkOrdinalFor(m, src, dst);
  if (ord < 0) {
    ++stats->skipped;  // nothing stored there, so nothing to delete
    return Status::OK();
  }
  EdgeChunkInfo& chunk = part.chunks[ord];
  Machine* machine = cluster_->machine(m);
  BufferPool* pool = machine->buffer_pool();

  std::vector<uint8_t> scratch(kPageSize);
  for (const uint64_t page_no : chunk.PageNumbers()) {
    const PageIndexEntry& entry = part.page_index[page_no];
    if (entry.src_max < src || entry.src_min > src) continue;
    TGPP_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(file, page_no));
    SlottedPageReader reader(handle.data());
    TGPP_RETURN_IF_ERROR(reader.Validate());
    std::memcpy(scratch.data(), handle.data(), kPageSize);
    handle.Release();
    SlottedPageMutator mut(scratch.data());
    if (!mut.RemoveDst(src, dst)) continue;
    TGPP_RETURN_IF_ERROR(pool->Overwrite(file, page_no, scratch.data()));
    if (count_metadata) {
      --pg_->out_degree[src];
      --chunk.num_edges;
      --part.num_edges;
      --pg_->num_edges;
    }
    ++stats->deleted;
    return Status::OK();
  }
  ++stats->skipped;  // absent edge: idempotent no-op
  return Status::OK();
}

Status DynamicGraph::ApplyMachine(int m, uint64_t epoch,
                                  std::span<const EdgeMutation> muts,
                                  bool count_metadata, ApplyStats* stats,
                                  std::unordered_set<VertexId>* touched_srcs) {
  Machine* machine = cluster_->machine(m);
  if (!machine->alive()) return Status::MachineLost(m, -1);
  TGPP_ASSIGN_OR_RETURN(
      PageFile file,
      PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));
  for (const EdgeMutation& mut : muts) {
    // Fail-stop fault site: a kill here loses the machine's un-flushed
    // page writes; the batch survives in the WAL (chaos test, PR 7 site).
    if (fault::Hit("machine.kill", m)) {
      cluster_->KillMachine(m);
      return Status::MachineLost(m, -1);
    }
    const VertexId src = pg_->old_to_new[mut.src];
    const VertexId dst = pg_->old_to_new[mut.dst];
    TGPP_DCHECK(pg_->OwnerOf(src) == m);
    const uint64_t before_ins = stats->inserted;
    const uint64_t before_del = stats->deleted;
    if (mut.op == EdgeOp::kInsert) {
      TGPP_RETURN_IF_ERROR(
          ApplyOneInsert(m, &file, epoch, src, dst, count_metadata, stats));
    } else {
      TGPP_RETURN_IF_ERROR(
          ApplyOneDelete(m, &file, src, dst, count_metadata, stats));
    }
    if (stats->inserted != before_ins || stats->deleted != before_del) {
      stats->affected.push_back(mut.src);  // ORIGINAL ids seed frontiers
      stats->affected.push_back(mut.dst);
      stats->applied.push_back(mut);
      if (touched_srcs != nullptr) touched_srcs->insert(src);
    }
  }
  return Status::OK();
}

Status DynamicGraph::CommitMachine(int m, uint64_t epoch,
                                   ApplyStats* stats) {
  Machine* machine = cluster_->machine(m);
  if (!machine->alive()) return Status::MachineLost(m, -1);
  if (fault::Hit("machine.kill", m)) {
    cluster_->KillMachine(m);
    return Status::MachineLost(m, -1);
  }
  TGPP_ASSIGN_OR_RETURN(
      PageFile file,
      PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));
  TGPP_RETURN_IF_ERROR(
      machine->buffer_pool()->FlushDirty(&file).status());
  TGPP_RETURN_IF_ERROR(
      machine->disk()->Sync(PartitionedGraph::kEdgeFileName));
  return wals_[m]->AppendCommit(epoch, &stats->wal_bytes);
}

Status DynamicGraph::ApplyBatch(const UpdateBatch& batch,
                                ApplyStats* stats) {
  ApplyStats local;
  if (stats == nullptr) stats = &local;
  if (batch.empty()) return Status::OK();
  const int p = static_cast<int>(pg_->machines.size());
  const uint64_t epoch = pg_->mutation_epoch + 1;
  stats->epoch = epoch;

  // Group mutations (ORIGINAL ids) by the machine owning the source.
  std::vector<std::vector<EdgeMutation>> per_machine(p);
  for (const EdgeMutation& mut : batch.mutations) {
    if (mut.src >= pg_->num_vertices || mut.dst >= pg_->num_vertices) {
      return Status::InvalidArgument(
          "mutation endpoint out of range: " + FormatEdgeMutation(mut) +
          " (graph has " + std::to_string(pg_->num_vertices) + " vertices)");
    }
    const int owner = pg_->OwnerOf(pg_->old_to_new[mut.src]);
    per_machine[owner].push_back(mut);
  }

  // Phase 1 — durability: the whole batch is fsync'd into every involved
  // machine's WAL before any page changes.
  for (int m = 0; m < p; ++m) {
    if (per_machine[m].empty()) continue;
    if (!cluster_->machine(m)->alive()) return Status::MachineLost(m, -1);
    TGPP_RETURN_IF_ERROR(
        wals_[m]->AppendBatch(epoch, per_machine[m], &stats->wal_bytes));
  }

  // Phase 2 — apply through the buffer pool (deferred writeback).
  for (int m = 0; m < p; ++m) {
    if (per_machine[m].empty()) continue;
    TGPP_RETURN_IF_ERROR(ApplyMachine(m, epoch, per_machine[m],
                                      /*count_metadata=*/true, stats,
                                      nullptr));
  }

  // Phase 3 — commit: flush dirty pages, fsync, log kCommit.
  for (int m = 0; m < p; ++m) {
    if (per_machine[m].empty()) continue;
    TGPP_RETURN_IF_ERROR(CommitMachine(m, epoch, stats));
  }

  pg_->mutation_epoch = epoch;
  std::sort(stats->affected.begin(), stats->affected.end());
  stats->affected.erase(
      std::unique(stats->affected.begin(), stats->affected.end()),
      stats->affected.end());

  edges_inserted_.Add(stats->inserted);
  edges_deleted_.Add(stats->deleted);
  wal_bytes_.Add(stats->wal_bytes);
  affected_frontier_.Add(stats->affected.size());
  obs::EmitEvent(obs::EventType::kUpdateApplied, 0, -1, -1, nullptr,
                 "epoch", epoch, "inserted", stats->inserted, "deleted",
                 stats->deleted);
  return Status::OK();
}

Status DynamicGraph::RecountDegrees(
    int m, const std::unordered_set<VertexId>& srcs) {
  Machine* machine = cluster_->machine(m);
  MachinePartition& part = pg_->machines[m];
  TGPP_ASSIGN_OR_RETURN(
      PageFile file,
      PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));
  std::unordered_map<VertexId, uint64_t> counts;
  for (const VertexId s : srcs) counts[s] = 0;

  for (EdgeChunkInfo& chunk : part.chunks) {
    bool relevant = false;
    for (const VertexId s : srcs) {
      if (InRange(chunk.src_range, s)) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;
    uint64_t chunk_edges = 0;
    for (const uint64_t page_no : chunk.PageNumbers()) {
      TGPP_ASSIGN_OR_RETURN(PageHandle handle,
                            machine->buffer_pool()->Fetch(&file, page_no));
      SlottedPageReader reader(handle.data());
      TGPP_RETURN_IF_ERROR(reader.Validate());
      for (uint32_t s = 0; s < reader.num_slots(); ++s) {
        chunk_edges += reader.DstsAt(s).size();
        auto it = counts.find(reader.SrcAt(s));
        if (it != counts.end()) it->second += reader.DstsAt(s).size();
      }
    }
    chunk.num_edges = chunk_edges;
  }
  for (const VertexId s : srcs) pg_->out_degree[s] = counts[s];
  uint64_t part_edges = 0;
  for (const EdgeChunkInfo& chunk : part.chunks) {
    part_edges += chunk.num_edges;
  }
  part.num_edges = part_edges;
  uint64_t total = 0;
  for (const MachinePartition& mp : pg_->machines) total += mp.num_edges;
  pg_->num_edges = total;
  return Status::OK();
}

Status DynamicGraph::Recover(ApplyStats* stats) {
  ApplyStats local;
  if (stats == nullptr) stats = &local;
  const int p = static_cast<int>(pg_->machines.size());
  uint64_t max_epoch = pg_->mutation_epoch;
  uint64_t replayed_batches = 0;

  for (int m = 0; m < p; ++m) {
    Machine* machine = cluster_->machine(m);
    if (!machine->alive()) return Status::MachineLost(m, -1);
    // Model the kill's volatile loss: un-flushed dirty frames are gone.
    machine->buffer_pool()->DropAll();

    TGPP_ASSIGN_OR_RETURN(WalContents wal, wals_[m]->Read());
    if (wal.max_epoch > max_epoch) max_epoch = wal.max_epoch;
    if (wal.delta_pages.empty() && wal.uncommitted.empty()) continue;

    MachinePartition& part = pg_->machines[m];
    TGPP_ASSIGN_OR_RETURN(
        PageFile file,
        PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));

    // Rebuild delta-page lists from the log (idempotent union; pages the
    // file does not actually contain — a crash before AppendPage finished
    // — are skipped and replay re-allocates them).
    for (const WalDeltaPage& dp : wal.delta_pages) {
      if (dp.chunk_ordinal >= part.chunks.size()) continue;
      if (dp.page_no >= file.num_pages()) continue;
      std::vector<uint64_t>& list =
          part.chunks[dp.chunk_ordinal].delta_pages;
      if (std::find(list.begin(), list.end(), dp.page_no) == list.end()) {
        list.push_back(dp.page_no);
      }
    }
    // Keep the page index dense (orphan pages get never-matching dummy
    // entries) and conservative for delta pages.
    while (part.page_index.size() < file.num_pages()) {
      part.page_index.push_back(
          {part.page_index.size(), kInvalidVertex, 0});
    }
    for (const EdgeChunkInfo& chunk : part.chunks) {
      for (const uint64_t page_no : chunk.delta_pages) {
        PageIndexEntry& entry = part.page_index[page_no];
        entry.src_min = chunk.src_range.begin;
        entry.src_max =
            chunk.src_range.end > 0 ? chunk.src_range.end - 1 : 0;
      }
    }

    // Replay uncommitted batches. Metadata increments are NOT trusted
    // here — the kill may have landed between a page write and its
    // metadata bump — so degrees are recounted from disk afterwards.
    std::unordered_set<VertexId> touched;
    uint64_t machine_epoch = pg_->mutation_epoch;
    for (const auto& [epoch, muts] : wal.uncommitted) {
      TGPP_RETURN_IF_ERROR(ApplyMachine(m, epoch, muts,
                                        /*count_metadata=*/false, stats,
                                        &touched));
      if (epoch > machine_epoch) machine_epoch = epoch;
      ++replayed_batches;
    }
    if (!touched.empty()) {
      TGPP_RETURN_IF_ERROR(RecountDegrees(m, touched));
    }
    if (!wal.uncommitted.empty()) {
      TGPP_RETURN_IF_ERROR(CommitMachine(m, machine_epoch, stats));
    }
  }

  pg_->mutation_epoch = max_epoch;
  stats->epoch = max_epoch;
  std::sort(stats->affected.begin(), stats->affected.end());
  stats->affected.erase(
      std::unique(stats->affected.begin(), stats->affected.end()),
      stats->affected.end());
  wal_bytes_.Add(stats->wal_bytes);
  obs::EmitEvent(obs::EventType::kWalReplayed, 0, -1, -1, nullptr, "epoch",
                 max_epoch, "batches", replayed_batches, "affected",
                 stats->affected.size());
  return Status::OK();
}

}  // namespace tgpp::dyn
