// UpdateBatch: a batch of edge mutations in ORIGINAL vertex-id space —
// the unit of change of the dynamic-graph subsystem (docs/DYNAMIC.md).
//
// Batches are applied atomically with respect to queries: the job service
// runs update jobs exclusively, so every query observes the graph at a
// single epoch boundary. Mutations are idempotent by construction —
// inserting an existing edge or deleting an absent one is a counted no-op
// — which is what makes WAL replay after a mid-batch crash safe.

#ifndef TGPP_DYN_UPDATE_BATCH_H_
#define TGPP_DYN_UPDATE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace tgpp::dyn {

enum class EdgeOp : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

struct EdgeMutation {
  EdgeOp op = EdgeOp::kInsert;
  VertexId src = 0;  // ORIGINAL (pre-renumbering) vertex id
  VertexId dst = 0;  // ORIGINAL vertex id

  bool operator==(const EdgeMutation& o) const {
    return op == o.op && src == o.src && dst == o.dst;
  }
};

struct UpdateBatch {
  std::vector<EdgeMutation> mutations;

  bool empty() const { return mutations.empty(); }
  size_t size() const { return mutations.size(); }
  bool HasDeletes() const {
    for (const EdgeMutation& m : mutations) {
      if (m.op == EdgeOp::kDelete) return true;
    }
    return false;
  }

  void Insert(VertexId src, VertexId dst) {
    mutations.push_back({EdgeOp::kInsert, src, dst});
  }
  void Delete(VertexId src, VertexId dst) {
    mutations.push_back({EdgeOp::kDelete, src, dst});
  }
};

// Per-batch apply outcome; counters feed the dyn.* metrics and the
// `update.applied` event, `affected` seeds the incremental kernels'
// sparse frontier (ORIGINAL ids, sorted, deduplicated).
struct ApplyStats {
  uint64_t inserted = 0;     // edges actually added
  uint64_t deleted = 0;      // edges actually removed
  uint64_t skipped = 0;      // idempotent no-ops (dup insert/absent delete)
  uint64_t delta_pages = 0;  // overflow pages allocated by this batch
  uint64_t wal_bytes = 0;    // WAL bytes appended by this batch
  uint64_t epoch = 0;        // epoch this batch committed as
  std::vector<VertexId> affected;  // endpoints of applied mutations
  // Mutations that actually changed the graph (no-ops excluded), in apply
  // order — the incremental kernels' correction input (dyn/incremental.h).
  std::vector<EdgeMutation> applied;
};

// Wire/CLI text form: "+src:dst" inserts, "-src:dst" deletes; a missing
// sign means insert. Returns kInvalidArgument on malformed input.
inline Result<EdgeMutation> ParseEdgeMutation(const std::string& text) {
  EdgeMutation m;
  size_t pos = 0;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    m.op = text[pos] == '-' ? EdgeOp::kDelete : EdgeOp::kInsert;
    ++pos;
  }
  const size_t colon = text.find(':', pos);
  if (colon == std::string::npos || colon == pos ||
      colon + 1 >= text.size()) {
    return Status::InvalidArgument("bad mutation '" + text +
                                   "' (want [+|-]src:dst)");
  }
  try {
    m.src = std::stoull(text.substr(pos, colon - pos));
    m.dst = std::stoull(text.substr(colon + 1));
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad mutation '" + text +
                                   "' (non-numeric vertex id)");
  }
  return m;
}

inline std::string FormatEdgeMutation(const EdgeMutation& m) {
  return std::string(m.op == EdgeOp::kDelete ? "-" : "+") +
         std::to_string(m.src) + ":" + std::to_string(m.dst);
}

}  // namespace tgpp::dyn

#endif  // TGPP_DYN_UPDATE_BATCH_H_
