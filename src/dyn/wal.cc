#include "dyn/wal.h"

#include <cstring>

#include "core/codec.h"
#include "util/crc32.h"

namespace tgpp::dyn {

namespace {

constexpr size_t kHeaderBytes = 24;

// Serializes the header with the crc slot zeroed; the caller patches the
// crc in afterwards (the crc covers header-with-zero-crc + payload).
void PutHeader(uint8_t* out, WalRecordKind kind, uint64_t epoch,
               uint32_t payload_bytes, uint32_t crc) {
  uint32_t magic = kWalMagic;
  uint32_t k = static_cast<uint32_t>(kind);
  std::memcpy(out + 0, &magic, 4);
  std::memcpy(out + 4, &k, 4);
  std::memcpy(out + 8, &epoch, 8);
  std::memcpy(out + 16, &payload_bytes, 4);
  std::memcpy(out + 20, &crc, 4);
}

uint32_t RecordCrc(const uint8_t* header, const uint8_t* payload,
                   uint32_t payload_bytes) {
  uint8_t scratch[kHeaderBytes];
  std::memcpy(scratch, header, kHeaderBytes);
  std::memset(scratch + 20, 0, 4);  // crc slot participates as zero
  uint32_t crc = Crc32(scratch, kHeaderBytes);
  if (payload_bytes > 0) crc = Crc32(payload, payload_bytes, crc);
  return crc;
}

}  // namespace

Status Wal::AppendRecord(WalRecordKind kind, uint64_t epoch,
                         std::span<const uint8_t> payload,
                         uint64_t* bytes_out) {
  std::vector<uint8_t> buf(kHeaderBytes + payload.size());
  PutHeader(buf.data(), kind, epoch, static_cast<uint32_t>(payload.size()),
            0);
  if (!payload.empty()) {
    std::memcpy(buf.data() + kHeaderBytes, payload.data(), payload.size());
  }
  const uint32_t crc = RecordCrc(
      buf.data(), buf.data() + kHeaderBytes,
      static_cast<uint32_t>(payload.size()));
  std::memcpy(buf.data() + 20, &crc, 4);

  TGPP_RETURN_IF_ERROR(disk_->Touch(file_name_));
  uint64_t offset = 0;
  TGPP_RETURN_IF_ERROR(
      disk_->Append(file_name_, buf.data(), buf.size(), &offset));
  TGPP_RETURN_IF_ERROR(disk_->Sync(file_name_));
  if (bytes_out != nullptr) *bytes_out += buf.size();
  return Status::OK();
}

Status Wal::AppendBatch(uint64_t epoch, std::span<const EdgeMutation> muts,
                        uint64_t* bytes_out) {
  std::vector<uint8_t> payload;
  AppendPod<uint64_t>(&payload, muts.size());
  for (const EdgeMutation& m : muts) {
    AppendPod<uint8_t>(&payload, static_cast<uint8_t>(m.op));
    AppendPod<uint64_t>(&payload, m.src);
    AppendPod<uint64_t>(&payload, m.dst);
  }
  return AppendRecord(WalRecordKind::kBatch, epoch, payload, bytes_out);
}

Status Wal::AppendDeltaPage(uint64_t epoch, const WalDeltaPage& page,
                            uint64_t* bytes_out) {
  std::vector<uint8_t> payload;
  AppendPod<uint32_t>(&payload, page.chunk_ordinal);
  AppendPod<uint64_t>(&payload, page.page_no);
  return AppendRecord(WalRecordKind::kDeltaPage, epoch, payload, bytes_out);
}

Status Wal::AppendCommit(uint64_t epoch, uint64_t* bytes_out) {
  return AppendRecord(WalRecordKind::kCommit, epoch, {}, bytes_out);
}

Result<WalContents> Wal::Read() const {
  WalContents out;
  if (!disk_->Exists(file_name_)) return out;
  TGPP_ASSIGN_OR_RETURN(const uint64_t size, disk_->FileSize(file_name_));
  std::vector<uint8_t> log(size);
  if (size > 0) {
    TGPP_RETURN_IF_ERROR(disk_->Read(file_name_, 0, log.data(), size));
  }

  size_t pos = 0;
  while (pos + kHeaderBytes <= log.size()) {
    const uint8_t* header = log.data() + pos;
    uint32_t magic = 0, kind = 0, payload_bytes = 0, crc = 0;
    uint64_t epoch = 0;
    std::memcpy(&magic, header + 0, 4);
    std::memcpy(&kind, header + 4, 4);
    std::memcpy(&epoch, header + 8, 8);
    std::memcpy(&payload_bytes, header + 16, 4);
    std::memcpy(&crc, header + 20, 4);
    if (magic != kWalMagic ||
        pos + kHeaderBytes + payload_bytes > log.size()) {
      out.torn_tail = true;
      break;
    }
    const uint8_t* payload = header + kHeaderBytes;
    if (RecordCrc(header, payload, payload_bytes) != crc) {
      out.torn_tail = true;
      break;
    }
    pos += kHeaderBytes + payload_bytes;
    if (epoch > out.max_epoch) out.max_epoch = epoch;

    PodReader reader(std::span<const uint8_t>(payload, payload_bytes));
    switch (static_cast<WalRecordKind>(kind)) {
      case WalRecordKind::kBatch: {
        const uint64_t count = reader.Read<uint64_t>();
        std::vector<EdgeMutation> muts;
        muts.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          EdgeMutation m;
          m.op = static_cast<EdgeOp>(reader.Read<uint8_t>());
          m.src = reader.Read<uint64_t>();
          m.dst = reader.Read<uint64_t>();
          muts.push_back(m);
        }
        out.uncommitted.emplace_back(epoch, std::move(muts));
        break;
      }
      case WalRecordKind::kCommit:
        if (epoch > out.committed_epoch) out.committed_epoch = epoch;
        break;
      case WalRecordKind::kDeltaPage: {
        WalDeltaPage page;
        page.chunk_ordinal = reader.Read<uint32_t>();
        page.page_no = reader.Read<uint64_t>();
        out.delta_pages.push_back(page);
        break;
      }
      default:
        // Unknown kind with a valid CRC: written by a newer version.
        // Treat like a torn tail — do not guess at its meaning.
        out.torn_tail = true;
        pos = log.size();
        break;
    }
  }
  out.bytes_scanned = pos;
  // Drop batches that did commit; the remainder is the replay work list.
  std::erase_if(out.uncommitted, [&](const auto& b) {
    return b.first <= out.committed_epoch;
  });
  return out;
}

Status Wal::Truncate() {
  if (!disk_->Exists(file_name_)) return Status::OK();
  return disk_->Truncate(file_name_, 0);
}

}  // namespace tgpp::dyn
