// Per-machine write-ahead log for graph mutations (docs/DYNAMIC.md).
//
// The WAL generalizes the checkpoint machinery to log-replay recovery:
// a batch is durable (appended + fsync'd) on every machine BEFORE any
// page is mutated, so a machine killed mid-apply replays the batch from
// its log on recovery and converges to the same bytes as a fault-free
// run. Log format, one record after another:
//
//   [magic u32][kind u32][epoch u64][payload_bytes u32][crc u32][payload]
//
// The CRC covers the header fields (with the crc slot zeroed) plus the
// payload, so both torn tails and bit rot are detected; scanning stops
// at the first bad record — everything before it is trusted, everything
// after is discarded (the standard ARIES-style torn-tail rule).
//
// Record kinds:
//   kBatch     — the batch's mutations, ORIGINAL vertex ids.
//   kDeltaPage — an overflow delta page was allocated for a chunk
//                (logged right after the page exists on disk, before any
//                record lands in it) so recovery can rebuild the chunk's
//                delta-page list even if the in-memory metadata died.
//   kCommit    — the epoch's pages were flushed; the batch is complete.

#ifndef TGPP_DYN_WAL_H_
#define TGPP_DYN_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dyn/update_batch.h"
#include "storage/disk_device.h"

namespace tgpp::dyn {

inline constexpr const char* kWalFileName = "dyn_wal.log";
inline constexpr uint32_t kWalMagic = 0x57414c31;  // "WAL1"

enum class WalRecordKind : uint32_t {
  kBatch = 1,
  kCommit = 2,
  kDeltaPage = 3,
};

struct WalDeltaPage {
  uint32_t chunk_ordinal = 0;  // index into MachinePartition::chunks
  uint64_t page_no = 0;        // absolute page in the machine's edge file
};

// Everything a recovery pass needs, reconstructed from one machine's log.
struct WalContents {
  uint64_t committed_epoch = 0;  // highest epoch with a kCommit record
  uint64_t max_epoch = 0;        // highest epoch seen at all
  // Batch records newer than committed_epoch, in log order — the replay
  // work list.
  std::vector<std::pair<uint64_t, std::vector<EdgeMutation>>> uncommitted;
  // Every delta-page allocation in log order (committed ones included:
  // the chunk metadata must list them regardless of the batch outcome).
  std::vector<WalDeltaPage> delta_pages;
  uint64_t bytes_scanned = 0;
  bool torn_tail = false;  // a partial/bad record ended the scan
};

// One machine's mutation log. Appends fsync before returning, so a
// record that Append reported success for survives a kill.
class Wal {
 public:
  Wal(DiskDevice* disk, std::string file_name = kWalFileName)
      : disk_(disk), file_name_(std::move(file_name)) {}

  Status AppendBatch(uint64_t epoch, std::span<const EdgeMutation> muts,
                     uint64_t* bytes_out);
  Status AppendDeltaPage(uint64_t epoch, const WalDeltaPage& page,
                         uint64_t* bytes_out);
  Status AppendCommit(uint64_t epoch, uint64_t* bytes_out);

  // Scans the whole log. Missing file = empty contents (not an error).
  Result<WalContents> Read() const;

  // Drops the log (after a full re-checkpoint makes it redundant).
  Status Truncate();

  const std::string& file_name() const { return file_name_; }

 private:
  Status AppendRecord(WalRecordKind kind, uint64_t epoch,
                      std::span<const uint8_t> payload, uint64_t* bytes_out);

  DiskDevice* disk_;
  std::string file_name_;
};

}  // namespace tgpp::dyn

#endif  // TGPP_DYN_WAL_H_
