// Incremental recompute kernels for mutated graphs (docs/DYNAMIC.md,
// docs/ALGORITHMS.md).
//
// Each kernel comes as ONE k-walk program with two init modes:
//
//   cold — from-scratch state; running it on the mutated graph IS the
//          full recompute baseline.
//   warm — state of a previous converged run plus per-batch corrections;
//          only vertices whose local invariant broke start active, so the
//          first frontier is the sparse set of affected vertices and work
//          is proportional to the mutation's blast radius.
//
// Every gather here is an order-independent combine (integer add, min),
// so a single run's result never depends on schedule or partitioning.
// Whether warm equals cold BIT-FOR-BIT depends on whether the kernel's
// fixed point is unique:
//
//   wcc-inc  — exact (bit-identical) for insert-only batches: labels
//              move monotonically down to the unique min-label fixed
//              point. Deletes can split a component, which
//              min-propagation cannot undo: callers must cold-run when
//              the batch HasDeletes().
//   sssp-inc — exact (bit-identical) for insert-only batches: distances
//              move monotonically down to the unique shortest-distance
//              fixed point. Same cold fallback on deletes.
//   pr-inc   — invariant-exact but quantization-bounded, for inserts
//              AND deletes: the warm run converges to a true quiescent
//              state of the same integer equations, but floor division
//              makes that fixed point non-unique (see the kernel), so
//              warm can settle a few truncation units away from the
//              cold result rather than on the same bytes (tests bound
//              the rank gap at kPrIncScale/1000, i.e. 0.1% of a unit
//              rank; observed gaps are ~1e-5 relative). Callers needing
//              a bit-exact PR digest must cold-run.

#ifndef TGPP_DYN_INCREMENTAL_H_
#define TGPP_DYN_INCREMENTAL_H_

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "core/app.h"
#include "dyn/update_batch.h"
#include "partition/partitioner.h"

namespace tgpp::dyn {

// Affected ORIGINAL ids → the NEW-id seed set for warm inits.
inline std::unordered_set<VertexId> SeedsFromAffected(
    const PartitionedGraph* pg, std::span<const VertexId> affected_old) {
  std::unordered_set<VertexId> seeds;
  seeds.reserve(affected_old.size());
  for (const VertexId old_id : affected_old) {
    seeds.insert(pg->old_to_new[old_id]);
  }
  return seeds;
}

// --- incremental PageRank (integer delta formulation) ---------------------
//
// Fixed-point integer PageRank: rank ≈ kPrIncScale * pagerank. Instead of
// recomputing rank from all in-contributions each round (the classic
// power iteration), every vertex accumulates a running sum of
// contribution DELTAS and broadcasts only when its own contribution
// changes:
//
//   contrib(v) = (rank[v] * 85 / 100) / deg[v]      (integer division)
//   rank[v]    = kPrIncBase + sum[v]
//   invariant  : sum[v] == Σ announced[u] over current in-edges (u, v)
//   quiescence : contrib(v) == announced[v] for all v
//
// Deltas are integers and gather is +, so the converged state does not
// depend on arrival order or schedule. A mutated edge (u, v) breaks the
// invariant at v by exactly ±announced[u] (v has accumulated a
// contribution it should not have, or is missing one) and changes
// deg[u] so u's contribution re-divides; the warm init injects the
// ±announced[u] correction at v and activates any vertex whose
// contribution no longer matches what it announced.
//
// Why warm is quantization-bounded rather than bit-identical: the
// quiescent states are the fixed points of the monotone integer map
// F(announced)[v] = contrib(base + Σ_in announced[u]), and floor
// division makes that fixed point NON-unique — adjacent lattice points
// one truncation unit apart can both be self-consistent (hysteresis).
// The cold run ascends from ⊥ and reaches the LEAST fixed point. ANY
// mutation can leave the corrected warm state above the new least fixed
// point — a delete removes a contribution downstream ranks had already
// compounded, and even a pure insert raises deg[u], LOWERING u's
// per-edge share — and a descent from above may stall on a higher fixed
// point (observed: announced off by 1-2, ranks by the in-degree's
// worth of truncation units). The warm result is still a genuine fixed
// point of the same equations with the sum invariant holding exactly;
// only the low-order truncation bits are path-dependent, and tests
// bound the rank gap at kPrIncScale/1000.

inline constexpr int64_t kPrIncScale = 1'000'000;
inline constexpr int64_t kPrIncBase = kPrIncScale * 15 / 100;

struct PrIncAttr {
  int64_t rank;       // kPrIncBase + sum
  int64_t sum;        // accumulated in-contributions
  int64_t announced;  // contribution out-neighbors have accumulated
  uint64_t deg;       // out-degree at init time
  uint64_t active;    // scattered this superstep (mirrors the frontier)
};

inline int64_t PrIncContrib(int64_t rank, uint64_t deg) {
  if (deg == 0) return 0;
  return (rank * 85 / 100) / static_cast<int64_t>(deg);
}

// Per-vertex correction terms (NEW ids) for a warm start, from the
// batch's actually-applied mutations (ApplyStats::applied — skipped
// no-ops must not inject) and the previous converged state.
inline std::unordered_map<VertexId, int64_t> BuildPrInjections(
    const PartitionedGraph* pg, std::span<const EdgeMutation> applied,
    const std::vector<PrIncAttr>& warm_by_old_id) {
  std::unordered_map<VertexId, int64_t> inject;
  for (const EdgeMutation& m : applied) {
    const int64_t a = warm_by_old_id[m.src].announced;
    if (a == 0) continue;
    inject[pg->old_to_new[m.dst]] += m.op == EdgeOp::kInsert ? a : -a;
  }
  return inject;
}

// `warm_by_old_id` null → cold init (the full-recompute baseline);
// non-null → warm init with `inject` corrections (BuildPrInjections).
inline KWalkApp<PrIncAttr, int64_t> MakePageRankIncApp(
    const PartitionedGraph* pg,
    const std::vector<PrIncAttr>* warm_by_old_id = nullptr,
    std::unordered_map<VertexId, int64_t> inject = {}) {
  KWalkApp<PrIncAttr, int64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // sums accumulate everywhere
  app.max_supersteps = 1000;  // damping converges in ~90 integer rounds

  if (warm_by_old_id == nullptr) {
    TGPP_CHECK(inject.empty()) << "injections require a warm state";
    app.init = [pg](VertexId vid, PrIncAttr& attr) {
      attr.rank = kPrIncBase;  // sum starts empty
      attr.sum = 0;
      attr.announced = 0;
      attr.deg = pg->out_degree[vid];
      attr.active = PrIncContrib(attr.rank, attr.deg) != attr.announced;
      return attr.active != 0;
    };
  } else {
    app.init = [pg, warm_by_old_id,
                inject = std::move(inject)](VertexId vid, PrIncAttr& attr) {
      attr = (*warm_by_old_id)[pg->new_to_old[vid]];
      attr.deg = pg->out_degree[vid];  // mutations changed degrees
      auto it = inject.find(vid);
      if (it != inject.end()) {
        attr.sum += it->second;
        attr.rank = kPrIncBase + attr.sum;
      }
      attr.active = PrIncContrib(attr.rank, attr.deg) != attr.announced;
      return attr.active != 0;
    };
  }

  app.adj_scatter[1] = [](ScatterContext<PrIncAttr, int64_t>& ctx, VertexId,
                          const PrIncAttr& attr,
                          std::span<const VertexId> adj) {
    const int64_t delta =
        PrIncContrib(attr.rank, attr.deg) - attr.announced;
    if (delta == 0) return;
    for (VertexId v : adj) ctx.Update(v, delta);
  };
  app.vertex_gather = [](int64_t& acc, const int64_t& in) { acc += in; };
  app.vertex_apply = [](VertexId, PrIncAttr& attr, const int64_t* update) {
    if (attr.active != 0) {
      // This vertex scattered with the pre-apply rank: its neighbors now
      // hold exactly this contribution.
      attr.announced = PrIncContrib(attr.rank, attr.deg);
    }
    if (update != nullptr) attr.sum += *update;
    attr.rank = kPrIncBase + attr.sum;
    attr.active = PrIncContrib(attr.rank, attr.deg) != attr.announced;
    return attr.active != 0;
  };
  return app;
}

// --- incremental WCC (warm min-label propagation) -------------------------
//
// Same update rule as MakeWccApp (algos/wcc.h): labels are ORIGINAL ids,
// each component converges to its minimum. After an insert-only batch an
// old component is a subset of its new component, so the new minimum is
// already present among the warm labels; seeding the inserted edges'
// endpoints lets it propagate across the new edges. Exact for inserts;
// callers MUST cold-run on batches with deletes (splits are invisible to
// min-propagation).

struct WccIncAttr {
  uint64_t label;
};

// `warm_labels_by_old_id` empty → cold init (equivalent to MakeWccApp).
inline KWalkApp<WccIncAttr, uint64_t> MakeWccIncApp(
    const PartitionedGraph* pg,
    std::vector<uint64_t> warm_labels_by_old_id = {},
    std::unordered_set<VertexId> seeds_new = {}) {
  KWalkApp<WccIncAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  if (warm_labels_by_old_id.empty()) {
    app.init = [pg](VertexId vid, WccIncAttr& attr) {
      attr.label = pg->new_to_old[vid];
      return true;
    };
  } else {
    app.init = [pg, warm = std::move(warm_labels_by_old_id),
                seeds = std::move(seeds_new)](VertexId vid,
                                              WccIncAttr& attr) {
      attr.label = warm[pg->new_to_old[vid]];
      return seeds.count(vid) > 0;
    };
  }

  app.adj_scatter[1] = [](ScatterContext<WccIncAttr, uint64_t>& ctx,
                          VertexId, const WccIncAttr& attr,
                          std::span<const VertexId> adj) {
    for (VertexId v : adj) ctx.Update(v, attr.label);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, WccIncAttr& attr,
                        const uint64_t* update) {
    if (update != nullptr && *update < attr.label) {
      attr.label = *update;
      return true;
    }
    return false;
  };
  return app;
}

// --- incremental SSSP (warm relaxation) -----------------------------------
//
// Same unit-weight relaxation as MakeSsspApp (algos/sssp.h). Warm
// distances are valid path lengths in the mutated graph (inserts keep
// every old path), i.e. upper bounds on the new distances; seeding the
// inserted edges' endpoints restores the relaxation invariant ("any edge
// that can relax has an active tail") and cascading improvements do the
// rest. The fixed point is the true distance — unique — so warm and cold
// runs are bit-identical. Exact for inserts; cold-run on deletes.

struct SsspIncAttr {
  uint64_t dist;
};

inline constexpr uint64_t kSsspIncInfinite = ~0ull;

// `warm_dists_by_old_id` empty → cold init (equivalent to MakeSsspApp).
inline KWalkApp<SsspIncAttr, uint64_t> MakeSsspIncApp(
    const PartitionedGraph* pg, VertexId source_old_id,
    std::vector<uint64_t> warm_dists_by_old_id = {},
    std::unordered_set<VertexId> seeds_new = {}) {
  const VertexId source = pg->old_to_new[source_old_id];
  KWalkApp<SsspIncAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  if (warm_dists_by_old_id.empty()) {
    app.init = [source](VertexId vid, SsspIncAttr& attr) {
      attr.dist = (vid == source) ? 0 : kSsspIncInfinite;
      return vid == source;
    };
  } else {
    app.init = [pg, warm = std::move(warm_dists_by_old_id),
                seeds = std::move(seeds_new)](VertexId vid,
                                              SsspIncAttr& attr) {
      attr.dist = warm[pg->new_to_old[vid]];
      return seeds.count(vid) > 0 && attr.dist != kSsspIncInfinite;
    };
  }

  app.adj_scatter[1] = [](ScatterContext<SsspIncAttr, uint64_t>& ctx,
                          VertexId, const SsspIncAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.dist == kSsspIncInfinite) return;
    const uint64_t candidate = attr.dist + 1;
    for (VertexId v : adj) ctx.Update(v, candidate);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, SsspIncAttr& attr,
                        const uint64_t* update) {
    if (update != nullptr && *update < attr.dist) {
      attr.dist = *update;
      return true;
    }
    return false;
  };
  return app;
}

}  // namespace tgpp::dyn

#endif  // TGPP_DYN_INCREMENTAL_H_
