// Named dataset stand-ins for the paper's real-world graphs.
//
// The paper evaluates on Twitter (TWT), YahooWeb (YH), ClueWeb09 (CW09) and
// ClueWeb12 (CW12) — 1.4 B to 66.8 B edges. Those corpora are not available
// here, so each named dataset is a deterministic RMAT graph whose *relative*
// size ordering and average degree match the original (Table 1), scaled by
// ~2^13. That preserves what the evaluation actually depends on: which
// graphs fit in the (correspondingly scaled) memory budget, the ordering of
// graph sizes, and degree skew.

#ifndef TGPP_GRAPH_DATASETS_H_
#define TGPP_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/edge_list.h"

namespace tgpp {

struct DatasetSpec {
  std::string name;        // e.g. "TWT-S"
  std::string paper_name;  // e.g. "Twitter (41.6M V, 1.37B E)"
  int vertex_scale;        // |V| = 2^vertex_scale
  uint64_t num_edges;
  uint64_t seed;
};

// TWT-S, YH-S, CW09-S, CW12-S in ascending size order.
const std::vector<DatasetSpec>& RealGraphStandIns();

// Finds a spec by name (e.g. "YH-S"); nullptr if unknown.
const DatasetSpec* FindDataset(const std::string& name);

// HL-S: stand-in for the appendix's hyperlink graph (3.3B V, 119B E) —
// larger than every graph in RealGraphStandIns(), used by the
// larger-memory experiments (Fig 20).
const DatasetSpec& HyperlinkStandIn();

// Generates the dataset (deterministic).
EdgeList GenerateDataset(const DatasetSpec& spec);

}  // namespace tgpp

#endif  // TGPP_GRAPH_DATASETS_H_
