#include "graph/edge_list.h"

#include <algorithm>
#include <cstdio>

namespace tgpp {

void RemoveSelfLoops(EdgeList* graph) {
  auto& edges = graph->edges;
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.src == e.dst; }),
              edges.end());
}

void DeduplicateEdges(EdgeList* graph) {
  auto& edges = graph->edges;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

void MakeUndirected(EdgeList* graph) {
  const size_t n = graph->edges.size();
  graph->edges.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    const Edge e = graph->edges[i];
    graph->edges.push_back(Edge{e.dst, e.src});
  }
  DeduplicateEdges(graph);
}

Status SaveEdgeList(const EdgeList& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint64_t header[2] = {graph.num_vertices, graph.num_edges()};
  bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
  if (ok && !graph.edges.empty()) {
    ok = std::fwrite(graph.edges.data(), sizeof(Edge), graph.edges.size(),
                     f) == graph.edges.size();
  }
  ok = (std::fclose(f) == 0) && ok;
  return ok ? Status::OK() : Status::IOError("short write to " + path);
}

Result<EdgeList> LoadEdgeList(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t header[2];
  if (std::fread(header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("truncated edge list header in " + path);
  }
  EdgeList graph;
  graph.num_vertices = header[0];
  graph.edges.resize(header[1]);
  if (header[1] > 0 &&
      std::fread(graph.edges.data(), sizeof(Edge), header[1], f) !=
          header[1]) {
    std::fclose(f);
    return Status::Corruption("truncated edge data in " + path);
  }
  std::fclose(f);
  return graph;
}

}  // namespace tgpp
