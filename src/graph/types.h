// Basic graph types shared across the library.
//
// Vertex IDs are 64-bit, matching the paper's evaluation setup (§5.1:
// "we modify HybridGraph, Pregel+, and Gemini so that they use the 64-bit
// vertex id representation").

#ifndef TGPP_GRAPH_TYPES_H_
#define TGPP_GRAPH_TYPES_H_

#include <cstdint>

namespace tgpp {

using VertexId = uint64_t;

inline constexpr VertexId kInvalidVertex = ~0ull;

struct Edge {
  VertexId src;
  VertexId dst;

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst;
  }
  bool operator<(const Edge& o) const {
    return src != o.src ? src < o.src : dst < o.dst;
  }
};

// A half-open range of vertex IDs [begin, end).
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;

  uint64_t size() const { return end - begin; }
  bool Contains(VertexId v) const { return v >= begin && v < end; }
  bool operator==(const VertexRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

}  // namespace tgpp

#endif  // TGPP_GRAPH_TYPES_H_
