// Compressed sparse row adjacency structure.
//
// Used by the in-memory baseline systems (Gemini-like, Pregel+-like) and by
// the single-threaded reference implementations that tests validate
// against. The NWSM engine itself never builds a global CSR — that is the
// point of the windowed streaming model.

#ifndef TGPP_GRAPH_CSR_H_
#define TGPP_GRAPH_CSR_H_

#include <functional>
#include <span>
#include <vector>

#include "graph/edge_list.h"

namespace tgpp {

class Csr {
 public:
  Csr() = default;

  // Builds out-neighbor CSR. If `sort_neighbors` is set, each adjacency
  // list is sorted ascending (required for intersection-based queries).
  static Csr Build(const EdgeList& graph, bool sort_neighbors = false);

  // Builds in-neighbor CSR (neighbors(v) = sources of edges into v).
  static Csr BuildTransposed(const EdgeList& graph,
                             bool sort_neighbors = false);

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return neighbors_.size(); }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  uint64_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  uint64_t size_bytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(VertexId);
  }

 private:
  static Csr BuildImpl(const EdgeList& graph, bool transposed,
                       bool sort_neighbors);

  uint64_t num_vertices_ = 0;
  std::vector<uint64_t> offsets_;   // size num_vertices_ + 1
  std::vector<VertexId> neighbors_;
};

// Number of elements in the intersection of two ascending-sorted lists.
// Uses galloping when the lengths are very unbalanced — the degree-ordered
// IDs produced by BBP make this the hot loop of TC/LCC (paper §3).
uint64_t SortedIntersectionCount(std::span<const VertexId> a,
                                 std::span<const VertexId> b);

// Appends the intersection elements to `out`.
void SortedIntersection(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>* out);

// Intersection restricted to elements strictly greater than `min_exclusive`
// — the degree-order partial-order filter of triangle enumeration.
uint64_t SortedIntersectionCountAbove(std::span<const VertexId> a,
                                      std::span<const VertexId> b,
                                      VertexId min_exclusive);

// Invokes fn(w) for every common element w > min_exclusive.
void ForEachCommonAbove(std::span<const VertexId> a,
                        std::span<const VertexId> b, VertexId min_exclusive,
                        const std::function<void(VertexId)>& fn);

}  // namespace tgpp

#endif  // TGPP_GRAPH_CSR_H_
