#include "graph/degree.h"

#include <algorithm>

namespace tgpp {

std::vector<uint64_t> ComputeOutDegrees(const EdgeList& graph) {
  std::vector<uint64_t> degrees(graph.num_vertices, 0);
  for (const Edge& e : graph.edges) ++degrees[e.src];
  return degrees;
}

std::vector<uint64_t> ComputeInDegrees(const EdgeList& graph) {
  std::vector<uint64_t> degrees(graph.num_vertices, 0);
  for (const Edge& e : graph.edges) ++degrees[e.dst];
  return degrees;
}

std::vector<uint64_t> ComputeTotalDegrees(const EdgeList& graph) {
  std::vector<uint64_t> degrees(graph.num_vertices, 0);
  for (const Edge& e : graph.edges) {
    ++degrees[e.src];
    ++degrees[e.dst];
  }
  return degrees;
}

DegreeStats ComputeDegreeStats(const EdgeList& graph) {
  DegreeStats stats;
  if (graph.num_vertices == 0) return stats;
  std::vector<uint64_t> degrees = ComputeOutDegrees(graph);
  std::vector<uint64_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  stats.max_degree = sorted.front();
  stats.mean_degree =
      static_cast<double>(graph.num_edges()) / graph.num_vertices;
  const size_t top = std::max<size_t>(1, sorted.size() / 100);
  uint64_t top_edges = 0;
  for (size_t i = 0; i < top; ++i) top_edges += sorted[i];
  stats.top1pct_edge_share =
      graph.num_edges() == 0
          ? 0
          : static_cast<double>(top_edges) / graph.num_edges();
  return stats;
}

}  // namespace tgpp
