#include "graph/csr.h"

#include <algorithm>

#include "common/logging.h"

namespace tgpp {

Csr Csr::BuildImpl(const EdgeList& graph, bool transposed,
                   bool sort_neighbors) {
  struct Access {
    static VertexId Src(const Edge& e, bool t) { return t ? e.dst : e.src; }
    static VertexId Dst(const Edge& e, bool t) { return t ? e.src : e.dst; }
  };
  const uint64_t n = graph.num_vertices;
  std::vector<uint64_t> offsets(n + 1, 0);
  for (const Edge& e : graph.edges) {
    ++offsets[Access::Src(e, transposed) + 1];
  }
  for (uint64_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> neighbors(graph.edges.size());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : graph.edges) {
    neighbors[cursor[Access::Src(e, transposed)]++] =
        Access::Dst(e, transposed);
  }
  if (sort_neighbors) {
    for (uint64_t v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + offsets[v],
                neighbors.begin() + offsets[v + 1]);
    }
  }
  Csr csr;
  csr.num_vertices_ = n;
  csr.offsets_ = std::move(offsets);
  csr.neighbors_ = std::move(neighbors);
  return csr;
}

Csr Csr::Build(const EdgeList& graph, bool sort_neighbors) {
  return BuildImpl(graph, /*transposed=*/false, sort_neighbors);
}

Csr Csr::BuildTransposed(const EdgeList& graph, bool sort_neighbors) {
  return BuildImpl(graph, /*transposed=*/true, sort_neighbors);
}

namespace {
// Galloping search: first index in [lo, a.size()) with a[i] >= key.
size_t GallopLowerBound(std::span<const VertexId> a, size_t lo,
                        VertexId key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < a.size() && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, a.size());
  return static_cast<size_t>(
      std::lower_bound(a.begin() + lo, a.begin() + hi, key) - a.begin());
}

template <typename Emit>
void IntersectImpl(std::span<const VertexId> a, std::span<const VertexId> b,
                   Emit emit) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  if (b.size() / (a.size() + 1) >= 8) {
    // Very unbalanced: gallop through the long list.
    size_t j = 0;
    for (VertexId x : a) {
      j = GallopLowerBound(b, j, x);
      if (j == b.size()) break;
      if (b[j] == x) {
        emit(x);
        ++j;
      }
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
}
}  // namespace

uint64_t SortedIntersectionCount(std::span<const VertexId> a,
                                 std::span<const VertexId> b) {
  uint64_t count = 0;
  IntersectImpl(a, b, [&count](VertexId) { ++count; });
  return count;
}

void SortedIntersection(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>* out) {
  IntersectImpl(a, b, [out](VertexId v) { out->push_back(v); });
}

namespace {
std::span<const VertexId> SuffixAbove(std::span<const VertexId> s,
                                      VertexId min_exclusive) {
  auto it = std::upper_bound(s.begin(), s.end(), min_exclusive);
  return s.subspan(static_cast<size_t>(it - s.begin()));
}
}  // namespace

uint64_t SortedIntersectionCountAbove(std::span<const VertexId> a,
                                      std::span<const VertexId> b,
                                      VertexId min_exclusive) {
  return SortedIntersectionCount(SuffixAbove(a, min_exclusive),
                                 SuffixAbove(b, min_exclusive));
}

void ForEachCommonAbove(std::span<const VertexId> a,
                        std::span<const VertexId> b, VertexId min_exclusive,
                        const std::function<void(VertexId)>& fn) {
  IntersectImpl(SuffixAbove(a, min_exclusive), SuffixAbove(b, min_exclusive),
                [&fn](VertexId v) { fn(v); });
}

}  // namespace tgpp
