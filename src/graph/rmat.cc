#include "graph/rmat.h"

#include "common/logging.h"
#include "util/rng.h"

namespace tgpp {

EdgeList GenerateRmat(const RmatParams& params) {
  TGPP_CHECK(params.vertex_scale >= 1 && params.vertex_scale < 63);
  const double a = params.a, b = params.b, c = params.c;
  TGPP_CHECK(a + b + c < 1.0) << "RMAT quadrant probabilities must sum < 1";

  EdgeList graph;
  graph.num_vertices = 1ull << params.vertex_scale;
  graph.edges.reserve(params.num_edges);

  Xoshiro256 rng(params.seed);
  for (uint64_t i = 0; i < params.num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = params.vertex_scale - 1; level >= 0; --level) {
      // Perturb quadrant probabilities slightly per level (standard RMAT
      // noise keeps the degree distribution smooth).
      const double noise = 0.9 + 0.2 * rng.NextDouble();
      const double an = a * noise;
      const double bn = b * noise;
      const double cn = c * noise;
      const double norm = an + bn + cn + (1.0 - a - b - c);
      const double r = rng.NextDouble() * norm;
      if (r < an) {
        // top-left quadrant: no bits set
      } else if (r < an + bn) {
        dst |= 1ull << level;
      } else if (r < an + bn + cn) {
        src |= 1ull << level;
      } else {
        src |= 1ull << level;
        dst |= 1ull << level;
      }
    }
    if (params.remove_self_loops && src == dst) {
      --i;  // resample
      continue;
    }
    graph.edges.push_back(Edge{src, dst});
  }
  if (params.deduplicate) DeduplicateEdges(&graph);
  return graph;
}

EdgeList GenerateRmatX(int x, uint64_t seed) {
  TGPP_CHECK(x >= 5) << "RMAT_X needs X >= 5";
  RmatParams params;
  params.vertex_scale = x - 4;
  params.num_edges = 1ull << x;
  params.seed = seed;
  return GenerateRmat(params);
}

}  // namespace tgpp
