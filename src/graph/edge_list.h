// EdgeList: an in-memory edge list with binary (de)serialization and the
// usual cleanup helpers. This is the interchange format between the
// generator, the partitioners, and the reference implementations.

#ifndef TGPP_GRAPH_EDGE_LIST_H_
#define TGPP_GRAPH_EDGE_LIST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace tgpp {

struct EdgeList {
  uint64_t num_vertices = 0;
  std::vector<Edge> edges;

  uint64_t num_edges() const { return edges.size(); }
  uint64_t size_bytes() const {
    return edges.size() * sizeof(Edge) + sizeof(uint64_t);
  }
};

// Removes u->u edges in place.
void RemoveSelfLoops(EdgeList* graph);

// Sorts and removes duplicate edges in place.
void DeduplicateEdges(EdgeList* graph);

// Adds the reverse of every edge and deduplicates; used to express
// undirected graphs as paired directed edges (paper §2).
void MakeUndirected(EdgeList* graph);

// Binary round-trip: [num_vertices:u64][num_edges:u64][edges...].
Status SaveEdgeList(const EdgeList& graph, const std::string& path);
Result<EdgeList> LoadEdgeList(const std::string& path);

}  // namespace tgpp

#endif  // TGPP_GRAPH_EDGE_LIST_H_
