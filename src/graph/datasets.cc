#include "graph/datasets.h"

#include "graph/rmat.h"

namespace tgpp {

const std::vector<DatasetSpec>& RealGraphStandIns() {
  // Average degrees follow Table 1: TWT ~33, YH ~4.4, CW09 ~1.5, CW12 ~10.6.
  // Sizes ascend TWT < YH < CW09 < CW12 as in the paper.
  static const std::vector<DatasetSpec>* kSpecs =
      new std::vector<DatasetSpec>{
          {"TWT-S", "Twitter (41.6M V, 1.37B E)", 12, 1ull << 17, 101},
          {"YH-S", "YahooWeb (1.4B V, 6.18B E)", 16, 5ull << 16, 102},
          {"CW09-S", "ClueWeb09 (4.8B V, 7.39B E)", 18, 6ull << 16, 103},
          {"CW12-S", "ClueWeb12 (6.3B V, 66.8B E)", 18, 1ull << 20, 104},
      };
  return *kSpecs;
}

const DatasetSpec& HyperlinkStandIn() {
  static const DatasetSpec* kSpec = new DatasetSpec{
      "HL-S", "Hyperlink (3.3B V, 119B E)", 16, 1ull << 21, 105};
  return *kSpec;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : RealGraphStandIns()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

EdgeList GenerateDataset(const DatasetSpec& spec) {
  RmatParams params;
  params.vertex_scale = spec.vertex_scale;
  params.num_edges = spec.num_edges;
  params.seed = spec.seed;
  return GenerateRmat(params);
}

}  // namespace tgpp
