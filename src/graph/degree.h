// Degree computations over edge lists.

#ifndef TGPP_GRAPH_DEGREE_H_
#define TGPP_GRAPH_DEGREE_H_

#include <vector>

#include "graph/edge_list.h"

namespace tgpp {

std::vector<uint64_t> ComputeOutDegrees(const EdgeList& graph);
std::vector<uint64_t> ComputeInDegrees(const EdgeList& graph);
// out-degree + in-degree per vertex.
std::vector<uint64_t> ComputeTotalDegrees(const EdgeList& graph);

struct DegreeStats {
  uint64_t max_degree = 0;
  double mean_degree = 0;
  // Fraction of edges incident (as source) to the top 1% highest-degree
  // vertices — a skew indicator.
  double top1pct_edge_share = 0;
};

DegreeStats ComputeDegreeStats(const EdgeList& graph);

}  // namespace tgpp

#endif  // TGPP_GRAPH_DEGREE_H_
