// RMAT synthetic graph generator (Chakrabarti, Zhan, Faloutsos; SDM 2004).
//
// Replaces the paper's TrillionG generator (§5.1) at laptop scale; the same
// recursive-quadrant model with the standard skewed parameters yields the
// power-law degree distributions that drive the paper's partitioning and
// memory-pressure effects. Deterministic for a given seed.
//
// The paper denotes by RMAT_X the graph with 2^(X-4) vertices and 2^X
// edges (edge factor 16); GenerateRmatX follows that convention.

#ifndef TGPP_GRAPH_RMAT_H_
#define TGPP_GRAPH_RMAT_H_

#include "graph/edge_list.h"

namespace tgpp {

struct RmatParams {
  int vertex_scale = 16;       // |V| = 2^vertex_scale
  uint64_t num_edges = 1 << 20;
  // Standard RMAT/Graph500 skew.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 42;
  bool remove_self_loops = true;
  bool deduplicate = false;   // the paper's graphs are multigraph-free but
                              // dedup at scale is done by the partitioner
};

EdgeList GenerateRmat(const RmatParams& params);

// RMAT_X per the paper: 2^(X-4) vertices, 2^X edges.
EdgeList GenerateRmatX(int x, uint64_t seed = 42);

}  // namespace tgpp

#endif  // TGPP_GRAPH_RMAT_H_
