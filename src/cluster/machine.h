// Machine: one simulated cluster node.
//
// Owns exactly the resources the paper's physical machine provides: a
// worker thread pool (CPU cores), a disk with a bandwidth profile, a buffer
// pool over that disk, an async I/O service (the disk channel), a memory
// budget (RAM), and the NUMA-node count used for sub-chunk scheduling.

#ifndef TGPP_CLUSTER_MACHINE_H_
#define TGPP_CLUSTER_MACHINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cluster/metrics.h"
#include "obs/metrics.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "util/memory_budget.h"
#include "util/thread_pool.h"

namespace tgpp {

struct MachineConfig {
  int id = 0;
  int num_worker_threads = 2;
  int num_io_threads = 1;
  int numa_nodes = 2;  // r in BBP
  uint64_t memory_budget_bytes = 64ull << 20;
  size_t buffer_pool_frames = 64;  // edge-page buffer (paper A.3)
  DiskProfile disk_profile = kPcieSsdProfile;
  std::string storage_dir;
  // Async I/O submission engine (kAuto → TGPP_IO_BACKEND env → io_uring
  // if available, thread-pool fallback) and its in-flight bound.
  IoBackendKind io_backend = IoBackendKind::kAuto;
  int io_queue_depth = 64;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int id() const { return config_.id; }
  const MachineConfig& config() const { return config_; }

  DiskDevice* disk() { return &disk_; }
  BufferPool* buffer_pool() { return &buffer_pool_; }
  AsyncIoService* io() { return &io_; }
  ThreadPool* workers() { return &workers_; }
  MemoryBudget* budget() { return &budget_; }
  MachineMetrics* metrics() { return &metrics_; }

  int numa_nodes() const { return config_.numa_nodes; }

  // Memory available to windows/buffers after the fixed edge-page buffer is
  // subtracted (paper A.3: "when we calculate q, we subtract the edge
  // buffer size from the total memory size").
  uint64_t WindowMemoryBytes() const;

  // Cooperative fail-stop: a killed machine's superstep loop exits at the
  // next superstep boundary and stops participating in fabric traffic and
  // barriers (the fabric drops its sends separately — see
  // Cluster::KillMachine, which flips both). Revive() brings it back for
  // checkpoint-restore recovery. The flag is all that "dies": disks,
  // buffer pool and threads stay intact, mirroring a process restart on
  // the same host with its storage intact.
  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

 private:
  MachineConfig config_;
  DiskDevice disk_;
  BufferPool buffer_pool_;
  AsyncIoService io_;
  ThreadPool workers_;
  MemoryBudget budget_;
  MachineMetrics metrics_;
  std::atomic<bool> alive_{true};
  // Declared last: destroyed first, so every instrument leaves the global
  // registry before the substrate that owns it is torn down.
  std::vector<obs::Registration> registrations_;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_MACHINE_H_
