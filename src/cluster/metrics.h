// Per-machine and cluster-wide execution metrics.
//
// Mirrors the paper's measurement methodology (§5.1): CPU time via
// clock_gettime on compute threads, disk/network I/O as aggregated bytes,
// and I/O *times* modeled as bytes over aggregate nominal bandwidth.
//
// Since the unified metrics layer landed, MachineMetrics is a named bundle
// of obs/ instruments (registered as "engine.*" per machine) and
// ClusterSnapshot is a *view* computed from registered instruments — there
// is no second bookkeeping system behind it.

#ifndef TGPP_CLUSTER_METRICS_H_
#define TGPP_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tgpp {

// Engine-side counters one machine accumulates during a query. All
// instruments are internally atomic, so compute/I-O/service threads
// update them concurrently without coordination.
class MachineMetrics {
 public:
  obs::Counter scatter_cpu_nanos;
  obs::Counter gather_cpu_nanos;
  obs::Counter apply_cpu_nanos;
  // CPU spent purely enumerating the k-reachable walk set (marking voi and
  // backward traversal) — reported in §5.2.3 as ~0.7% of TC time.
  obs::Counter enumeration_cpu_nanos;

  obs::Counter updates_generated;
  obs::Counter updates_local_gathered;
  obs::Counter updates_sent;
  obs::Counter updates_spilled;

  // Work-efficient frontier subsystem (algos/frontier.h): vertex windows
  // scanned sparsely (point lookups) vs. densely (full edge stream), and
  // pull-superstep records skipped by the claimed/pull_done early exits.
  obs::Counter frontier_sparse_windows;
  obs::Counter frontier_dense_windows;
  obs::Counter pull_records_skipped;

  // Frontier size this machine contributed at the current superstep.
  obs::Gauge active_vertices;
  // Wall-clock duration of checkpoint writes, in nanoseconds.
  obs::LatencyHistogram checkpoint_ns;

  // Machine-failure recoveries completed (checkpoint restore after a
  // MachineLost) and supersteps re-executed because of them. Incremented
  // on machine 0 only — recovery is a cluster-wide event, attributed to
  // the coordinator.
  obs::Counter recoveries;
  obs::Counter recovery_replay_supersteps;

  void Reset() {
    scatter_cpu_nanos.Reset();
    gather_cpu_nanos.Reset();
    apply_cpu_nanos.Reset();
    enumeration_cpu_nanos.Reset();
    updates_generated.Reset();
    updates_local_gathered.Reset();
    updates_sent.Reset();
    updates_spilled.Reset();
    frontier_sparse_windows.Reset();
    frontier_dense_windows.Reset();
    pull_records_skipped.Reset();
    active_vertices.Reset();
    checkpoint_ns.Reset();
    recoveries.Reset();
    recovery_replay_supersteps.Reset();
  }

  double TotalCpuSeconds() const {
    return 1e-9 * static_cast<double>(scatter_cpu_nanos.value() +
                                      gather_cpu_nanos.value() +
                                      apply_cpu_nanos.value());
  }

  // Registers all instruments under "engine.*" for `machine`, appending
  // the RAII handles to `out` (names already taken are skipped).
  void RegisterMetrics(obs::Registry* registry, int machine,
                       std::vector<obs::Registration>* out);
};

// A cluster-wide snapshot used by benches and the resource sampler.
// Computed by Cluster::Snapshot() from the same registered instruments
// the exporters read, so its numbers agree exactly with --metrics-out.
struct ClusterSnapshot {
  double cpu_seconds = 0;          // summed compute-thread CPU time
  uint64_t disk_bytes = 0;         // read + written, all machines
  uint64_t net_bytes = 0;          // fabric bytes (remote only)
  double disk_io_seconds = 0;      // bytes / aggregate disk bandwidth
  double net_io_seconds = 0;       // bytes / aggregate link bandwidth
  double enumeration_cpu_seconds = 0;

  // Bottleneck-machine views: barrier-synchronized systems are gated by
  // their slowest machine, which is how partitioning imbalance shows up
  // (paper §5.2.2).
  double max_machine_cpu_seconds = 0;
  double max_machine_disk_seconds = 0;

  std::string ToString() const;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_METRICS_H_
