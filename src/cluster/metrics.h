// Per-machine and cluster-wide execution metrics.
//
// Mirrors the paper's measurement methodology (§5.1): CPU time via
// clock_gettime on compute threads, disk/network I/O as aggregated bytes,
// and I/O *times* modeled as bytes over aggregate nominal bandwidth.

#ifndef TGPP_CLUSTER_METRICS_H_
#define TGPP_CLUSTER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tgpp {

// Counters one machine accumulates during a query. All fields are atomic
// so compute/I-O/service threads can update them concurrently.
class MachineMetrics {
 public:
  std::atomic<int64_t> scatter_cpu_nanos{0};
  std::atomic<int64_t> gather_cpu_nanos{0};
  std::atomic<int64_t> apply_cpu_nanos{0};
  // CPU spent purely enumerating the k-reachable walk set (marking voi and
  // backward traversal) — reported in §5.2.3 as ~0.7% of TC time.
  std::atomic<int64_t> enumeration_cpu_nanos{0};

  std::atomic<uint64_t> updates_generated{0};
  std::atomic<uint64_t> updates_local_gathered{0};
  std::atomic<uint64_t> updates_sent{0};
  std::atomic<uint64_t> updates_spilled{0};

  void Reset() {
    scatter_cpu_nanos = 0;
    gather_cpu_nanos = 0;
    apply_cpu_nanos = 0;
    enumeration_cpu_nanos = 0;
    updates_generated = 0;
    updates_local_gathered = 0;
    updates_sent = 0;
    updates_spilled = 0;
  }

  double TotalCpuSeconds() const {
    return 1e-9 * static_cast<double>(scatter_cpu_nanos + gather_cpu_nanos +
                                      apply_cpu_nanos);
  }
};

// A cluster-wide snapshot used by benches and the resource sampler.
struct ClusterSnapshot {
  double cpu_seconds = 0;          // summed compute-thread CPU time
  uint64_t disk_bytes = 0;         // read + written, all machines
  uint64_t net_bytes = 0;          // fabric bytes (remote only)
  double disk_io_seconds = 0;      // bytes / aggregate disk bandwidth
  double net_io_seconds = 0;       // bytes / aggregate link bandwidth
  double enumeration_cpu_seconds = 0;

  // Bottleneck-machine views: barrier-synchronized systems are gated by
  // their slowest machine, which is how partitioning imbalance shows up
  // (paper §5.2.2).
  double max_machine_cpu_seconds = 0;
  double max_machine_disk_seconds = 0;

  std::string ToString() const;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_METRICS_H_
