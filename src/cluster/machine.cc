#include "cluster/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace tgpp {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      disk_(config.storage_dir, config.disk_profile),
      buffer_pool_(config.buffer_pool_frames),
      io_(config.num_io_threads, config.id, config.io_backend,
          static_cast<unsigned>(std::max(1, config.io_queue_depth))),
      workers_(config.num_worker_threads,
               "m" + std::to_string(config.id) + ".workers", config.id),
      budget_(config.memory_budget_bytes) {
  TGPP_CHECK(!config.storage_dir.empty());
  TGPP_CHECK(config.numa_nodes >= 1);
  // Attribute this device's I/O to the machine so `machineN:disk.*`
  // fault rules scope correctly.
  disk_.set_fault_machine(config.id);

  // Publish every substrate's instruments under this machine's label. If
  // another cluster with the same machine ids is alive, its earlier
  // registrations win and ours are skipped (only one cluster exports).
  obs::Registry* registry = &obs::Registry::Global();
  disk_.RegisterMetrics(registry, config.id, &registrations_);
  buffer_pool_.RegisterMetrics(registry, config.id, &registrations_);
  workers_.RegisterMetrics(registry, "threadpool", config.id,
                           &registrations_);
  io_.pool()->RegisterMetrics(registry, "iopool", config.id,
                              &registrations_);
  io_.RegisterMetrics(registry, config.id, &registrations_);
  metrics_.RegisterMetrics(registry, config.id, &registrations_);
}

uint64_t Machine::WindowMemoryBytes() const {
  const uint64_t edge_buffer = config_.buffer_pool_frames * kPageSize;
  if (edge_buffer >= config_.memory_budget_bytes) return 0;
  return config_.memory_budget_bytes - edge_buffer;
}

}  // namespace tgpp
