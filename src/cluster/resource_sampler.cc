#include "cluster/resource_sampler.h"

#include <chrono>

#include "util/timer.h"

namespace tgpp {

ResourceSampler::ResourceSampler(Cluster* cluster, double interval_seconds)
    : cluster_(cluster), interval_seconds_(interval_seconds) {}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start() {
  if (running_.exchange(true)) return;
  samples_.clear();
  thread_ = std::thread([this] { Loop(); });
}

void ResourceSampler::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void ResourceSampler::Loop() {
  const int total_workers = cluster_->num_machines() *
                            cluster_->config().threads_per_machine;
  WallTimer wall;
  int64_t prev_cpu = ProcessCpuTimeNanos();
  uint64_t prev_disk = 0;
  uint64_t prev_net = 0;
  {
    const ClusterSnapshot s = cluster_->Snapshot();
    prev_disk = s.disk_bytes;
    prev_net = s.net_bytes;
  }
  double prev_t = 0;
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds_));
    const double t = wall.Seconds();
    const double dt = t - prev_t;
    const int64_t cpu = ProcessCpuTimeNanos();
    const ClusterSnapshot s = cluster_->Snapshot();
    ResourceSample sample;
    sample.t_seconds = t;
    sample.cpu_utilization =
        dt > 0 ? (1e-9 * static_cast<double>(cpu - prev_cpu)) /
                     (dt * total_workers)
               : 0;
    sample.disk_mbps =
        dt > 0 ? static_cast<double>(s.disk_bytes - prev_disk) / dt / 1e6
               : 0;
    sample.net_mbps =
        dt > 0 ? static_cast<double>(s.net_bytes - prev_net) / dt / 1e6 : 0;
    samples_.push_back(sample);
    prev_t = t;
    prev_cpu = cpu;
    prev_disk = s.disk_bytes;
    prev_net = s.net_bytes;
  }
}

}  // namespace tgpp
