#include "cluster/resource_sampler.h"

#include <chrono>

#include "util/timer.h"

namespace tgpp {

ResourceSampler::ResourceSampler(Cluster* cluster, double interval_seconds)
    : cluster_(cluster), interval_seconds_(interval_seconds) {
  obs::Registry* registry = &obs::Registry::Global();
  obs::TryRegister(registry, &registrations_, "resource.cpu_util_millis", -1,
                   &cpu_utilization_millis_);
  obs::TryRegister(registry, &registrations_, "resource.disk_mbps", -1,
                   &disk_mbps_);
  obs::TryRegister(registry, &registrations_, "resource.net_mbps", -1,
                   &net_mbps_);
  obs::TryRegister(registry, &registrations_, "resource.hit_rate_millis", -1,
                   &buffer_hit_rate_millis_);
}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  samples_.clear();
  thread_ = std::thread([this] { Loop(); });
}

void ResourceSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool ResourceSampler::SleepUntilStopped(double seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return stop_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [this] { return !running_; });
}

void ResourceSampler::Loop() {
  const int total_workers = cluster_->num_machines() *
                            cluster_->config().threads_per_machine;
  WallTimer wall;
  int64_t prev_cpu = ProcessCpuTimeNanos();
  uint64_t prev_disk = 0;
  uint64_t prev_net = 0;
  {
    const ClusterSnapshot s = cluster_->Snapshot();
    prev_disk = s.disk_bytes;
    prev_net = s.net_bytes;
  }
  double prev_t = 0;
  while (!SleepUntilStopped(interval_seconds_)) {
    const double t = wall.Seconds();
    const double dt = t - prev_t;
    const int64_t cpu = ProcessCpuTimeNanos();
    const ClusterSnapshot s = cluster_->Snapshot();
    ResourceSample sample;
    sample.t_seconds = t;
    sample.cpu_utilization =
        dt > 0 ? (1e-9 * static_cast<double>(cpu - prev_cpu)) /
                     (dt * total_workers)
               : 0;
    sample.disk_mbps =
        dt > 0 ? static_cast<double>(s.disk_bytes - prev_disk) / dt / 1e6
               : 0;
    sample.net_mbps =
        dt > 0 ? static_cast<double>(s.net_bytes - prev_net) / dt / 1e6 : 0;
    sample.buffer_hit_rate = cluster_->BufferPoolHitRate();
    samples_.push_back(sample);
    cpu_utilization_millis_.Set(
        static_cast<int64_t>(sample.cpu_utilization * 1000));
    disk_mbps_.Set(static_cast<int64_t>(sample.disk_mbps));
    net_mbps_.Set(static_cast<int64_t>(sample.net_mbps));
    buffer_hit_rate_millis_.Set(
        static_cast<int64_t>(sample.buffer_hit_rate * 1000));
    prev_t = t;
    prev_cpu = cpu;
    prev_disk = s.disk_bytes;
    prev_net = s.net_bytes;
  }
}

}  // namespace tgpp
