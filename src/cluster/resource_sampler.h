// ResourceSampler: periodic sampling of cluster resource usage.
//
// Reproduces the paper's dstat-based monitoring behind Figure 11 (resource
// usage over time during PR): a background thread samples process CPU time
// and the cluster's cumulative disk/network byte counters — all views over
// the obs/ metrics registry — producing a utilization time series. The
// latest sample is also published as "resource.*" gauges so the Prometheus
// exporter shows live utilization alongside the raw counters.

#ifndef TGPP_CLUSTER_RESOURCE_SAMPLER_H_
#define TGPP_CLUSTER_RESOURCE_SAMPLER_H_

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"

namespace tgpp {

struct ResourceSample {
  double t_seconds;        // since Start()
  double cpu_utilization;  // fraction of total worker capacity [0, 1+]
  double disk_mbps;        // MB/s since previous sample
  double net_mbps;         // MB/s since previous sample
  double buffer_hit_rate;  // cumulative buffer-pool hit rate [0, 1]
};

class ResourceSampler {
 public:
  ResourceSampler(Cluster* cluster, double interval_seconds);
  ~ResourceSampler();

  void Start();
  // Returns as soon as the sampling thread has observed the stop request —
  // it does not wait out the current sampling interval (the thread blocks
  // on a condition variable, not a sleep).
  void Stop();

  const std::vector<ResourceSample>& samples() const { return samples_; }

 private:
  void Loop();
  bool SleepUntilStopped(double seconds);  // true = stop requested

  Cluster* cluster_;
  double interval_seconds_;
  std::thread thread_;

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool running_ = false;

  std::vector<ResourceSample> samples_;

  // Live view of the latest sample, exported as "resource.*" gauges
  // (values in millis: 1000 = 100% utilization / 1.0 hit rate; mbps as-is).
  obs::Gauge cpu_utilization_millis_;
  obs::Gauge disk_mbps_;
  obs::Gauge net_mbps_;
  obs::Gauge buffer_hit_rate_millis_;
  std::vector<obs::Registration> registrations_;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_RESOURCE_SAMPLER_H_
