// ResourceSampler: periodic sampling of cluster resource usage.
//
// Reproduces the paper's dstat-based monitoring behind Figure 11 (resource
// usage over time during PR): a background thread samples process CPU time
// and the cluster's cumulative disk/network byte counters, producing a
// utilization time series.

#ifndef TGPP_CLUSTER_RESOURCE_SAMPLER_H_
#define TGPP_CLUSTER_RESOURCE_SAMPLER_H_

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/cluster.h"

namespace tgpp {

struct ResourceSample {
  double t_seconds;        // since Start()
  double cpu_utilization;  // fraction of total worker capacity [0, 1+]
  double disk_mbps;        // MB/s since previous sample
  double net_mbps;         // MB/s since previous sample
};

class ResourceSampler {
 public:
  ResourceSampler(Cluster* cluster, double interval_seconds);
  ~ResourceSampler();

  void Start();
  void Stop();

  const std::vector<ResourceSample>& samples() const { return samples_; }

 private:
  void Loop();

  Cluster* cluster_;
  double interval_seconds_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<ResourceSample> samples_;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_RESOURCE_SAMPLER_H_
