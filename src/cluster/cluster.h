// Cluster: the in-process substitute for the paper's 25-machine testbed
// (§5.1: 25 machines, 32 GB RAM, PCIe SSD or HDD, InfiniBand QDR).
//
// Spins up p Machine objects (each with private disk directory, buffer
// pool, memory budget and worker pool — the per-machine resources that
// §4's memory model budgets against) connected by a Fabric, the stand-in
// for the paper's MPI/TCP transport (A.3). `RunOnAll` executes one
// function per machine on dedicated threads — the body of a distributed
// program, analogous to one MPI rank per machine — and `Barrier()`
// provides the GLOBALBARRIER of Algorithm 1 line 22 that separates the
// scatter/gather phase from apply. `Snapshot()` aggregates the
// per-resource byte/time counters that the paper's decomposed-time
// analysis (§5.2.3, Figures 9-11) is computed from.
//
// RunOnAll tags each machine thread for the execution tracer
// (util/trace.h), so a captured trace shows one track group per
// simulated machine; Barrier() records its wait time as a
// `barrier.wait` span — the visible cost of load imbalance (§5.2.2).

#ifndef TGPP_CLUSTER_CLUSTER_H_
#define TGPP_CLUSTER_CLUSTER_H_

#include <barrier>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "net/fabric.h"

namespace tgpp {

struct ClusterConfig {
  int num_machines = 4;                        // p
  int threads_per_machine = 2;
  int io_threads_per_machine = 1;
  int numa_nodes_per_machine = 2;              // r
  uint64_t memory_budget_bytes = 64ull << 20;  // per machine
  size_t buffer_pool_frames = 64;              // per machine, 64 KB each
  DiskProfile disk_profile = kPcieSsdProfile;
  NetProfile net_profile = kInfinibandQdr;
  std::string root_dir = "/tmp/tgpp_cluster";
  // Per-machine async I/O submission engine (see storage/io_backend.h).
  IoBackendKind io_backend = IoBackendKind::kAuto;
  int io_queue_depth = 64;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_machines() const { return config_.num_machines; }
  Machine* machine(int i) { return machines_[i].get(); }
  Fabric* fabric() { return &fabric_; }

  // Runs fn(machine_id) concurrently on one thread per machine and joins.
  // Returns the first non-OK status (all threads still run to completion) —
  // except that a MachineLost status wins over any other error, so a
  // failure's root cause is never collapsed into a survivor's secondary
  // timeout.
  Status RunOnAll(const std::function<Status(int)>& fn);

  // Fail-stop one machine: flips Machine::Kill() and tells the fabric it
  // is down (sends dropped, heartbeats stop → the monitor declares it
  // lost within the configured timeout). ReviveMachine undoes both;
  // ReviveAllMachines is the recovery path's "replace the dead node".
  void KillMachine(int machine);
  void ReviveMachine(int machine);
  void ReviveAllMachines();

  // Global barrier across machine threads inside RunOnAll. Every machine
  // must call it the same number of times.
  void Barrier();

  // Aggregated cluster metrics (Figures 9/10/13/14 inputs). A pure view
  // over the obs-registered instruments — the same values --metrics-out
  // exports.
  ClusterSnapshot Snapshot() const;

  // Cumulative buffer-pool hit rate across all machines, in [0, 1].
  double BufferPoolHitRate() const;

  // Clears all I/O counters, per-machine metrics and budget usage, and
  // drops unpinned buffer pool frames (the paper drops the OS page cache
  // between preprocessing and measurement).
  void ResetCountersAndCaches();

  // Clears counters only, keeping buffer pool contents warm (used to
  // measure consecutive PageRank iterations separately, Figures 9-11).
  void ResetCounters();

  double AggregateDiskBandwidth() const {
    return config_.disk_profile.aggregate_bandwidth_bytes_per_sec() *
           config_.num_machines;
  }
  double AggregateNetBandwidth() const {
    return config_.net_profile.link_bandwidth_bytes_per_sec *
           config_.num_machines;
  }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Machine>> machines_;
  Fabric fabric_;
  std::barrier<> barrier_;
  // Declared after fabric_: unregisters its link instruments first.
  std::vector<obs::Registration> registrations_;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_CLUSTER_H_
