// Cluster: the in-process substitute for the paper's 25-machine testbed.
//
// Spins up p Machine objects (each with private disk directory, buffer
// pool, memory budget and worker pool) connected by a Fabric. `RunOnAll`
// executes one function per machine on dedicated threads — the body of a
// distributed program — and `Barrier()` provides the paper's GLOBALBARRIER.

#ifndef TGPP_CLUSTER_CLUSTER_H_
#define TGPP_CLUSTER_CLUSTER_H_

#include <barrier>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "net/fabric.h"

namespace tgpp {

struct ClusterConfig {
  int num_machines = 4;                        // p
  int threads_per_machine = 2;
  int io_threads_per_machine = 1;
  int numa_nodes_per_machine = 2;              // r
  uint64_t memory_budget_bytes = 64ull << 20;  // per machine
  size_t buffer_pool_frames = 64;              // per machine, 64 KB each
  DiskProfile disk_profile = kPcieSsdProfile;
  NetProfile net_profile = kInfinibandQdr;
  std::string root_dir = "/tmp/tgpp_cluster";
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_machines() const { return config_.num_machines; }
  Machine* machine(int i) { return machines_[i].get(); }
  Fabric* fabric() { return &fabric_; }

  // Runs fn(machine_id) concurrently on one thread per machine and joins.
  // Returns the first non-OK status (all threads still run to completion).
  Status RunOnAll(const std::function<Status(int)>& fn);

  // Global barrier across machine threads inside RunOnAll. Every machine
  // must call it the same number of times.
  void Barrier();

  // Aggregated cluster metrics (Figures 9/10/13/14 inputs).
  ClusterSnapshot Snapshot() const;

  // Clears all I/O counters, per-machine metrics and budget usage, and
  // drops unpinned buffer pool frames (the paper drops the OS page cache
  // between preprocessing and measurement).
  void ResetCountersAndCaches();

  // Clears counters only, keeping buffer pool contents warm (used to
  // measure consecutive PageRank iterations separately, Figures 9-11).
  void ResetCounters();

  double AggregateDiskBandwidth() const {
    return config_.disk_profile.bandwidth_bytes_per_sec *
           config_.num_machines;
  }
  double AggregateNetBandwidth() const {
    return config_.net_profile.link_bandwidth_bytes_per_sec *
           config_.num_machines;
  }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Machine>> machines_;
  Fabric fabric_;
  std::barrier<> barrier_;
};

}  // namespace tgpp

#endif  // TGPP_CLUSTER_CLUSTER_H_
