#include "cluster/metrics.h"

#include <sstream>

namespace tgpp {

void MachineMetrics::RegisterMetrics(obs::Registry* registry, int machine,
                                     std::vector<obs::Registration>* out) {
  obs::TryRegister(registry, out, "engine.scatter_cpu_ns", machine,
                   &scatter_cpu_nanos);
  obs::TryRegister(registry, out, "engine.gather_cpu_ns", machine,
                   &gather_cpu_nanos);
  obs::TryRegister(registry, out, "engine.apply_cpu_ns", machine,
                   &apply_cpu_nanos);
  obs::TryRegister(registry, out, "engine.enumeration_cpu_ns", machine,
                   &enumeration_cpu_nanos);
  obs::TryRegister(registry, out, "engine.updates_generated", machine,
                   &updates_generated);
  obs::TryRegister(registry, out, "engine.updates_local_gathered", machine,
                   &updates_local_gathered);
  obs::TryRegister(registry, out, "engine.updates_sent", machine,
                   &updates_sent);
  obs::TryRegister(registry, out, "engine.updates_spilled", machine,
                   &updates_spilled);
  obs::TryRegister(registry, out, "engine.frontier_sparse_windows", machine,
                   &frontier_sparse_windows);
  obs::TryRegister(registry, out, "engine.frontier_dense_windows", machine,
                   &frontier_dense_windows);
  obs::TryRegister(registry, out, "engine.pull_records_skipped", machine,
                   &pull_records_skipped);
  obs::TryRegister(registry, out, "engine.active_vertices", machine,
                   &active_vertices);
  obs::TryRegister(registry, out, "engine.checkpoint_ns", machine,
                   &checkpoint_ns);
  obs::TryRegister(registry, out, "engine.recoveries", machine, &recoveries);
  obs::TryRegister(registry, out, "engine.recovery_replay_supersteps",
                   machine, &recovery_replay_supersteps);
}

std::string ClusterSnapshot::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "cpu=" << cpu_seconds << "s disk=" << disk_bytes
     << "B (" << disk_io_seconds << "s) net=" << net_bytes << "B ("
     << net_io_seconds << "s)";
  return os.str();
}

}  // namespace tgpp
