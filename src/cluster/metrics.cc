#include "cluster/metrics.h"

#include <sstream>

namespace tgpp {

std::string ClusterSnapshot::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "cpu=" << cpu_seconds << "s disk=" << disk_bytes
     << "B (" << disk_io_seconds << "s) net=" << net_bytes << "B ("
     << net_io_seconds << "s)";
  return os.str();
}

}  // namespace tgpp
