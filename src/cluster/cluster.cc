#include "cluster/cluster.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "util/trace.h"

namespace tgpp {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      fabric_(config.num_machines, config.net_profile),
      barrier_(config.num_machines) {
  TGPP_CHECK(config.num_machines > 0);
  machines_.reserve(config.num_machines);
  for (int i = 0; i < config.num_machines; ++i) {
    MachineConfig mc;
    mc.id = i;
    mc.num_worker_threads = config.threads_per_machine;
    mc.num_io_threads = config.io_threads_per_machine;
    mc.numa_nodes = config.numa_nodes_per_machine;
    mc.memory_budget_bytes = config.memory_budget_bytes;
    mc.buffer_pool_frames = config.buffer_pool_frames;
    mc.disk_profile = config.disk_profile;
    mc.storage_dir = config.root_dir + "/m" + std::to_string(i);
    mc.io_backend = config.io_backend;
    mc.io_queue_depth = config.io_queue_depth;
    machines_.push_back(std::make_unique<Machine>(mc));
  }
  fabric_.RegisterMetrics(&obs::Registry::Global(), &registrations_);
}

Status Cluster::RunOnAll(const std::function<Status(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(machines_.size());
  std::mutex mu;
  Status first_error;
  for (int i = 0; i < num_machines(); ++i) {
    threads.emplace_back([&, i] {
      trace::SetCurrentMachine(i);
      trace::SetCurrentThreadName("m" + std::to_string(i) + ".main");
      Status s = fn(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        // MachineLost is the root cause; survivors' secondary errors
        // (timeouts racing the loss) must not mask it.
        if (first_error.ok() ||
            (s.IsMachineLost() && !first_error.IsMachineLost())) {
          first_error = s;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return first_error;
}

void Cluster::KillMachine(int machine) {
  TGPP_CHECK(machine >= 0 && machine < num_machines());
  machines_[machine]->Kill();
  fabric_.SetMachineDown(machine);
}

void Cluster::ReviveMachine(int machine) {
  TGPP_CHECK(machine >= 0 && machine < num_machines());
  machines_[machine]->Revive();
  fabric_.SetMachineUp(machine);
}

void Cluster::ReviveAllMachines() {
  for (int m = 0; m < num_machines(); ++m) {
    if (!machines_[m]->alive() || !fabric_.MachineUp(m)) ReviveMachine(m);
  }
}

void Cluster::Barrier() {
  trace::TraceSpan span("barrier.wait", "cluster");
  barrier_.arrive_and_wait();
}

ClusterSnapshot Cluster::Snapshot() const {
  ClusterSnapshot snap;
  for (const auto& m : machines_) {
    const double machine_cpu = m->metrics()->TotalCpuSeconds();
    const uint64_t machine_disk =
        m->disk()->bytes_read() + m->disk()->bytes_written();
    snap.cpu_seconds += machine_cpu;
    snap.enumeration_cpu_seconds +=
        1e-9 * static_cast<double>(m->metrics()->enumeration_cpu_nanos.value());
    snap.disk_bytes += machine_disk;
    snap.max_machine_cpu_seconds =
        std::max(snap.max_machine_cpu_seconds, machine_cpu);
    snap.max_machine_disk_seconds = std::max(
        snap.max_machine_disk_seconds,
        static_cast<double>(machine_disk) /
            config_.disk_profile.aggregate_bandwidth_bytes_per_sec());
  }
  snap.net_bytes = fabric_.bytes_sent();
  snap.disk_io_seconds =
      static_cast<double>(snap.disk_bytes) / AggregateDiskBandwidth();
  snap.net_io_seconds =
      static_cast<double>(snap.net_bytes) / AggregateNetBandwidth();
  return snap;
}

double Cluster::BufferPoolHitRate() const {
  uint64_t hits = 0, misses = 0;
  for (const auto& m : machines_) {
    hits += m->buffer_pool()->hits();
    misses += m->buffer_pool()->misses();
  }
  return hits + misses == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

void Cluster::ResetCountersAndCaches() {
  ResetCounters();
  for (auto& m : machines_) {
    m->buffer_pool()->DropAll();
    m->budget()->ResetUsage();
  }
  fabric_.Reset();
}

void Cluster::ResetCounters() {
  for (auto& m : machines_) {
    m->disk()->ResetCounters();
    m->buffer_pool()->ResetCounters();
    m->metrics()->Reset();
  }
  fabric_.ResetCounters();
}

}  // namespace tgpp
