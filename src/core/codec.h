// Tiny POD (de)serialization helpers for fabric message payloads.

#ifndef TGPP_CORE_CODEC_H_
#define TGPP_CORE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/logging.h"

namespace tgpp {

template <typename T>
void AppendPod(std::vector<uint8_t>* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t pos = buf->size();
  buf->resize(pos + sizeof(T));
  std::memcpy(buf->data() + pos, &value, sizeof(T));
}

template <typename T>
void AppendPodSpan(std::vector<uint8_t>* buf, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t pos = buf->size();
  buf->resize(pos + values.size_bytes());
  std::memcpy(buf->data() + pos, values.data(), values.size_bytes());
}

// Sequential reader over a payload.
class PodReader {
 public:
  explicit PodReader(std::span<const uint8_t> data) : data_(data) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    TGPP_CHECK(pos_ + sizeof(T) <= data_.size()) << "payload underrun";
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  void ReadSpan(T* out, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    TGPP_CHECK(pos_ + count * sizeof(T) <= data_.size())
        << "payload underrun";
    std::memcpy(out, data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Fabric tag allocation for the engine's logical channels.
enum MessageTag : uint32_t {
  kTagUpdates = 0,      // scatter-phase update batches + done markers
  kTagControl = 1,      // allreduce / convergence control
  kTagAdjRequest = 2,   // full adjacency list requests
  kTagAdjResponse = 3,  // full adjacency list responses
  kTagFrontier = 4,     // pull-superstep frontier bitmap allgather
  kTagBarrier = 5,      // failable superstep barrier (machine-0 coordinated)
};

}  // namespace tgpp

#endif  // TGPP_CORE_CODEC_H_
